//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes through the traits (results are emitted as hand-written
//! JSON/TSV). With crates.io unreachable in the build container, this crate
//! supplies marker traits and re-exports no-op derive macros so the derives
//! keep compiling and the type-level intent stays documented in the source.

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
