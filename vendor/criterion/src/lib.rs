//! Offline vendored stand-in for `criterion`.
//!
//! Supports the subset the workspace's benches use: `Criterion`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! calibrated median: each routine is auto-batched until a batch takes long
//! enough to time reliably, then the median ns/iteration over a fixed number
//! of batches is reported on stdout.
//!
//! When the `CRITERION_JSON` environment variable names a file, one JSON
//! line per benchmark (`{"name": ..., "median_ns": ...}`) is appended to it
//! so external tooling (e.g. the BENCH_hotpaths.json generator) can consume
//! results without parsing human output.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The stub times the routine in
/// per-iteration batches regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark routine.
pub struct Bencher {
    samples_ns: Vec<f64>,
}

const SAMPLES: usize = 15;
const MIN_BATCH: Duration = Duration::from_millis(5);

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples_ns: Vec::new(),
        }
    }

    /// Times `routine` in calibrated batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it runs long enough to time.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_BATCH || batch >= 1 << 30 {
                break;
            }
            batch = if elapsed.is_zero() {
                batch * 16
            } else {
                // Aim slightly past MIN_BATCH to converge in one step.
                (batch * 2).max(
                    (batch as f64 * 1.2 * MIN_BATCH.as_secs_f64() / elapsed.as_secs_f64()) as u64,
                )
            };
        }
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// by timing each call individually.
    pub fn iter_batched<S, R, FS, F>(&mut self, mut setup: FS, mut routine: F, _size: BatchSize)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> R,
    {
        // Calibrate the per-call cost first so short routines still get a
        // stable median: time `reps` separate setup+routine pairs per sample,
        // accumulating only the routine's time.
        let mut reps = 1u64;
        loop {
            let mut spent = Duration::ZERO;
            for _ in 0..reps {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                spent += start.elapsed();
            }
            if spent >= MIN_BATCH || reps >= 1 << 24 {
                break;
            }
            reps = if spent.is_zero() {
                reps * 16
            } else {
                (reps * 2)
                    .max((reps as f64 * 1.2 * MIN_BATCH.as_secs_f64() / spent.as_secs_f64()) as u64)
            };
        }
        for _ in 0..SAMPLES {
            let mut spent = Duration::ZERO;
            for _ in 0..reps {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                spent += start.elapsed();
            }
            self.samples_ns.push(spent.as_nanos() as f64 / reps as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if s.is_empty() {
            return 0.0;
        }
        let mid = s.len() / 2;
        if s.len().is_multiple_of(2) {
            (s[mid - 1] + s[mid]) / 2.0
        } else {
            s[mid]
        }
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    json_path: Option<String>,
    filter: Option<String>,
}

impl Criterion {
    pub fn new() -> Self {
        Criterion {
            json_path: std::env::var("CRITERION_JSON").ok(),
            filter: None,
        }
    }

    /// Restricts runs to benchmark names containing `filter`.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Runs one named benchmark immediately and prints its median.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher::new();
        f(&mut b);
        let median = b.median_ns();
        println!("{name:<40} median {median:>12.1} ns/iter");
        if let Some(path) = &self.json_path {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(file, "{{\"name\": \"{name}\", \"median_ns\": {median:.1}}}");
            }
        }
        self
    }
}

/// Builds a group runner function from benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            // `cargo bench -- <filter>`: first non-flag argument filters by name.
            if let Some(filter) = std::env::args().skip(1).find(|a| !a.starts_with('-')) {
                criterion = criterion.with_filter(filter);
            }
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point invoking each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
