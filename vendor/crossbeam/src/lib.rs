//! Offline vendored stand-in for `crossbeam`.
//!
//! The executor layer only needs scoped threads. Since Rust 1.63 the
//! standard library provides them natively, so this shim re-exports
//! `std::thread::scope` under the `crossbeam::thread` path the workspace
//! depends on, keeping the dependency declaration stable for when the real
//! crate is reachable again.

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_locals() {
        let data = vec![1u64, 2, 3, 4];
        let mut results = vec![0u64; data.len()];
        super::thread::scope(|s| {
            for (slot, &x) in results.iter_mut().zip(&data) {
                s.spawn(move || *slot = x * 10);
            }
        });
        assert_eq!(results, vec![10, 20, 30, 40]);
    }
}
