//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests rely on —
//! `proptest!`, range/tuple/`Just`/`prop_map`/`prop_oneof!`/collection-vec
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*` macros —
//! as plain deterministic random testing (no shrinking, no persisted
//! regressions). Each test function draws its cases from an RNG seeded by
//! the test name, so failures are reproducible run-to-run; the sampled
//! inputs are printed when a case panics.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// The RNG handed to strategies while generating a case.
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    /// A generator seeded deterministically from the test's name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Prints the sampled inputs if the test body panics (armed during the
/// body, disarmed after it returns normally).
pub struct FailureReporter {
    name: &'static str,
    case: u32,
    inputs: Option<String>,
}

impl FailureReporter {
    /// Arms a reporter for one case.
    pub fn new(name: &'static str, case: u32, inputs: String) -> Self {
        FailureReporter {
            name,
            case,
            inputs: Some(inputs),
        }
    }

    /// Marks the case as passed; nothing is printed on drop.
    pub fn disarm(mut self) {
        self.inputs = None;
    }
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if let Some(inputs) = &self.inputs {
            eprintln!(
                "proptest {}: failing case #{}: {}",
                self.name, self.case, inputs
            );
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`).
    pub mod prop {
        pub mod collection {
            pub use crate::strategy::collection_vec as vec;
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let reporter = $crate::FailureReporter::new(
                        stringify!($name),
                        case,
                        format!(concat!($(stringify!($arg), " = {:?}; ",)*), $(&$arg),*),
                    );
                    { $body }
                    reporter.disarm();
                }
            }
        )*
    };
}
