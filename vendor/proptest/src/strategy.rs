//! Value-generation strategies for the vendored mini-proptest.

use crate::TestRng;
use rand::Rng;

/// Generates random values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic sampler over the test's RNG stream.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy for vectors with a length drawn from `len`, used as
/// `prop::collection::vec(elem, a..b)`.
pub struct VecStrategy<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

/// Builds a [`VecStrategy`] (re-exported as `prop::collection::vec`).
pub fn collection_vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.0.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// A type-erased sampler, produced by [`boxed`] so that `prop_oneof!`
/// arms of different strategy types can share one `Union`.
pub struct BoxedSampler<T>(Box<dyn Fn(&mut TestRng) -> T>);

/// Erases a strategy's type; each call to the result samples the strategy.
pub fn boxed<S>(s: S) -> BoxedSampler<S::Value>
where
    S: Strategy + 'static,
{
    BoxedSampler(Box::new(move |rng| s.sample(rng)))
}

/// Picks one of several alternatives uniformly, then samples it
/// (the expansion of `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedSampler<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedSampler<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.0.gen_range(0..self.options.len());
        (self.options[idx].0)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..500 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5i64..=9).sample(&mut rng);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn map_just_tuple_vec_compose() {
        let mut rng = TestRng::deterministic("map_just_tuple_vec_compose");
        let strat = (Just(7u32), (0u32..4).prop_map(|x| x * 2));
        for _ in 0..100 {
            let (a, b) = strat.sample(&mut rng);
            assert_eq!(a, 7);
            assert!(b % 2 == 0 && b <= 6);
        }
        let vs = collection_vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = vs.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::deterministic("union_covers_all_arms");
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
