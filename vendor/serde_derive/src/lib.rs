//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The derives expand to nothing: the workspace never calls serde's traits,
//! so an empty expansion keeps every `#[derive(Serialize, Deserialize)]`
//! compiling without pulling in syn/quote (unavailable offline).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
