//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the small API surface the workspace actually uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool, gen}` —
//! backed by xoshiro256++ (public-domain, Blackman/Vigna) seeded through
//! SplitMix64.
//!
//! Streams are deterministic for a given seed, which is all the simulators
//! require; they are *not* bit-compatible with upstream rand 0.8's ChaCha12
//! `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface: the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the full domain (or `[0,1)` for floats).
    fn sample_standard(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Standard for $t {
            fn sample_standard(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut impl RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample_standard(self) < p
    }

    /// A draw from the full domain of `T` (or `[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as upstream rand does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5i32..=7);
            assert!((5..=7).contains(&y));
            let z = r.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!(
            (frac - 0.25).abs() < 0.01,
            "gen_bool(0.25) frequency {frac}"
        );
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let frac = f64::from(b) / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i} frequency {frac}");
        }
    }
}
