//! Quickstart: discover a disk's track boundaries through its SCSI
//! interface, then see what track-aligned access buys you.
//!
//! Run with: `cargo run --release -p traxtent-bench --example quickstart`

use dixtrac::extract_scsi;
use scsi::ScsiDisk;
use sim_disk::disk::{Disk, Request};
use sim_disk::models;
use sim_disk::SimTime;
use traxtent::RequestPlanner;

fn main() {
    // A Quantum Atlas 10K II — the paper's measurement platform.
    let mut scsi = ScsiDisk::new(Disk::new(models::quantum_atlas_10k_ii()));

    // Extract the track boundaries through the command interface (the
    // DIXtrac-style five-step algorithm).
    let extraction = extract_scsi(&mut scsi).expect("the simulated drive supports diagnostics");
    println!(
        "extracted {} tracks in {} zones using {:.2} translations/track",
        extraction.boundaries.num_tracks(),
        extraction.zones.len(),
        extraction.translations_per_track
    );

    // Plan requests against the boundaries: a 256 KB transfer at an
    // arbitrary location is split so no piece crosses a track.
    let planner = RequestPlanner::new(extraction.boundaries.clone());
    let pieces = planner.split(traxtent::Extent::new(1_000_000, 512));
    println!(
        "256 KB at LBN 1000000 becomes {} track-local request(s):",
        pieces.len()
    );
    for p in &pieces {
        println!("  {p}");
    }

    // Compare: one full-track aligned read vs the same size unaligned.
    let mut disk = scsi.into_inner();
    disk.reset();
    let track = extraction.boundaries.track_extent(1000);
    let aligned = disk.service(Request::read(track.start, track.len), SimTime::ZERO);
    let unaligned = disk.service(
        Request::read(track.start + track.len / 2, track.len),
        aligned.completion,
    );
    println!(
        "track-sized read: aligned {:.2} ms vs unaligned {:.2} ms",
        aligned.response_time().as_millis_f64(),
        unaligned.response_time().as_millis_f64()
    );
}
