//! Characterize an unknown drive: run both extraction algorithms against a
//! disk formatted with per-cylinder spares and slipped defects, and compare
//! what each one learned — and what it cost.
//!
//! Run with: `cargo run --release -p traxtent-bench --example disk_characterization`

use dixtrac::{extract_general, extract_scsi, GeneralConfig};
use scsi::ScsiDisk;
use sim_disk::defects::{DefectPolicy, SpareScheme};
use sim_disk::disk::Disk;
use sim_disk::models;

fn main() {
    let make = || {
        Disk::new(models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::SectorsPerCylinder(8),
            DefectPolicy::Slip,
            600,
            42,
        ))
    };

    // The SCSI-specific five-step algorithm.
    let mut s = ScsiDisk::new(make());
    let r = extract_scsi(&mut s).expect("the simulated drive supports diagnostics");
    println!("SCSI-specific extraction:");
    println!("  surfaces: {}", r.surfaces);
    println!(
        "  zones: {:?}",
        r.zones.iter().map(|z| z.spt).collect::<Vec<_>>()
    );
    println!(
        "  spare scheme: {:?}, defect policy: {:?}",
        r.scheme, r.policy
    );
    println!(
        "  {} tracks at {:.2} translations/track, {:.1} s of bus time",
        r.boundaries.num_tracks(),
        r.translations_per_track,
        s.elapsed().as_secs_f64()
    );

    // The general timing-based algorithm sees the same boundaries without
    // any diagnostic commands.
    let mut s = ScsiDisk::new(make());
    let g = extract_general(
        &mut s,
        &GeneralConfig {
            contexts: 24,
            ..GeneralConfig::default()
        },
    )
    .expect("fault-free timing extraction succeeds");
    println!("general (timing-only) extraction:");
    println!(
        "  {} tracks at {:.1} probes/track, {:.1} s of disk time",
        g.boundaries.num_tracks(),
        g.probes_per_track,
        g.elapsed.as_secs_f64()
    );
    println!(
        "  agreement with the SCSI result: {}",
        if g.boundaries == r.boundaries {
            "exact"
        } else {
            "differs"
        }
    );
}
