//! A file-server workload mix on the three FFS personalities: large-file
//! streaming, an interleaved two-file comparison, and a small-file
//! transaction mix — Table 2 in miniature.
//!
//! Run with: `cargo run --release -p traxtent-bench --example file_server`

use ffs::{FileSystem, Personality};
use sim_disk::disk::Disk;
use sim_disk::models;
use workloads::apps;

const MB: u64 = 1 << 20;

fn main() {
    println!("workload            unmodified   fast-start    traxtent");
    let personalities = [
        Personality::Unmodified,
        Personality::FastStart,
        Personality::Traxtent,
    ];

    let line = |name: &str, f: &dyn Fn(&mut FileSystem) -> f64| {
        let mut cols = format!("{name:<18}");
        for p in personalities {
            let mut fs = FileSystem::format(Disk::new(models::quantum_atlas_10k()), p);
            cols += &format!("  {:>9.2}s", f(&mut fs));
        }
        println!("{cols}");
    };

    line("256 MB scan", &|fs| {
        apps::scan(fs, 256 * MB, 64 * 1024).elapsed.as_secs_f64()
    });
    line("2x128 MB diff", &|fs| {
        apps::diff(fs, 128 * MB, 64 * 1024).elapsed.as_secs_f64()
    });
    line("256 MB copy", &|fs| {
        apps::copy(fs, 256 * MB, 64 * 1024).elapsed.as_secs_f64()
    });
    line("postmark 600tx", &|fs| {
        let (r, _) = apps::postmark(fs, 150, 600, 7);
        r.elapsed.as_secs_f64()
    });
    line("head* 300 files", &|fs| {
        apps::head_star(fs, 300, 200 * 1024).elapsed.as_secs_f64()
    });

    let fs = FileSystem::format(
        Disk::new(models::quantum_atlas_10k()),
        Personality::Traxtent,
    );
    println!(
        "\ntraxtent layout excludes {:.1}% of blocks (paper: ~5% on the Atlas 10K)",
        100.0 * fs.layout().excluded_fraction()
    );
}
