//! A streaming video server sizing exercise: how many 4 Mb/s streams can a
//! 10-disk array admit, and at what startup latency, with and without
//! track-aligned I/O?
//!
//! Run with: `cargo run --release -p traxtent-bench --example video_server`

use sim_disk::models;
use sim_disk::SimDur;
use videoserver::{hard, soft, ServerConfig};

fn main() {
    let disk = models::quantum_atlas_10k_ii();
    let track = disk.geometry.track(0).lbn_count() as u64;

    // Hard real-time admission: closed-form worst cases.
    println!("hard real-time admission, 4 Mb/s streams per disk:");
    for (label, io) in [("264 KB", track), ("528 KB", 2 * track)] {
        println!(
            "  {label} I/Os: {} unaligned vs {} track-aligned",
            hard::max_streams(&disk, 4.0, io, false),
            hard::max_streams(&disk, 4.0, io, true)
        );
    }

    // Soft real-time: measured round-time distributions.
    let mk = |aligned| ServerConfig {
        aligned,
        rounds: 120,
        quantile: 0.99,
        ..Default::default()
    };
    let cap = SimDur::from_secs_f64(0.5);
    println!(
        "soft real-time at a 0.5 s round (track-sized I/Os): {} aligned vs {} unaligned \
         streams per disk",
        soft::max_streams_at_round(&disk, &mk(true), track, cap),
        soft::max_streams_at_round(&disk, &mk(false), track, cap)
    );

    // The latency a subscriber sees when the array runs near capacity.
    for v in [40usize, 60] {
        if let Some(p) = soft::operating_point(&disk, &mk(true), v) {
            println!(
                "{} aligned streams on the array: {} KB I/Os, startup latency {:.2} s",
                v * 10,
                p.io_sectors * 512 / 1024,
                p.startup_latency.as_secs_f64()
            );
        }
    }
}
