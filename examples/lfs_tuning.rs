//! Tune an LFS segment size against a drive: sweep the overall write cost
//! and confirm the minimum sits at the track size, then show the
//! variable-segment table that matches segments to tracks.
//!
//! Run with: `cargo run --release -p traxtent-bench --example lfs_tuning`

use lfs::cleaner::{LfsConfig, LfsSim};
use lfs::segments::SegmentTable;
use lfs::transfer_inefficiency;
use sim_disk::models;
use traxtent::TrackBoundaries;

fn main() {
    let disk = models::quantum_atlas_10k_ii();
    let track = disk.geometry.track(0).lbn_count() as u64;
    let capacity = 1 << 16;

    println!("segment  write_cost  TI_aligned  OWC");
    let mut best = (u64::MAX, f64::INFINITY);
    for sectors in [128u64, 256, track, 1024, 2048] {
        let cap = capacity.max(sectors * 32);
        let mut sim = LfsSim::fixed(cap, sectors, LfsConfig::default());
        let wc = sim
            .run_updates(cap * 2)
            .expect("sweep capacities leave cleaning headroom")
            .write_cost();
        let ti = transfer_inefficiency(&disk, sectors, true, 150, 1);
        let owc = wc * ti;
        if owc < best.1 {
            best = (sectors, owc);
        }
        println!(
            "{:>6} KB  {wc:>8.2}  {ti:>8.2}  {owc:>6.2}",
            sectors * 512 / 1024
        );
    }
    println!(
        "best segment size: {} KB (track = {} KB)",
        best.0 * 512 / 1024,
        track * 512 / 1024
    );

    // Variable segments that exactly match the (varying) track sizes.
    let boundaries = TrackBoundaries::new(
        disk.geometry
            .iter_tracks()
            .filter(|(_, t)| t.lbn_count() > 0)
            .map(|(_, t)| t.first_lbn())
            .take(256)
            .collect(),
        disk.geometry.track(255).end_lbn(),
    )
    .expect("valid boundary table");
    let table = SegmentTable::track_matched(&boundaries);
    println!(
        "track-matched segment table: {} segments, sizes {}..{} sectors",
        table.len(),
        (0..table.len()).map(|i| table.get(i).len).min().unwrap(),
        (0..table.len()).map(|i| table.get(i).len).max().unwrap()
    );
}
