//! A round-based streaming video server over simulated disks (§5.4).
//!
//! The server fetches one interval of video per stream per *round*. Streams
//! are spread over `D` disks; each disk serves `V` streams per round, with
//! the per-round requests sorted by LBN (the scan order a real server's
//! scheduler would use) and kept queued at the drive.
//!
//! * **Soft real-time** ([`soft`]): round times are *measured* over many
//!   simulated rounds; admission uses the 99.99th-percentile round time,
//!   RIO-style. A stream set `V` at I/O size `S` is feasible when that
//!   round time does not exceed the interval the fetched data lasts
//!   (`S × 8 / bit_rate`).
//! * **Hard real-time** ([`hard`]): admission from closed-form worst cases
//!   — worst scheduled seek route, a full revolution of rotational latency
//!   for unaligned access (none for track-aligned), and at least one head
//!   switch per unaligned request.
//!
//! Worst-case startup latency for a newly admitted stream is
//! `round_time × (D + 1)` (Santos et al., as used in the paper).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_disk::disk::{Disk, DiskConfig, Request};
use sim_disk::{SimDur, SimTime};
use traxtent::stats;

/// Server-wide parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of disks video is striped across.
    pub disks: usize,
    /// Per-stream bit rate, megabits per second.
    pub bit_rate_mbps: f64,
    /// Whether per-round requests are track-aligned (traxtent server) or
    /// placed without regard to track boundaries.
    pub aligned: bool,
    /// Rounds to simulate per measurement.
    pub rounds: usize,
    /// Deadline quantile for soft real-time admission (the paper uses
    /// 0.9999).
    pub quantile: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            disks: 10,
            bit_rate_mbps: 4.0,
            aligned: true,
            rounds: 400,
            quantile: 0.9999,
            seed: 0x5eed,
        }
    }
}

impl ServerConfig {
    /// The measurement spec for one (streams-per-disk, I/O size) point
    /// under this server's policy parameters.
    pub fn round_spec(&self, v: usize, io_sectors: u64) -> RoundSpec {
        RoundSpec {
            v,
            io_sectors,
            aligned: self.aligned,
            rounds: self.rounds,
            quantile: self.quantile,
            bit_rate_mbps: self.bit_rate_mbps,
            seed: self.seed,
        }
    }
}

/// Everything one [`measure_rounds`] call needs besides the disk.
#[derive(Debug, Clone, Copy)]
pub struct RoundSpec {
    /// Streams per disk (requests per round).
    pub v: usize,
    /// Per-request size, sectors.
    pub io_sectors: u64,
    /// Track-aligned placement (traxtent server) or free placement.
    pub aligned: bool,
    /// Rounds to simulate.
    pub rounds: usize,
    /// Quantile reported as the admission round time.
    pub quantile: f64,
    /// Per-stream bit rate, megabits per second — sets the deadline.
    pub bit_rate_mbps: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Measured behaviour of one (streams-per-disk, I/O size) operating point.
#[derive(Debug, Clone, Copy)]
pub struct RoundMeasurement {
    /// Streams per disk.
    pub streams_per_disk: usize,
    /// Per-request size, sectors.
    pub io_sectors: u64,
    /// Mean round time.
    pub mean_round: SimDur,
    /// Admission round time (the configured quantile).
    pub quantile_round: SimDur,
    /// Longest observed round.
    pub max_round: SimDur,
    /// Rounds simulated.
    pub rounds: u64,
    /// Rounds that overran the playback interval of one fetched I/O — each
    /// is a glitch for every stream on the disk.
    pub deadline_misses: u64,
    /// Worst-case remaining stream-buffer occupancy, in parts per million
    /// of one interval: `min over rounds of (playback − round) / playback`,
    /// floored at zero. A healthy server stays near 1e6.
    pub min_buffer_ppm: u64,
}

impl RoundMeasurement {
    /// Publishes the measurement under `videoserver.*`. Round counts and
    /// misses are counters (summed across measurements); the worst round
    /// and worst buffer drain are commutative high-water marks, so
    /// concurrent exporters agree.
    pub fn export_metrics(&self, reg: &traxtent::obs::Registry) {
        reg.add("videoserver.rounds", self.rounds);
        reg.add("videoserver.deadline_misses", self.deadline_misses);
        reg.set_max("videoserver.max_round_us", self.max_round.as_ns() / 1_000);
        reg.set_max(
            "videoserver.buffer_drain_ppm",
            1_000_000 - self.min_buffer_ppm.min(1_000_000),
        );
    }
}

/// Simulates `spec.rounds` rounds of `spec.v` random requests of
/// `spec.io_sectors` each on one disk and returns the round-time
/// distribution summary.
///
/// Requests are drawn from the outermost zone — video servers place content
/// on the outer, highest-bandwidth cylinders (as the Tiger server did), and
/// that is also where request size equals track size for the aligned
/// server. Requests within a round are sorted by LBN and issued together
/// (queued at the drive); the round time is the completion of the last.
///
/// `spec.bit_rate_mbps` sets the playback deadline: a round that takes
/// longer than the interval one I/O sustains (`io_sectors × 512 × 8 /
/// bit_rate`) counts as a deadline miss, and per-round slack feeds the
/// `min_buffer_ppm` high-water mark.
pub fn measure_rounds(config: &DiskConfig, spec: &RoundSpec) -> RoundMeasurement {
    let &RoundSpec {
        v,
        io_sectors,
        aligned,
        rounds,
        quantile,
        bit_rate_mbps,
        seed,
    } = spec;
    assert!(v > 0 && rounds > 0);
    let mut disk = Disk::new(config.clone());
    let zone = disk.geometry().zones()[0];
    let zone_end = zone.first_lbn + zone.lbn_count;
    assert!(io_sectors <= zone.lbn_count, "request larger than the zone");
    let track_starts: Vec<u64> = disk
        .geometry()
        .iter_tracks()
        .filter(|(_, t)| t.lbn_count() > 0 && t.first_lbn() >= zone.first_lbn)
        .map(|(_, t)| t.first_lbn())
        .filter(|&s| s + io_sectors <= zone_end)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut round_times = Vec::with_capacity(rounds);
    let mut now = SimTime::ZERO;
    for _ in 0..rounds {
        let mut lbns: Vec<u64> = (0..v)
            .map(|_| {
                if aligned {
                    track_starts[rng.gen_range(0..track_starts.len())]
                } else {
                    zone.first_lbn + rng.gen_range(0..zone.lbn_count - io_sectors)
                }
            })
            .collect();
        lbns.sort_unstable();
        let start = now;
        let mut last = start;
        for lbn in lbns {
            // All round requests are issued up front (queued at the drive).
            let c = disk.service(Request::read(lbn, io_sectors), start);
            last = c.completion;
        }
        round_times.push((last - start).as_secs_f64());
        now = last;
    }
    let playback = io_sectors as f64 * 512.0 * 8.0 / (bit_rate_mbps * 1e6);
    let deadline_misses = round_times.iter().filter(|&&r| r > playback).count() as u64;
    let min_slack = round_times
        .iter()
        .map(|&r| ((playback - r) / playback).max(0.0))
        .fold(1.0f64, f64::min);
    let max_round = round_times.iter().copied().fold(0.0f64, f64::max);
    RoundMeasurement {
        streams_per_disk: v,
        io_sectors,
        mean_round: SimDur::from_secs_f64(stats::mean(&round_times)),
        quantile_round: SimDur::from_secs_f64(stats::percentile(&round_times, quantile)),
        max_round: SimDur::from_secs_f64(max_round),
        rounds: rounds as u64,
        deadline_misses,
        min_buffer_ppm: (min_slack * 1e6) as u64,
    }
}

/// Soft real-time analysis.
pub mod soft {
    use super::*;

    /// One point of Figure 9: the smallest feasible I/O size for `v`
    /// streams per disk, its round time, and the worst-case startup latency
    /// for the whole array.
    #[derive(Debug, Clone, Copy)]
    pub struct OperatingPoint {
        /// Streams per disk.
        pub streams_per_disk: usize,
        /// Chosen I/O size, sectors.
        pub io_sectors: u64,
        /// Admission (quantile) round time.
        pub round_time: SimDur,
        /// `round_time × (disks + 1)`.
        pub startup_latency: SimDur,
        /// The measurement behind the admission decision (deadline misses,
        /// buffer occupancy) at the chosen I/O size.
        pub measurement: RoundMeasurement,
    }

    /// Finds the smallest I/O size supporting `v` streams per disk: the
    /// quantile round time must not exceed the playback duration of one
    /// fetched interval. Aligned servers use whole-track multiples; the
    /// unaligned server sweeps 64 KB steps. Returns `None` if even the
    /// largest size tried (4 MB) fails.
    pub fn operating_point(
        disk: &DiskConfig,
        server: &ServerConfig,
        v: usize,
    ) -> Option<OperatingPoint> {
        let track = disk.geometry.track(0).lbn_count() as u64;
        let candidates: Vec<u64> = if server.aligned {
            (1..=16).map(|k| k * track).collect()
        } else {
            (1..=64).map(|k| k * 128).collect() // 64 KB steps up to 4 MB
        };
        for io in candidates {
            if io * 512 * 8 > (1 << 33) {
                break;
            }
            let m = measure_rounds(disk, &server.round_spec(v, io));
            let playback =
                SimDur::from_secs_f64(io as f64 * 512.0 * 8.0 / (server.bit_rate_mbps * 1e6));
            if m.quantile_round <= playback {
                return Some(OperatingPoint {
                    streams_per_disk: v,
                    io_sectors: io,
                    round_time: m.quantile_round,
                    startup_latency: SimDur::from_ns(
                        m.quantile_round.as_ns() * (server.disks as u64 + 1),
                    ),
                    measurement: m,
                });
            }
        }
        None
    }

    /// The maximum streams per disk serviceable at a given round-time cap
    /// with a fixed I/O size (the paper's "70 vs 45 at a 0.5 s round").
    pub fn max_streams_at_round(
        disk: &DiskConfig,
        server: &ServerConfig,
        io_sectors: u64,
        round_cap: SimDur,
    ) -> usize {
        let mut best = 0;
        let mut v = 1;
        while v <= 90 {
            let m = measure_rounds(disk, &server.round_spec(v, io_sectors));
            let playback = SimDur::from_secs_f64(
                io_sectors as f64 * 512.0 * 8.0 / (server.bit_rate_mbps * 1e6),
            );
            if m.quantile_round <= round_cap && m.quantile_round <= playback {
                best = v;
                v += 1;
            } else {
                break;
            }
        }
        best
    }
}

/// Hard real-time admission from closed-form worst cases (§5.4.2).
pub mod hard {
    use super::*;

    /// Worst-case per-request service time for `v` streams per disk.
    ///
    /// The scheduler sorts each round's requests, so the worst total seek
    /// route across `v` requests is one full sweep; each request is charged
    /// `seek(cylinders / v)`. Unaligned requests add a full revolution of
    /// rotational latency and one head switch per track crossed; aligned
    /// requests pay neither (zero-latency firmware, whole-track transfers).
    pub fn worst_case_request(
        disk: &DiskConfig,
        v: usize,
        io_sectors: u64,
        aligned: bool,
    ) -> SimDur {
        assert!(v > 0);
        let cyls = disk.geometry.cylinders();
        let seek = disk.seek.seek_time((cyls as f64 / v as f64).ceil() as u32);
        let rev = disk.spindle.revolution();
        let spt = u64::from(disk.geometry.track(0).lbn_count());
        let tracks = io_sectors.div_ceil(spt);
        let media = disk.spindle.sweep(io_sectors as f64 / spt as f64);
        let switches = disk.head_switch * tracks.max(1);
        if aligned && disk.zero_latency {
            // Full-track transfers: no rotational latency; switches between
            // the tracks of a multi-track request only.
            seek + media + disk.head_switch * (tracks - 1) + disk.cmd_overhead
        } else {
            seek + rev + media + switches + disk.cmd_overhead
        }
    }

    /// Maximum streams per disk under hard guarantees: the largest `v` with
    /// `v × worst_case_request ≤ playback duration of one interval`.
    pub fn max_streams(
        disk: &DiskConfig,
        bit_rate_mbps: f64,
        io_sectors: u64,
        aligned: bool,
    ) -> usize {
        let playback = io_sectors as f64 * 512.0 * 8.0 / (bit_rate_mbps * 1e6);
        let mut v = 0;
        loop {
            let next = v + 1;
            let wc = worst_case_request(disk, next, io_sectors, aligned);
            if wc.as_secs_f64() * next as f64 <= playback {
                v = next;
            } else {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::models;

    /// A short 20-stream measurement spec for the tests.
    fn spec(io_sectors: u64, aligned: bool, bit_rate_mbps: f64) -> RoundSpec {
        RoundSpec {
            v: 20,
            io_sectors,
            aligned,
            rounds: 60,
            quantile: 0.99,
            bit_rate_mbps,
            seed: 1,
        }
    }

    #[test]
    fn aligned_rounds_are_shorter() {
        let cfg = models::quantum_atlas_10k_ii();
        let io = cfg.geometry.track(0).lbn_count() as u64;
        let a = measure_rounds(&cfg, &spec(io, true, 4.0));
        let u = measure_rounds(&cfg, &spec(io, false, 4.0));
        assert!(
            a.mean_round < u.mean_round,
            "{} !< {}",
            a.mean_round,
            u.mean_round
        );
        assert!(a.quantile_round >= a.mean_round);
        assert!(a.max_round >= a.quantile_round);
    }

    #[test]
    fn overloaded_rounds_miss_deadlines() {
        let cfg = models::quantum_atlas_10k_ii();
        let io = cfg.geometry.track(0).lbn_count() as u64;
        // 20 streams at track-sized I/Os are comfortable at 4 Mb/s; at an
        // absurd 400 Mb/s bit rate every round overruns the interval.
        let ok = measure_rounds(&cfg, &spec(io, true, 4.0));
        let bad = measure_rounds(&cfg, &spec(io, true, 400.0));
        assert_eq!(ok.deadline_misses, 0, "feasible point misses nothing");
        assert!(ok.min_buffer_ppm > 0);
        assert_eq!(bad.deadline_misses, bad.rounds);
        assert_eq!(bad.min_buffer_ppm, 0, "buffer fully drained");
        let reg = traxtent::obs::Registry::new();
        ok.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("videoserver.rounds"), Some(ok.rounds));
        assert_eq!(snap.get("videoserver.deadline_misses"), Some(0));
        assert_eq!(
            snap.get("videoserver.buffer_drain_ppm"),
            Some(1_000_000 - ok.min_buffer_ppm)
        );
    }

    #[test]
    fn hard_admission_matches_paper_264kb() {
        // §5.4.2: 264 KB I/Os at 4 Mb/s — 36 streams unaligned vs 67
        // aligned per disk.
        let cfg = models::quantum_atlas_10k_ii();
        let io = 528; // 264 KB
        let aligned = hard::max_streams(&cfg, 4.0, io, true);
        let unaligned = hard::max_streams(&cfg, 4.0, io, false);
        assert!((60..=75).contains(&aligned), "aligned {aligned}");
        assert!((30..=42).contains(&unaligned), "unaligned {unaligned}");
        assert!(aligned > unaligned + 20);
    }

    #[test]
    fn hard_admission_matches_paper_528kb() {
        // 528 KB I/Os: 52 unaligned vs 75 aligned.
        let cfg = models::quantum_atlas_10k_ii();
        let io = 1056;
        let aligned = hard::max_streams(&cfg, 4.0, io, true);
        let unaligned = hard::max_streams(&cfg, 4.0, io, false);
        assert!((68..=82).contains(&aligned), "aligned {aligned}");
        assert!((45..=58).contains(&unaligned), "unaligned {unaligned}");
    }

    #[test]
    fn soft_admission_prefers_aligned() {
        // At a 0.5 s round cap with track-sized I/Os the aligned server
        // supports many more streams (paper: 70 vs 45).
        let cfg = models::quantum_atlas_10k_ii();
        let server_a = ServerConfig {
            rounds: 60,
            quantile: 0.98,
            aligned: true,
            ..Default::default()
        };
        let server_u = ServerConfig {
            rounds: 60,
            quantile: 0.98,
            aligned: false,
            ..Default::default()
        };
        let io = 528;
        let cap = SimDur::from_secs_f64(0.5);
        let a = soft::max_streams_at_round(&cfg, &server_a, io, cap);
        let u = soft::max_streams_at_round(&cfg, &server_u, io, cap);
        assert!(a > u, "aligned {a} streams vs unaligned {u}");
        assert!((55..=80).contains(&a), "aligned {a}");
        assert!((35..=55).contains(&u), "unaligned {u}");
    }

    #[test]
    fn operating_point_latency_grows_with_streams() {
        let cfg = models::quantum_atlas_10k_ii();
        let server = ServerConfig {
            rounds: 40,
            quantile: 0.95,
            ..Default::default()
        };
        let low = soft::operating_point(&cfg, &server, 20).expect("feasible");
        let high = soft::operating_point(&cfg, &server, 60).expect("feasible");
        assert!(high.startup_latency > low.startup_latency);
        assert_eq!(low.startup_latency.as_ns(), low.round_time.as_ns() * 11);
    }

    #[test]
    fn worst_case_monotone_in_io_size() {
        let cfg = models::quantum_atlas_10k_ii();
        let a = hard::worst_case_request(&cfg, 10, 528, false);
        let b = hard::worst_case_request(&cfg, 10, 1056, false);
        assert!(b > a);
    }
}
