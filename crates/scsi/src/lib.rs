//! An emulated SCSI command layer over the simulated drive.
//!
//! The track-extraction algorithms must see the disk exactly the way DIXtrac
//! saw real drives: through the standard, opaque command set — never through
//! the simulator's internal geometry structures. This crate provides that
//! boundary:
//!
//! * `READ CAPACITY` → [`ScsiDisk::read_capacity`]
//! * `READ(10)` / `WRITE(10)` → [`ScsiDisk::read_at`] / [`ScsiDisk::write_at`]
//! * `SEND/RECEIVE DIAGNOSTIC` address translation →
//!   [`ScsiDisk::translate_lbn`] and [`ScsiDisk::translate_pba`]
//! * `READ DEFECT DATA` → [`ScsiDisk::read_defect_list`]
//! * `MODE SENSE` (rigid disk geometry & rotation rate pages) →
//!   [`ScsiDisk::mode_sense`]
//!
//! Every command advances a host-side clock and bumps per-command counters,
//! so extraction cost can be reported the way the paper reports it (§4.1.2:
//! "fewer than 30,000 LBN translations", "approximately 2.0–2.3 translations
//! per track").

#![warn(missing_docs)]

use sim_disk::defects::DefectLocation;
use sim_disk::disk::{Disk, Request};
use sim_disk::fault::SenseKey;
use sim_disk::geometry::Pba;
use sim_disk::trace::TraceEvent;
use sim_disk::{Completion, SimDur, SimTime};
use std::fmt;

/// A failed SCSI command, the way a host sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScsiError {
    /// The drive returned CHECK CONDITION with sense data.
    Check {
        /// The sense key delivered with the condition.
        sense: SenseKey,
        /// The command that failed (e.g. `"read"`, `"translate_lbn"`).
        command: &'static str,
        /// The LBN the command addressed, when it addressed one.
        lbn: Option<u64>,
        /// Host time when the failure was delivered.
        at: SimTime,
    },
    /// The drive does not implement the command at all (vendor diagnostic
    /// pages disabled — ILLEGAL REQUEST / INVALID COMMAND OPERATION CODE).
    Unsupported {
        /// The unimplemented command.
        command: &'static str,
        /// Host time when the rejection was delivered.
        at: SimTime,
    },
}

impl ScsiError {
    /// The command that failed.
    pub fn command(&self) -> &'static str {
        match self {
            ScsiError::Check { command, .. } | ScsiError::Unsupported { command, .. } => command,
        }
    }

    /// Host time when the failure was delivered.
    pub fn at(&self) -> SimTime {
        match self {
            ScsiError::Check { at, .. } | ScsiError::Unsupported { at, .. } => *at,
        }
    }

    /// Whether a fresh retry of the same command can succeed (ABORTED
    /// COMMAND — transport noise, not a property of the address).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ScsiError::Check {
                sense: SenseKey::AbortedCommand,
                ..
            }
        )
    }
}

impl fmt::Display for ScsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScsiError::Check {
                sense,
                command,
                lbn: Some(lbn),
                at,
            } => write!(
                f,
                "{command} at LBN {lbn}: CHECK CONDITION {sense} (t={at})"
            ),
            ScsiError::Check {
                sense,
                command,
                lbn: None,
                at,
            } => write!(f, "{command}: CHECK CONDITION {sense} (t={at})"),
            ScsiError::Unsupported { command, at } => {
                write!(f, "{command}: command not supported by this drive (t={at})")
            }
        }
    }
}

impl std::error::Error for ScsiError {}

/// Shorthand for results of SCSI commands.
pub type ScsiResult<T> = Result<T, ScsiError>;

/// Per-command-type counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandCounts {
    /// Media reads issued.
    pub reads: u64,
    /// Media writes issued.
    pub writes: u64,
    /// LBN↔physical address translations.
    pub translations: u64,
    /// READ CAPACITY / MODE SENSE / READ DEFECT DATA queries.
    pub queries: u64,
}

/// MODE SENSE data the drive reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSense {
    /// Medium rotation rate, RPM (rigid disk geometry page).
    pub rpm: u32,
    /// Number of cylinders.
    pub cylinders: u32,
    /// Number of heads.
    pub heads: u32,
}

/// A simulated drive behind the SCSI command set.
///
/// Owns the drive and a host clock. Commands execute back to back on that
/// clock; [`ScsiDisk::elapsed`] reports how much (simulated) wall time an
/// extraction has consumed.
#[derive(Debug)]
pub struct ScsiDisk {
    disk: Disk,
    now: SimTime,
    counts: CommandCounts,
    /// Cost charged per non-media command (diagnostic, mode sense, …).
    diag_cost: SimDur,
}

impl ScsiDisk {
    /// Wraps a drive. Non-media commands are charged 0.5 ms each, the order
    /// of magnitude DIXtrac observed for diagnostic round trips.
    pub fn new(disk: Disk) -> Self {
        ScsiDisk {
            disk,
            now: SimTime::ZERO,
            counts: CommandCounts::default(),
            diag_cost: SimDur::from_micros_f64(500.0),
        }
    }

    /// The host clock.
    pub fn elapsed(&self) -> SimTime {
        self.now
    }

    /// Command counters so far.
    pub fn counts(&self) -> CommandCounts {
        self.counts
    }

    /// Resets the counters (not the clock).
    pub fn reset_counts(&mut self) {
        self.counts = CommandCounts::default();
    }

    /// Lets host time pass without issuing a command (retry backoff).
    pub fn wait(&mut self, dur: SimDur) {
        self.now += dur;
    }

    /// Whether the drive implements the vendor diagnostic commands
    /// (address translation, defect lists). Hosts learn this the hard way —
    /// from [`ScsiError::Unsupported`] — but tests and reports may ask.
    pub fn diagnostics_supported(&self) -> bool {
        !self.disk.config().fault.diagnostics_unsupported
    }

    /// Drains the firmware's buffer of LBNs that needed a recovered media
    /// retry (see [`sim_disk::disk::Disk::take_recent_error_lbns`]). The
    /// self-healing loop polls this to find suspect tracks.
    pub fn take_recent_error_lbns(&mut self) -> Vec<u64> {
        self.disk.take_recent_error_lbns()
    }

    /// Consumes the wrapper, returning the drive.
    pub fn into_inner(self) -> Disk {
        self.disk
    }

    /// Read-only access to the underlying drive. Extraction code must not
    /// use this to peek at geometry; it exists for *verification* in tests
    /// and reports.
    pub fn ground_truth(&self) -> &Disk {
        &self.disk
    }

    /// Charges one non-media command: advances the clock by the diagnostic
    /// round-trip cost and, when the underlying drive carries a tracer,
    /// emits a [`TraceEvent::ScsiCommand`] naming the command.
    fn diag(&mut self, kind: &'static str) {
        if let Some(tracer) = self.disk.tracer() {
            tracer.record(&TraceEvent::ScsiCommand {
                t: self.now.as_ns(),
                dur: self.diag_cost.as_ns(),
                kind: kind.to_string(),
            });
        }
        self.now += self.diag_cost;
    }

    /// `READ CAPACITY`: total number of LBNs.
    pub fn read_capacity(&mut self) -> u64 {
        self.counts.queries += 1;
        self.diag("read_capacity");
        self.disk.geometry().capacity_lbns()
    }

    /// `MODE SENSE`: rotation rate and nominal physical geometry. (Real
    /// drives report these pages; like real drives, the *track layout* is
    /// not included.)
    pub fn mode_sense(&mut self) -> ModeSense {
        self.counts.queries += 1;
        self.diag("mode_sense");
        ModeSense {
            rpm: (60.0e9 / self.disk.spindle().revolution().as_ns() as f64).round() as u32,
            cylinders: self.disk.geometry().cylinders(),
            heads: self.disk.geometry().surfaces(),
        }
    }

    /// Runs one media command through the drive's fallible path, advancing
    /// the host clock whether it completes or fails.
    fn media(
        &mut self,
        command: &'static str,
        req: Request,
        at: SimTime,
    ) -> ScsiResult<Completion> {
        match self.disk.try_service(req, at) {
            Ok(c) => {
                self.now = c.completion;
                Ok(c)
            }
            Err(fault) => {
                // Sense delivery still costs the time the drive spent.
                self.now = self.now.max(fault.at);
                Err(ScsiError::Check {
                    sense: fault.sense,
                    command,
                    lbn: Some(req.lbn),
                    at: self.now,
                })
            }
        }
    }

    /// `READ(10)` at the current host clock: issues the read immediately and
    /// advances the clock to its completion. Returns the completion record
    /// (the host can only observe its timing, not the breakdown — extraction
    /// code must use [`Completion::response_time`] only). Fails with CHECK
    /// CONDITION sense data when the drive aborts the command or rejects the
    /// address.
    pub fn read_at(&mut self, lbn: u64, len: u64) -> ScsiResult<Completion> {
        self.counts.reads += 1;
        self.media("read", Request::read(lbn, len), self.now)
    }

    /// `READ(10)` issued at a chosen future instant (for rotation-
    /// synchronized probing). The clock advances to the completion. An issue
    /// instant in the past is rejected with ILLEGAL REQUEST.
    pub fn read_at_time(&mut self, lbn: u64, len: u64, at: SimTime) -> ScsiResult<Completion> {
        if at < self.now {
            return Err(ScsiError::Check {
                sense: SenseKey::IllegalRequest,
                command: "read",
                lbn: Some(lbn),
                at: self.now,
            });
        }
        self.counts.reads += 1;
        self.media("read", Request::read(lbn, len), at)
    }

    /// `WRITE(10)` at the current host clock.
    pub fn write_at(&mut self, lbn: u64, len: u64) -> ScsiResult<Completion> {
        self.counts.writes += 1;
        self.media("write", Request::write(lbn, len), self.now)
    }

    /// Rejects a diagnostic command on drives without the vendor pages.
    fn diag_gate(&mut self, command: &'static str) -> ScsiResult<()> {
        if self.disk.config().fault.diagnostics_unsupported {
            // The rejection itself still takes a command round trip.
            self.diag(command);
            return Err(ScsiError::Unsupported {
                command,
                at: self.now,
            });
        }
        Ok(())
    }

    /// `SEND/RECEIVE DIAGNOSTIC` address translation: LBN → physical.
    ///
    /// Fails with [`ScsiError::Unsupported`] on drives without the vendor
    /// diagnostic pages, and with ILLEGAL REQUEST when `lbn` is beyond
    /// capacity.
    pub fn translate_lbn(&mut self, lbn: u64) -> ScsiResult<Pba> {
        self.counts.translations += 1;
        self.diag_gate("translate_lbn")?;
        self.diag("translate_lbn");
        self.disk
            .geometry()
            .lbn_to_pba(lbn)
            .map_err(|_| ScsiError::Check {
                sense: SenseKey::IllegalRequest,
                command: "translate_lbn",
                lbn: Some(lbn),
                at: self.now,
            })
    }

    /// `SEND/RECEIVE DIAGNOSTIC` address translation: physical → LBN.
    /// Returns `Ok(None)` for slots holding no LBN (spares, defects,
    /// reserved); fails with [`ScsiError::Unsupported`] on drives without
    /// the vendor diagnostic pages.
    pub fn translate_pba(&mut self, pba: Pba) -> ScsiResult<Option<u64>> {
        self.counts.translations += 1;
        self.diag_gate("translate_pba")?;
        self.diag("translate_pba");
        Ok(self.disk.geometry().pba_to_lbn(pba))
    }

    /// `READ DEFECT DATA`: the factory (P-list) defect list. Fails with
    /// [`ScsiError::Unsupported`] on drives that do not export it.
    pub fn read_defect_list(&mut self) -> ScsiResult<Vec<DefectLocation>> {
        self.counts.queries += 1;
        self.diag_gate("read_defect_list")?;
        self.diag("read_defect_list");
        Ok(self.disk.geometry().defect_list())
    }

    /// The spindle revolution period, measurable by the host from MODE
    /// SENSE's rotation rate.
    pub fn revolution(&mut self) -> SimDur {
        let rpm = self.mode_sense().rpm;
        SimDur::from_secs_f64(60.0 / f64::from(rpm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::models;

    fn scsi() -> ScsiDisk {
        ScsiDisk::new(Disk::new(models::small_test_disk()))
    }

    #[test]
    fn capacity_and_mode_sense_match_geometry() {
        let mut s = scsi();
        let cap = s.read_capacity();
        assert_eq!(cap, s.ground_truth().geometry().capacity_lbns());
        let ms = s.mode_sense();
        assert_eq!(ms.rpm, 10_000);
        assert_eq!(ms.heads, 4);
        assert_eq!(ms.cylinders, 120);
        assert_eq!(s.counts().queries, 2);
    }

    #[test]
    fn reads_advance_the_clock() {
        let mut s = scsi();
        let t0 = s.elapsed();
        let c = s.read_at(0, 64).unwrap();
        assert!(s.elapsed() > t0);
        assert_eq!(s.elapsed(), c.completion);
        assert_eq!(s.counts().reads, 1);
    }

    #[test]
    fn translations_round_trip_and_cost_time() {
        let mut s = scsi();
        let before = s.elapsed();
        let pba = s.translate_lbn(1234).unwrap();
        let back = s.translate_pba(pba).unwrap();
        assert_eq!(back, Some(1234));
        assert_eq!(s.counts().translations, 2);
        assert!(s.elapsed() > before);
    }

    #[test]
    fn defect_list_matches_spec() {
        use sim_disk::defects::{DefectPolicy, SpareScheme};
        let cfg = models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::SectorsPerCylinder(8),
            DefectPolicy::Slip,
            800,
            11,
        );
        let expect = cfg.geometry.defect_list();
        let mut s = ScsiDisk::new(Disk::new(cfg));
        assert_eq!(s.read_defect_list().unwrap(), expect);
        assert!(!s.read_defect_list().unwrap().is_empty());
    }

    #[test]
    fn timed_read_waits_for_the_chosen_instant() {
        let mut s = scsi();
        let _ = s.read_at(0, 1).unwrap();
        let at = s.elapsed() + SimDur::from_millis_f64(5.0);
        let c = s.read_at_time(1000, 1, at).unwrap();
        assert!(c.issue == at);
        assert!(s.elapsed() >= at);
    }

    #[test]
    fn past_issue_is_rejected_with_illegal_request() {
        let mut s = scsi();
        let _ = s.read_at(0, 1).unwrap();
        let before = s.elapsed();
        let err = s.read_at_time(0, 1, SimTime::ZERO).unwrap_err();
        assert!(matches!(
            err,
            ScsiError::Check {
                sense: SenseKey::IllegalRequest,
                command: "read",
                ..
            }
        ));
        assert_eq!(s.elapsed(), before, "a rejected issue costs no time");
    }

    #[test]
    fn out_of_range_translation_returns_check_condition() {
        let mut s = scsi();
        let cap = s.read_capacity();
        let err = s.translate_lbn(cap + 10).unwrap_err();
        assert!(matches!(
            err,
            ScsiError::Check {
                sense: SenseKey::IllegalRequest,
                command: "translate_lbn",
                lbn: Some(l),
                ..
            } if l == cap + 10
        ));
        assert!(!err.is_transient());
        assert!(err.to_string().contains("translate_lbn"));
    }

    #[test]
    fn diagnostics_unsupported_drives_reject_vendor_commands() {
        let mut cfg = models::small_test_disk();
        cfg.fault.diagnostics_unsupported = true;
        let mut s = ScsiDisk::new(Disk::new(cfg));
        assert!(!s.diagnostics_supported());
        let t0 = s.elapsed();
        let err = s.translate_lbn(0).unwrap_err();
        assert!(matches!(
            err,
            ScsiError::Unsupported {
                command: "translate_lbn",
                ..
            }
        ));
        assert!(s.elapsed() > t0, "the rejection costs a round trip");
        assert!(s.translate_pba(Pba::new(0, 0, 0)).is_err());
        assert!(s.read_defect_list().is_err());
        // Mandatory commands still work.
        assert!(s.read_capacity() > 0);
        let _ = s.mode_sense();
        assert!(s.read_at(0, 8).is_ok());
    }

    #[test]
    fn transient_faults_surface_as_aborted_command() {
        use sim_disk::fault::FaultConfig;
        let mut cfg = models::small_test_disk();
        cfg.fault = FaultConfig {
            transient_per_million: 400_000,
            ..FaultConfig::default()
        };
        let mut s = ScsiDisk::new(Disk::new(cfg));
        let mut failures = 0;
        let mut successes = 0;
        for i in 0..100u64 {
            match s.read_at((i * 777) % 10_000, 16) {
                Ok(_) => successes += 1,
                Err(e) => {
                    assert!(e.is_transient());
                    assert!(e.at() >= SimTime::ZERO);
                    failures += 1;
                }
            }
        }
        assert!(failures > 0 && successes > 0);
    }

    #[test]
    fn revolution_from_mode_sense() {
        let mut s = scsi();
        assert_eq!(s.revolution().as_ns(), 6_000_000);
    }

    #[test]
    fn diagnostic_commands_emit_trace_events() {
        use sim_disk::trace::{MemorySink, Tracer};
        use std::sync::{Arc, Mutex};

        let sink = Arc::new(Mutex::new(MemorySink::new()));
        let mut cfg = models::small_test_disk();
        cfg.tracer = Some(Tracer::new(sink.clone()));
        let mut s = ScsiDisk::new(Disk::new(cfg));
        let _ = s.read_capacity();
        let pba = s.translate_lbn(0).unwrap();
        let _ = s.translate_pba(pba).unwrap();
        let _ = s.read_at(0, 8).unwrap();

        let events = sink.lock().unwrap().take_events();
        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ScsiCommand { kind, .. } => Some(kind.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, ["read_capacity", "translate_lbn", "translate_pba"]);
        // The media read flowed through the drive's own instrumentation.
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Complete { .. })));
    }
}
