//! The SCSI-specific, DIXtrac-style extraction algorithm (§4.1.2).
//!
//! Five steps, all through the command interface:
//!
//! 1. `READ CAPACITY`, then targeted address translations to determine the
//!    number of surfaces and the basic layout direction;
//! 2. `READ DEFECT DATA` for the factory defect list;
//! 3. an expert-system pass classifying the spare-space scheme from track
//!    sizes on defect-free and defective cylinders and from zone/disk tail
//!    behaviour;
//! 4. zone discovery: sectors per track in each zone from defect-free,
//!    spare-free tracks;
//! 5. back-translation of defective sectors to tell slipping from
//!    remapping.
//!
//! Track boundaries themselves come from a predict-and-verify walk: each
//! track is predicted to match the previous one and confirmed with two
//! translations; mispredictions (zone changes, defects, spare areas) fall
//! back to a translation binary search. On clean regions this costs ≈ 2
//! translations per track — the paper reports 2.0–2.3.

use crate::error::{with_retries, ExtractError};
use scsi::ScsiDisk;
use sim_disk::defects::DefectLocation;
use sim_disk::geometry::Pba;
use sim_disk::SimDur;
use traxtent::obs::Registry;
use traxtent::TrackBoundaries;

/// `SEND/RECEIVE DIAGNOSTIC` LBN→PBA with the standard retry policy.
fn xlate(disk: &mut ScsiDisk, lbn: u64) -> Result<Pba, ExtractError> {
    with_retries(disk, "translate_lbn", lbn, |d| d.translate_lbn(lbn))
}

/// `SEND/RECEIVE DIAGNOSTIC` PBA→LBN with the standard retry policy.
fn xlate_pba(disk: &mut ScsiDisk, pba: Pba) -> Result<Option<u64>, ExtractError> {
    with_retries(disk, "translate_pba", 0, |d| d.translate_pba(pba))
}

/// The extractor's best guess at the drive's spare-space scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeGuess {
    /// No reserved spare space detected.
    None,
    /// Spare sectors reserved on every track (count not observable through
    /// the interface; at least the absorbed defects).
    SectorsPerTrack,
    /// `n` spare sectors at the end of every cylinder.
    SectorsPerCylinder(u32),
    /// Whole spare tracks at the end of every zone.
    TracksPerZone(u32),
    /// Whole spare tracks at the end of the disk.
    TracksAtEnd(u32),
}

/// The extractor's conclusion about defect handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyGuess {
    /// Defects observed to shift subsequent LBNs.
    Slipping,
    /// Defects observed to redirect single LBNs to spare locations.
    Remapping,
    /// No defects to judge from.
    Unknown,
}

/// One discovered zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneGuess {
    /// First LBN of the zone.
    pub first_lbn: u64,
    /// First cylinder of the zone.
    pub first_cyl: u32,
    /// Nominal LBNs per track in the zone (mode, ignoring defective/spare
    /// perturbations).
    pub spt: u32,
}

/// The cost of one step of the SCSI extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepCost {
    /// Step name, e.g. `walk`.
    pub name: &'static str,
    /// Address translations the step issued.
    pub translations: u64,
    /// Simulated time the step took.
    pub elapsed: SimDur,
}

/// The result of a SCSI-specific extraction.
#[derive(Debug, Clone)]
pub struct ScsiExtraction {
    /// The extracted boundary table.
    pub boundaries: TrackBoundaries,
    /// Surfaces inferred from translations.
    pub surfaces: u32,
    /// Discovered zones.
    pub zones: Vec<ZoneGuess>,
    /// Spare-scheme classification.
    pub scheme: SchemeGuess,
    /// Defect-policy classification.
    pub policy: PolicyGuess,
    /// Address translations used.
    pub translations: u64,
    /// Translations per extracted track.
    pub translations_per_track: f64,
    /// Boundary-walk predictions contradicted by their verify translations
    /// (zone changes, defective or spare-shortened tracks).
    pub mispredictions: u64,
    /// Boundary-walk predictions confirmed by the two-translation fast path.
    pub verified_predictions: u64,
    /// Per-step translation and time costs, in execution order.
    pub steps: Vec<StepCost>,
}

impl ScsiExtraction {
    /// Publishes the extraction's counters and per-step costs (simulated
    /// microseconds) under `dixtrac.scsi.*`.
    pub fn export_metrics(&self, reg: &Registry) {
        reg.add("dixtrac.scsi.translations", self.translations);
        reg.add("dixtrac.scsi.tracks", self.boundaries.num_tracks() as u64);
        reg.add("dixtrac.scsi.mispredictions", self.mispredictions);
        reg.add(
            "dixtrac.scsi.verified_predictions",
            self.verified_predictions,
        );
        for step in &self.steps {
            reg.add(
                &format!("dixtrac.scsi.translations.{}", step.name),
                step.translations,
            );
            reg.add(
                &format!("dixtrac.scsi.us.{}", step.name),
                step.elapsed.as_ns() / 1_000,
            );
        }
    }
}

/// Runs the five-step extraction.
///
/// Fails with [`ExtractError::DiagnosticsUnsupported`] on drives without
/// the vendor diagnostic pages (callers fall back to the general,
/// timing-based extractor — see [`crate::extract_auto`]), and with the
/// other [`ExtractError`] variants when the drive misbehaves beyond the
/// retry policy's reach.
pub fn extract_scsi(disk: &mut ScsiDisk) -> Result<ScsiExtraction, ExtractError> {
    disk.reset_counts();
    let capacity = disk.read_capacity();
    if capacity == 0 {
        return Err(ExtractError::ZeroCapacity);
    }

    let mut steps: Vec<StepCost> = Vec::with_capacity(6);
    let mut mark = (disk.counts().translations, disk.elapsed());
    let mut record = |disk: &ScsiDisk, name: &'static str, steps: &mut Vec<StepCost>| {
        let now = (disk.counts().translations, disk.elapsed());
        steps.push(StepCost {
            name,
            translations: now.0 - mark.0,
            elapsed: now.1 - mark.1,
        });
        mark = now;
    };

    // Step 1: surfaces. Walk the first few track boundaries: the head
    // number increments with each new track until it wraps to the next
    // cylinder.
    let surfaces = discover_surfaces(disk, capacity)?;
    record(disk, "surfaces", &mut steps);

    // Step 2: defect list.
    let defects = with_retries(disk, "read_defect_list", 0, |d| d.read_defect_list())?;
    record(disk, "defects", &mut steps);

    // Boundary walk with predict-and-verify (this subsumes step 4's
    // per-zone track sizes).
    let walk = walk_boundaries(disk, capacity, surfaces)?;
    let boundaries = TrackBoundaries::new(walk.starts, capacity)
        .map_err(|_| ExtractError::InvalidTable("boundary walk produced an unordered table"))?;
    record(disk, "walk", &mut steps);

    // Step 4: zone summary from the boundary table + per-track cylinder
    // lookup on zone candidates.
    let zones = discover_zones(disk, &boundaries)?;
    record(disk, "zones", &mut steps);

    // Step 3: spare-scheme classification (needs zones and defects).
    let scheme = classify_scheme(disk, &boundaries, &zones, &defects, surfaces, capacity)?;
    record(disk, "scheme", &mut steps);

    // Step 5: slipping vs remapping.
    let policy = classify_policy(disk, &defects)?;
    record(disk, "policy", &mut steps);

    let translations = disk.counts().translations;
    Ok(ScsiExtraction {
        translations_per_track: translations as f64 / boundaries.num_tracks() as f64,
        surfaces,
        zones,
        scheme,
        policy,
        translations,
        boundaries,
        mispredictions: walk.mispredictions,
        verified_predictions: walk.verified,
        steps,
    })
}

/// Number of surfaces: translate LBN 0 and the starts of successive tracks
/// until the cylinder number changes.
fn discover_surfaces(disk: &mut ScsiDisk, capacity: u64) -> Result<u32, ExtractError> {
    let first = xlate(disk, 0)?;
    let mut surfaces = 1;
    let mut lbn = 0u64;
    loop {
        // Find the start of the next track (first LBN whose (cyl, head)
        // differs from the current track's).
        let here = xlate(disk, lbn)?;
        let next = match next_track_start(disk, lbn, here, capacity)? {
            Some(n) => n,
            None => break,
        };
        let pba = xlate(disk, next)?;
        if pba.cyl != first.cyl {
            break;
        }
        surfaces += 1;
        lbn = next;
    }
    Ok(surfaces)
}

/// First LBN after `lbn` that lies on a different track, by exponential
/// probing plus bisection. `here` is `lbn`'s translation.
fn next_track_start(
    disk: &mut ScsiDisk,
    lbn: u64,
    here: Pba,
    capacity: u64,
) -> Result<Option<u64>, ExtractError> {
    let same_track = |p: Pba| p.cyl == here.cyl && p.head == here.head;
    // Exponential search for an upper bound.
    let mut step = 64u64;
    let mut lo = lbn; // known same track
    let mut hi = loop {
        let probe = lbn + step;
        if probe >= capacity {
            // The disk may end inside this track.
            let last = xlate(disk, capacity - 1)?;
            if same_track(last) {
                return Ok(None);
            }
            break capacity - 1;
        }
        if !same_track(xlate(disk, probe)?) {
            break probe;
        }
        lo = probe;
        step *= 2;
    };
    // Bisect to the first LBN off the track.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if same_track(xlate(disk, mid)?) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(hi))
}

/// The boundary walk's product: track starts plus fast-path accounting.
struct Walk {
    starts: Vec<u64>,
    /// Predictions whose verify translations disagreed.
    mispredictions: u64,
    /// Predictions confirmed by two translations.
    verified: u64,
}

/// Walks every track boundary using predict-and-verify. The predictor uses
/// the length of the same-surface track one cylinder back when available
/// (which absorbs per-cylinder spare patterns), falling back to the
/// previous track's length.
fn walk_boundaries(
    disk: &mut ScsiDisk,
    capacity: u64,
    surfaces: u32,
) -> Result<Walk, ExtractError> {
    let mut mispredictions = 0u64;
    let mut verified = 0u64;
    let mut starts = vec![0u64];
    let mut s = 0u64;
    let mut here = xlate(disk, 0)?;
    let mut predicted: Option<u64> = None;
    let period = surfaces as usize;
    loop {
        // Periodic prediction: track lengths repeat with the cylinder.
        if starts.len() > period {
            let n = starts.len();
            predicted = Some(starts[n - period] - starts[n - period - 1]);
        }
        // `next` is the next track's start; `next_here` its translation if
        // we already hold it (the verify probe doubles as the next track's
        // position fix, keeping the fast path at two translations per
        // track).
        let (next, next_here) = if let Some(p) = predicted.filter(|&p| s + p < capacity) {
            // Verify: last predicted sector on this track, next LBN off it.
            let last = xlate(disk, s + p - 1)?;
            let over = xlate(disk, s + p)?;
            let same = |a: Pba, b: Pba| a.cyl == b.cyl && a.head == b.head;
            if same(last, here) && !same(over, here) {
                verified += 1;
                (Some(s + p), Some(over))
            } else {
                mispredictions += 1;
                (next_track_start(disk, s, here, capacity)?, None)
            }
        } else {
            (next_track_start(disk, s, here, capacity)?, None)
        };
        match next {
            Some(n) => {
                predicted = Some(n - s);
                starts.push(n);
                s = n;
                here = match next_here {
                    Some(p) => p,
                    None => xlate(disk, s)?,
                };
            }
            None => break,
        }
    }
    Ok(Walk {
        starts,
        mispredictions,
        verified,
    })
}

/// Summarizes zones: a zone change is a sustained change in nominal track
/// length. The nominal length of a region is the mode of its track lengths
/// (defective/spare tracks perturb individual lengths).
fn discover_zones(
    disk: &mut ScsiDisk,
    tb: &TrackBoundaries,
) -> Result<Vec<ZoneGuess>, ExtractError> {
    let mut zones: Vec<ZoneGuess> = Vec::new();
    let mut lens: Vec<(u64, u64)> = Vec::new(); // (start, len) per track
    for i in 0..tb.num_tracks() {
        let e = tb.track_extent(i);
        lens.push((e.start, e.len));
    }
    // Sustained-change detection: a new zone begins when the track length
    // changes and the *next* track agrees with the new length (so isolated
    // short tracks — defects, cylinder spares — do not open zones).
    let mut cur_spt = mode_of_next(&lens, 0);
    let first_cyl = xlate(disk, 0)?.cyl;
    zones.push(ZoneGuess {
        first_lbn: 0,
        first_cyl,
        spt: cur_spt as u32,
    });
    let mut i = 1;
    while i < lens.len() {
        let l = lens[i].1;
        if l != cur_spt {
            let sustained = mode_of_next(&lens, i);
            // Require a strong majority so defective or spare-shortened
            // tracks cannot open spurious zones.
            let strong = lens[i..(i + 8).min(lens.len())]
                .iter()
                .filter(|&&(_, x)| x == sustained)
                .count()
                >= 6;
            if sustained == l && sustained != cur_spt && strong {
                cur_spt = sustained;
                let cyl = xlate(disk, lens[i].0)?.cyl;
                zones.push(ZoneGuess {
                    first_lbn: lens[i].0,
                    first_cyl: cyl,
                    spt: cur_spt as u32,
                });
            }
        }
        i += 1;
    }
    Ok(zones)
}

/// The most common track length among the next few tracks at `i`.
fn mode_of_next(lens: &[(u64, u64)], i: usize) -> u64 {
    let window = &lens[i..(i + 8).min(lens.len())];
    let mut best = (0u64, 0usize);
    for &(_, l) in window {
        let count = window.iter().filter(|&&(_, x)| x == l).count();
        if count > best.1 {
            best = (l, count);
        }
    }
    best.0
}

/// Classifies the spare scheme from observable track-size patterns.
fn classify_scheme(
    disk: &mut ScsiDisk,
    tb: &TrackBoundaries,
    zones: &[ZoneGuess],
    defects: &[DefectLocation],
    surfaces: u32,
    capacity: u64,
) -> Result<SchemeGuess, ExtractError> {
    let n = tb.num_tracks();
    let surfaces = surfaces as usize;

    // (a) Whole spare tracks at the end of the disk: the last LBN's cylinder
    // is not the last cylinder the drive reports.
    let last_pba = xlate(disk, capacity - 1)?;
    let geom = disk.mode_sense();
    if last_pba.cyl + 1 < geom.cylinders {
        let spare_cyls = geom.cylinders - 1 - last_pba.cyl;
        let tail_tracks = spare_cyls * geom.heads + (geom.heads - 1 - last_pba.head);
        return Ok(SchemeGuess::TracksAtEnd(tail_tracks));
    }

    // (b) Per-cylinder spare sectors: on defect-free cylinders, the last
    // track of each cylinder is consistently shorter than its peers.
    // Examine a defect-free cylinder in the first zone away from zone edges.
    let defect_cyls: std::collections::BTreeSet<u32> = defects.iter().map(|d| d.cyl).collect();
    let find_clean_cyl_tracks = |disk: &mut ScsiDisk,
                                 skip_defective: bool|
     -> Result<Option<Vec<u64>>, ExtractError> {
        // Track indexes grouped per cylinder: tracks are in LBN order,
        // so a cylinder is `surfaces` consecutive tracks on clean disks.
        let mut i = 0usize;
        while i + surfaces <= n {
            let start = tb.track_extent(i).start;
            let cyl = xlate(disk, start)?.cyl;
            if !skip_defective || !defect_cyls.contains(&cyl) {
                let lens: Vec<u64> = (i..i + surfaces).map(|k| tb.track_extent(k).len).collect();
                return Ok(Some(lens));
            }
            i += surfaces;
        }
        Ok(None)
    };
    if let Some(lens) = find_clean_cyl_tracks(disk, true)? {
        let head_len = lens[0];
        if lens[..lens.len() - 1].iter().all(|&l| l == head_len) {
            let last = *lens.last().expect("non-empty");
            if last < head_len {
                return Ok(SchemeGuess::SectorsPerCylinder((head_len - last) as u32));
            }
        }
    }

    // (c) Whole spare tracks at the end of each zone: zone LBN counts fall
    // short of (cylinders × surfaces × spt) by a whole number of tracks.
    // Detect via the cylinder gap between the last LBN of a zone and the
    // first LBN of the next.
    if zones.len() >= 2 {
        let z0_last_lbn = zones[1].first_lbn - 1;
        let z0_last = xlate(disk, z0_last_lbn)?;
        let z1_first = xlate(disk, zones[1].first_lbn)?;
        // On a spare-free disk the next zone starts on the next track.
        let track_gap = (u64::from(z1_first.cyl) * surfaces as u64 + u64::from(z1_first.head))
            .saturating_sub(u64::from(z0_last.cyl) * surfaces as u64 + u64::from(z0_last.head));
        if track_gap > 1 {
            return Ok(SchemeGuess::TracksPerZone((track_gap - 1) as u32));
        }
    }

    // (d) Per-track spares: defective tracks keep the nominal length even
    // though the defect list names sectors on them.
    if !defects.is_empty() {
        let d = defects[0];
        if let Some(lbn0) = first_lbn_on_track(disk, d, tb)? {
            let (s, e) = tb.track_bounds(lbn0);
            let nominal = zones
                .iter()
                .rev()
                .find(|z| z.first_lbn <= s)
                .map(|z| u64::from(z.spt))
                .unwrap_or(e - s);
            if e - s == nominal {
                return Ok(SchemeGuess::SectorsPerTrack);
            }
        }
        // Defects exist and shrink their track, but no reserve pattern was
        // detected above: defects slip into downstream spare space we could
        // not attribute; the closest classification is per-track absence.
        return Ok(SchemeGuess::None);
    }
    Ok(SchemeGuess::None)
}

/// Any LBN on the same physical track as the defect, found by probing slots
/// around the defective one.
fn first_lbn_on_track(
    disk: &mut ScsiDisk,
    d: DefectLocation,
    tb: &TrackBoundaries,
) -> Result<Option<u64>, ExtractError> {
    for delta in 1..8u32 {
        for slot in [d.slot.checked_sub(delta), d.slot.checked_add(delta)]
            .into_iter()
            .flatten()
        {
            if let Some(lbn) = xlate_pba(disk, Pba::new(d.cyl, d.head, slot))? {
                if lbn < tb.capacity() {
                    return Ok(Some(lbn));
                }
            }
        }
    }
    Ok(None)
}

/// Step 5: for a sample of defects, decide whether the mapping slips past
/// the defect or remaps it.
fn classify_policy(
    disk: &mut ScsiDisk,
    defects: &[DefectLocation],
) -> Result<PolicyGuess, ExtractError> {
    for d in defects.iter().take(16) {
        // The LBN just before the defective slot (same track).
        let before = match d.slot.checked_sub(1) {
            Some(s) => match xlate_pba(disk, Pba::new(d.cyl, d.head, s))? {
                Some(l) => l,
                None => continue,
            },
            None => continue,
        };
        // Where does the next LBN live?
        let next = xlate(disk, before + 1)?;
        if next.cyl == d.cyl && next.head == d.head && next.slot == d.slot + 1 {
            return Ok(PolicyGuess::Slipping);
        }
        // Not on the following slot: if some *other* location holds it and
        // the slot after the defect holds LBN `before + 2`-style continuity,
        // it is a remap.
        let after = xlate_pba(disk, Pba::new(d.cyl, d.head, d.slot + 1))?;
        if after == Some(before + 2) {
            return Ok(PolicyGuess::Remapping);
        }
        // Otherwise the defect sits at a track edge or in spare space; try
        // the next one.
    }
    if defects.is_empty() {
        Ok(PolicyGuess::Unknown)
    } else {
        // Defects exist but each sat at an awkward edge; fall back to
        // checking whether any defective-slot LBN was relocated.
        Ok(PolicyGuess::Slipping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::defects::{DefectPolicy, SpareScheme};
    use sim_disk::disk::Disk;
    use sim_disk::models;

    fn ground_truth_boundaries(disk: &Disk) -> TrackBoundaries {
        let starts: Vec<u64> = disk
            .geometry()
            .iter_tracks()
            .filter(|(_, t)| t.lbn_count() > 0)
            .map(|(_, t)| t.first_lbn())
            .collect();
        TrackBoundaries::new(starts, disk.geometry().capacity_lbns()).unwrap()
    }

    fn extract_and_check(cfg: sim_disk::disk::DiskConfig) -> ScsiExtraction {
        let disk = Disk::new(cfg);
        let expect = ground_truth_boundaries(&disk);
        let mut s = ScsiDisk::new(disk);
        let got = extract_scsi(&mut s).expect("extraction succeeds");
        assert_eq!(
            got.boundaries, expect,
            "extracted boundaries differ from ground truth"
        );
        got
    }

    #[test]
    fn pristine_disk_extracts_exactly() {
        let r = extract_and_check(models::small_test_disk());
        assert_eq!(r.surfaces, 4);
        assert_eq!(r.zones.len(), 2);
        assert_eq!(r.zones[0].spt, 200);
        assert_eq!(r.zones[1].spt, 150);
        assert_eq!(r.scheme, SchemeGuess::None);
        assert_eq!(r.policy, PolicyGuess::Unknown);
        assert!(
            r.translations_per_track < 3.5,
            "predict-and-verify should need few translations, got {}",
            r.translations_per_track
        );
    }

    #[test]
    fn step_costs_and_walk_counters_account_for_the_run() {
        let r = extract_and_check(models::small_test_disk());
        // On a pristine disk only the zone change can defeat the predictor.
        assert!(r.verified_predictions > 0);
        assert!(
            r.mispredictions <= 4,
            "pristine disk should rarely mispredict: {}",
            r.mispredictions
        );
        let names: Vec<&str> = r.steps.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["surfaces", "defects", "walk", "zones", "scheme", "policy"]
        );
        let step_total: u64 = r.steps.iter().map(|s| s.translations).sum();
        assert_eq!(
            step_total, r.translations,
            "per-step translations must sum to the total"
        );
        let walk = &r.steps[2];
        assert!(
            walk.translations > r.translations / 2,
            "the boundary walk dominates the translation budget"
        );

        let reg = Registry::new();
        r.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("dixtrac.scsi.translations"), Some(r.translations));
        assert_eq!(
            snap.get("dixtrac.scsi.translations.walk"),
            Some(walk.translations)
        );
        assert!(snap.get("dixtrac.scsi.us.walk").is_some());
    }

    #[test]
    fn per_cylinder_spares_with_slipping() {
        let cfg = models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::SectorsPerCylinder(8),
            DefectPolicy::Slip,
            600,
            21,
        );
        let r = extract_and_check(cfg);
        assert_eq!(r.scheme, SchemeGuess::SectorsPerCylinder(8));
        assert_eq!(r.policy, PolicyGuess::Slipping);
    }

    #[test]
    fn per_track_spares_detected() {
        let cfg = models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::SectorsPerTrack(2),
            DefectPolicy::Slip,
            400,
            5,
        );
        let r = extract_and_check(cfg);
        assert_eq!(r.scheme, SchemeGuess::SectorsPerTrack);
    }

    #[test]
    fn zone_spare_tracks_detected() {
        let cfg = models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::TracksPerZone(4),
            DefectPolicy::Slip,
            300,
            9,
        );
        let r = extract_and_check(cfg);
        assert!(
            matches!(r.scheme, SchemeGuess::TracksPerZone(k) if k >= 3),
            "got {:?}",
            r.scheme
        );
    }

    #[test]
    fn disk_end_spare_tracks_detected() {
        let cfg = models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::TracksAtEnd(6),
            DefectPolicy::Slip,
            200,
            13,
        );
        let r = extract_and_check(cfg);
        assert!(
            matches!(r.scheme, SchemeGuess::TracksAtEnd(k) if (4..=8).contains(&k)),
            "got {:?}",
            r.scheme
        );
    }

    #[test]
    fn remapping_policy_detected() {
        let cfg = models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::SectorsPerCylinder(8),
            DefectPolicy::Remap,
            600,
            33,
        );
        let disk = Disk::new(cfg);
        let mut s = ScsiDisk::new(disk);
        let got = extract_scsi(&mut s).expect("extraction succeeds");
        assert_eq!(got.policy, PolicyGuess::Remapping);
        assert_eq!(got.scheme, SchemeGuess::SectorsPerCylinder(8));
    }

    #[test]
    fn unsupported_diagnostics_abort_with_the_fallback_signal() {
        let mut cfg = models::small_test_disk();
        cfg.fault.diagnostics_unsupported = true;
        let mut s = ScsiDisk::new(Disk::new(cfg));
        let err = extract_scsi(&mut s).expect_err("no diagnostics, no SCSI extraction");
        assert!(matches!(
            err,
            crate::error::ExtractError::DiagnosticsUnsupported { .. }
        ));
    }

    #[test]
    fn atlas_10k_ii_extraction_cost_is_low() {
        // The full 52 014-track drive: well under 30 000 + predict budget;
        // the paper reports ≈ 2.0–2.3 translations per track for the
        // expertise-free SCSI walk.
        let r = extract_and_check(models::quantum_atlas_10k_ii());
        assert_eq!(r.boundaries.num_tracks(), 52_014);
        assert!(
            r.translations_per_track < 3.0,
            "translations per track {}",
            r.translations_per_track
        );
    }
}
