//! The general, interface-agnostic extraction algorithm (§4.1.1).
//!
//! Only `READ` timing is used — no diagnostic commands — so the algorithm
//! must overcome three obstacles the paper calls out:
//!
//! * **Rotational-latency variance**: probes are issued at a controlled
//!   offset within the rotational period. Each probe context calibrates the
//!   offset that minimizes a one-sector read's response time (head arrives
//!   just before the sector) and then keeps the residual rotational wait
//!   within a small budget by re-measuring one-sector reads as it walks.
//! * **Firmware caching**: many extraction streams at widespread disk
//!   locations proceed round-robin, so the segmented cache is churned
//!   between two probes of the same location (the paper interleaves 100).
//!   Each probe is additionally preceded by a positioning *write* to the
//!   context's anchor sector, which both parks the head at a fixed cylinder
//!   (making the probe's seek constant) and never hits the cache.
//! * **Arbitrary boundaries**: with the rotational wait controlled, the
//!   response of `read(S, N)` grows by one sector time per added sector
//!   while the request stays on one track, and jumps by a head-switch time
//!   (plus realignment) as soon as it crosses a boundary. The smallest
//!   crossing `N` is found by verify-then-binary-search, exactly as in the
//!   paper: the common case (next track same size) is confirmed with two
//!   probes.

use crate::error::with_retries;
use crate::error::{backoff, ExtractError, MAX_ATTEMPTS};
use scsi::ScsiDisk;
use sim_disk::{SimDur, SimTime};
use traxtent::obs::Registry;
use traxtent::TrackBoundaries;

/// Tuning for the general extractor.
#[derive(Debug, Clone, Copy)]
pub struct GeneralConfig {
    /// Number of interleaved probe streams (must exceed the firmware cache's
    /// segment count to defeat it; the paper uses 100).
    pub contexts: usize,
    /// Phases tried during per-context rotational calibration.
    pub calibration_phases: u32,
    /// Response-time excess over one revolution that classifies a probe as
    /// having crossed a track boundary (about half a head-switch time).
    pub cross_threshold: SimDur,
    /// Residual rotational wait tolerated before re-aligning the probe
    /// phase, as a fraction of a revolution.
    pub rot_budget_frac: f64,
    /// Timing probes per boundary decision; the majority wins and the
    /// losing fraction lowers the boundary's confidence. Use an odd count
    /// (3, 5) on drives with timing jitter; `1` reproduces the noise-free
    /// single-probe behavior exactly.
    pub votes: u32,
}

impl Default for GeneralConfig {
    fn default() -> Self {
        GeneralConfig {
            contexts: 100,
            calibration_phases: 32,
            cross_threshold: SimDur::from_micros_f64(250.0),
            rot_budget_frac: 1.0 / 32.0,
            votes: 1,
        }
    }
}

/// The outcome of a general extraction.
#[derive(Debug, Clone)]
pub struct GeneralExtraction {
    /// The extracted boundary table.
    pub boundaries: TrackBoundaries,
    /// Total timed probe reads issued.
    pub probe_reads: u64,
    /// Probes per extracted track.
    pub probes_per_track: f64,
    /// Simulated wall-clock time the extraction took.
    pub elapsed: SimTime,
    /// Activity counters: where the probes went and how often the
    /// predict-and-verify fast path missed.
    pub counters: GeneralCounters,
    /// Simulated time spent in each step of the algorithm.
    pub steps: StepBreakdown,
    /// Per-track confidence in `[0, 1]`: the worst majority-vote agreement
    /// among the probe decisions that located the track's end boundary.
    /// With `votes: 1` every entry is `1.0`.
    pub confidence: Vec<f64>,
}

/// Activity counters of one general extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeneralCounters {
    /// Probes spent sweeping calibration phases.
    pub calibration_probes: u64,
    /// Rotational-convergence iterations: baseline re-measures that had to
    /// shift the issue phase before the residual wait fit the budget.
    pub convergence_iters: u64,
    /// Full recalibrations forced by persistent baseline drift.
    pub recalibrations: u64,
    /// Boundary mispredictions: verify probes that contradicted the
    /// predicted sectors-per-track and forced a re-measure or search.
    pub mispredictions: u64,
    /// Tracks confirmed by the two-probe verify fast path.
    pub verified_predictions: u64,
}

/// Simulated time a general extraction spent per algorithm step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepBreakdown {
    /// Rotational-phase calibration sweeps.
    pub calibrate: SimDur,
    /// One-sector baseline re-measures.
    pub baseline: SimDur,
    /// Per-sector slope measurement (the 17/33/49 ladder).
    pub slope: SimDur,
    /// Predict-and-verify probes.
    pub verify: SimDur,
    /// Upward doubling and bisection searches.
    pub search: SimDur,
}

impl GeneralExtraction {
    /// Mean per-track confidence (1.0 when every boundary decision was
    /// unanimous).
    pub fn mean_confidence(&self) -> f64 {
        if self.confidence.is_empty() {
            return 1.0;
        }
        self.confidence.iter().sum::<f64>() / self.confidence.len() as f64
    }

    /// Publishes the extraction's counters and step times (in simulated
    /// microseconds) under `dixtrac.general.*`.
    pub fn export_metrics(&self, reg: &Registry) {
        reg.add("dixtrac.general.probe_reads", self.probe_reads);
        reg.add(
            "dixtrac.general.tracks",
            self.boundaries.num_tracks() as u64,
        );
        let c = &self.counters;
        reg.add("dixtrac.general.calibration_probes", c.calibration_probes);
        reg.add("dixtrac.general.convergence_iters", c.convergence_iters);
        reg.add("dixtrac.general.recalibrations", c.recalibrations);
        reg.add("dixtrac.general.mispredictions", c.mispredictions);
        reg.add(
            "dixtrac.general.verified_predictions",
            c.verified_predictions,
        );
        let s = &self.steps;
        reg.add("dixtrac.general.us.calibrate", s.calibrate.as_ns() / 1_000);
        reg.add("dixtrac.general.us.baseline", s.baseline.as_ns() / 1_000);
        reg.add("dixtrac.general.us.slope", s.slope.as_ns() / 1_000);
        reg.add("dixtrac.general.us.verify", s.verify.as_ns() / 1_000);
        reg.add("dixtrac.general.us.search", s.search.as_ns() / 1_000);
        reg.add(
            "dixtrac.general.confidence_ppm",
            (self.mean_confidence() * 1e6) as u64,
        );
    }
}

/// What a context is currently doing.
#[derive(Debug, Clone, Copy)]
enum State {
    /// Trying calibration phase `i`; best (response, phase) so far.
    Calibrate {
        i: u32,
        best_r: SimDur,
        best_phase: SimDur,
    },
    /// Re-measuring the one-sector baseline at the current phase.
    Baseline { attempts: u32 },
    /// Measuring the linear model's slope: point `i` of the 17/33/49-sector
    /// ladder, with the responses gathered so far.
    SlotProbe { i: u8, r: [SimDur; 3] },
    /// Verifying that `spt_est` sectors do not cross.
    VerifyLow,
    /// Verifying that `spt_est + 1` sectors do cross.
    VerifyHigh,
    /// Doubling `hi` until a crossing is found; `lo` is known non-crossing.
    SearchUp { lo: u64, hi: u64 },
    /// Bisecting: `lo` non-crossing, `hi` crossing.
    Bisect { lo: u64, hi: u64 },
    /// Region finished.
    Done,
}

/// One interleaved probe stream.
#[derive(Debug)]
struct Context {
    /// End of the region this context is responsible for.
    region_end: u64,
    /// Start of the track currently being measured.
    s: u64,
    /// Issue phase within the revolution.
    phase: SimDur,
    /// Smallest one-sector response observed (rotational wait ≈ 0).
    floor_r1: SimDur,
    /// One-sector response at the current track/phase (the comparison base).
    baseline: SimDur,
    /// Predicted sectors per track.
    spt_est: Option<u64>,
    /// Measured per-sector response-time slope (the linear model of §4.1.1).
    slope: Option<SimDur>,
    /// The track start the slope was measured at, to spot staleness when a
    /// prediction fails (e.g. on zone changes, where the sector time moves).
    slope_at: Option<u64>,
    state: State,
    /// Worst vote agreement among the decisions since the last boundary.
    cur_conf: f64,
    /// Boundaries found, each with the confidence of the decisions that
    /// located it (first entry is the first boundary at or after the region
    /// start).
    found: Vec<(u64, f64)>,
}

/// Runs the general extraction over the whole disk.
///
/// Fails when the drive keeps aborting probes past the retry budget, or
/// rejects a probe address outright. Needs no diagnostic commands, so it is
/// the fallback when [`crate::extract_scsi`] reports
/// [`ExtractError::DiagnosticsUnsupported`].
///
/// # Panics
///
/// Panics if `config.contexts` is zero or exceeds the number of LBNs.
pub fn extract_general(
    disk: &mut ScsiDisk,
    config: &GeneralConfig,
) -> Result<GeneralExtraction, ExtractError> {
    let capacity = disk.read_capacity();
    if capacity == 0 {
        return Err(ExtractError::ZeroCapacity);
    }
    let rev = disk.revolution();
    assert!(config.contexts > 0, "need at least one context");
    assert!(
        (config.contexts as u64) <= capacity,
        "more contexts than sectors"
    );

    let mut contexts: Vec<Context> = (0..config.contexts)
        .map(|i| {
            let start = capacity * i as u64 / config.contexts as u64;
            let end = capacity * (i as u64 + 1) / config.contexts as u64;
            Context {
                region_end: end,
                s: start,
                phase: SimDur::ZERO,
                floor_r1: SimDur::from_secs_f64(f64::MAX / 1e18),
                baseline: SimDur::ZERO,
                spt_est: None,
                slope: None,
                slope_at: None,
                state: State::Calibrate {
                    i: 0,
                    best_r: SimDur::from_secs_f64(3600.0),
                    best_phase: SimDur::ZERO,
                },
                cur_conf: 1.0,
                found: Vec::new(),
            }
        })
        .collect();

    let mut probe_reads = 0u64;
    let mut counters = GeneralCounters::default();
    let mut steps = StepBreakdown::default();
    let mut active = contexts.len();
    while active > 0 {
        for ctx in &mut contexts {
            if matches!(ctx.state, State::Done) {
                continue;
            }
            let slot = step_slot(&ctx.state);
            let before = disk.elapsed();
            step(
                disk,
                ctx,
                rev,
                capacity,
                config,
                &mut probe_reads,
                &mut counters,
            )?;
            let spent = disk.elapsed() - before;
            *slot_of(&mut steps, slot) = *slot_of(&mut steps, slot) + spent;
            if matches!(ctx.state, State::Done) {
                active -= 1;
            }
        }
    }

    // Merge: all discovered boundaries, plus the origin. Where two contexts
    // found the same boundary, keep the lower confidence (the cautious
    // merge never overstates what the probes agreed on).
    let mut conf_of: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for (b, conf) in contexts.iter().flat_map(|c| c.found.iter().copied()) {
        let e = conf_of.entry(b).or_insert(conf);
        *e = e.min(conf);
    }
    let mut starts: Vec<u64> = conf_of.keys().copied().collect();
    starts.push(0);
    starts.sort_unstable();
    starts.dedup();
    starts.retain(|&b| b < capacity);
    let boundaries = TrackBoundaries::new(starts, capacity)
        .map_err(|_| ExtractError::InvalidTable("merged boundary table is invalid"))?;
    // A track inherits the confidence of the boundary that ends it; the
    // final track's end (the capacity) was never voted on and stays 1.0.
    let confidence: Vec<f64> = (0..boundaries.num_tracks())
        .map(|i| {
            let e = boundaries.track_extent(i);
            conf_of.get(&(e.start + e.len)).copied().unwrap_or(1.0)
        })
        .collect();

    Ok(GeneralExtraction {
        probes_per_track: probe_reads as f64 / boundaries.num_tracks() as f64,
        probe_reads,
        elapsed: disk.elapsed(),
        boundaries,
        counters,
        steps,
        confidence,
    })
}

/// Which [`StepBreakdown`] slot a state's probes are charged to.
fn step_slot(state: &State) -> usize {
    match state {
        State::Calibrate { .. } => 0,
        State::Baseline { .. } => 1,
        State::SlotProbe { .. } => 2,
        State::VerifyLow | State::VerifyHigh => 3,
        State::SearchUp { .. } | State::Bisect { .. } | State::Done => 4,
    }
}

/// The mutable slot for [`step_slot`]'s index.
fn slot_of(steps: &mut StepBreakdown, slot: usize) -> &mut SimDur {
    match slot {
        0 => &mut steps.calibrate,
        1 => &mut steps.baseline,
        2 => &mut steps.slope,
        3 => &mut steps.verify,
        _ => &mut steps.search,
    }
}

/// Executes one probe for the context and advances its state machine.
fn step(
    disk: &mut ScsiDisk,
    ctx: &mut Context,
    rev: SimDur,
    capacity: u64,
    config: &GeneralConfig,
    probe_reads: &mut u64,
    counters: &mut GeneralCounters,
) -> Result<(), ExtractError> {
    // Positioning write at the probe target itself: it parks the head on
    // the target track (making the probe's non-rotational cost constant
    // across the whole walk) and — because a write invalidates its sectors
    // in the firmware cache — guarantees the timed read that follows cannot
    // be a cache hit, even when most other probe streams have finished and
    // the interleave alone no longer churns the cache. One scratch sector
    // per track is sacrificed; the paper notes the destructiveness of
    // write-based probing, which is why the production path is the
    // SCSI-specific extractor.
    let anchor = ctx.s;
    let _ = with_retries(disk, "write", anchor, |d| d.write_at(anchor, 1))?;

    let probe = |disk: &mut ScsiDisk,
                 lbn: u64,
                 len: u64,
                 phase: SimDur,
                 n: &mut u64|
     -> Result<SimDur, ExtractError> {
        let mut attempt = 0;
        loop {
            *n += 1;
            let now = disk.elapsed();
            // Next instant at or after `now` whose offset within the
            // revolution equals `phase`.
            let rev_ns = rev.as_ns();
            let now_off = now.as_ns() % rev_ns;
            let wait = (phase.as_ns() + rev_ns - now_off) % rev_ns;
            let at = now + SimDur::from_ns(wait);
            match disk.read_at_time(lbn, len, at) {
                Ok(c) => return Ok(c.response_time()),
                Err(e) if e.is_transient() => {
                    // The rotation-synchronized issue instant is recomputed
                    // on the next pass, so backing off never skews the
                    // probe phase.
                    attempt += 1;
                    if attempt >= MAX_ATTEMPTS {
                        return Err(ExtractError::RetriesExhausted {
                            command: "read",
                            lbn,
                            attempts: attempt,
                        });
                    }
                    disk.wait(backoff(attempt - 1));
                }
                Err(e) => return Err(e.into()),
            }
        }
    };

    // A measurement under `config.votes`: repeat the probe and keep the
    // *minimum* response. Rotational noise only ever delays a response
    // (the platter cannot present data early), so the smallest observation
    // is the cleanest one — this keeps the calibrated phase, baseline, and
    // slope from inheriting one unlucky draw and silently eating the
    // rotational margin every later decision depends on. With `votes: 1`
    // this is a single probe and no extra commands.
    let measure = |disk: &mut ScsiDisk,
                   len: u64,
                   phase: SimDur,
                   n: &mut u64|
     -> Result<SimDur, ExtractError> {
        let mut best = probe(disk, anchor, len, phase, n)?;
        for _ in 1..config.votes.max(1) {
            let _ = with_retries(disk, "write", anchor, |d| d.write_at(anchor, 1))?;
            best = best.min(probe(disk, anchor, len, phase, n)?);
        }
        Ok(best)
    };

    // The linear model of §4.1.1: a non-crossing `read(s, n)` responds in
    // `baseline + (n − 1) × slope`; a boundary crossing adds a head switch
    // plus realignment, far above the threshold. Requests running past the
    // end of the disk cross by definition.
    let crosses = |r: SimDur, baseline: SimDur, slope: SimDur, n: u64| -> bool {
        r > baseline + slope * (n - 1) + config.cross_threshold
    };

    // A boundary decision under `config.votes`: probe the same request
    // repeatedly — each repeat preceded by a fresh positioning write so the
    // firmware cache cannot answer it — and let the majority decide. The
    // losing fraction is the decision's doubt. With `votes: 1` this is one
    // probe and no extra commands, bit-identical to the noise-free path.
    let vote = |disk: &mut ScsiDisk,
                len: u64,
                phase: SimDur,
                baseline: SimDur,
                slope: SimDur,
                n: &mut u64|
     -> Result<(bool, f64), ExtractError> {
        let votes = config.votes.max(1);
        let mut crossing = 0u32;
        for v in 0..votes {
            if v > 0 {
                let _ = with_retries(disk, "write", anchor, |d| d.write_at(anchor, 1))?;
            }
            let r = probe(disk, anchor, len, phase, n)?;
            if crosses(r, baseline, slope, len) {
                crossing += 1;
            }
        }
        let majority = crossing * 2 > votes;
        let agree = f64::from(crossing.max(votes - crossing)) / f64::from(votes);
        Ok((majority, agree))
    };

    match ctx.state {
        State::Calibrate {
            i,
            best_r,
            best_phase,
        } => {
            counters.calibration_probes += 1;
            let phase =
                SimDur::from_ns(rev.as_ns() * u64::from(i) / u64::from(config.calibration_phases));
            let r = measure(disk, 1, phase, probe_reads)?;
            let (best_r, best_phase) = if r < best_r {
                (r, phase)
            } else {
                (best_r, best_phase)
            };
            if i + 1 < config.calibration_phases {
                ctx.state = State::Calibrate {
                    i: i + 1,
                    best_r,
                    best_phase,
                };
            } else {
                ctx.phase = best_phase;
                ctx.floor_r1 = ctx.floor_r1.min(best_r);
                ctx.baseline = best_r;
                if config.votes > 1 {
                    // Voting means the caller expects noise. The calibrated
                    // phase has ~zero rotational margin (it minimized the
                    // response), so the smallest spindle jitter pushes the
                    // probe past its sector and costs a spurious full
                    // revolution. Issue a guard band early — the same
                    // rev/128 the between-track baseline convergence
                    // targets — and fold the extra wait into the model
                    // baseline.
                    let guard = SimDur::from_ns(rev.as_ns() / 128);
                    ctx.phase = SimDur::from_ns(
                        (ctx.phase.as_ns() + rev.as_ns() - guard.as_ns()) % rev.as_ns(),
                    );
                    ctx.baseline += guard;
                }
                ctx.state = State::SlotProbe {
                    i: 0,
                    r: [SimDur::ZERO; 3],
                };
            }
        }
        State::SlotProbe { i, mut r } => {
            let lens = [17u64, 33, 49];
            if ctx.s + 49 > capacity {
                // Too little disk left for slope probing; a conservative
                // zero slope is safe for the few sectors that remain.
                ctx.slope = Some(SimDur::ZERO);
                ctx.slope_at = Some(ctx.s);
                ctx.state = next_measure_state(ctx, capacity);
                return Ok(());
            }
            r[i as usize] = measure(disk, lens[i as usize], ctx.phase, probe_reads)?;
            if usize::from(i) + 1 < lens.len() {
                ctx.state = State::SlotProbe { i: i + 1, r };
                return Ok(());
            }
            // Per-sector slope over three 16-sector windows. A slipped
            // defect or a track boundary inside a window only ever inflates
            // it, so the *minimum* of the windows is the clean sector time
            // whenever at least one window is clean — which makes the linear
            // model immune to the defects that perturb track sizes in the
            // first place. One pathology must be filtered first: when two
            // consecutive windows both cross into a rotationally phase-
            // locked next track, their difference measures only the *bus*
            // time per sector. No drive has more than ~1024 sectors per
            // track, so any window below rev/1024 is physically impossible
            // as a media rate and is discarded.
            let floor = SimDur::from_ns(rev.as_ns() / 1024);
            let windows = [
                r[0].saturating_sub(ctx.baseline) / 16,
                r[1].saturating_sub(r[0]) / 16,
                r[2].saturating_sub(r[1]) / 16,
            ];
            let slope = windows
                .iter()
                .copied()
                .filter(|&w| w >= floor)
                .min()
                .unwrap_or(floor);
            ctx.slope = Some(slope);
            ctx.slope_at = Some(ctx.s);
            ctx.state = next_measure_state(ctx, capacity);
        }
        State::Baseline { attempts } => {
            let r = measure(disk, 1, ctx.phase, probe_reads)?;
            ctx.floor_r1 = ctx.floor_r1.min(r);
            let excess = r.saturating_sub(ctx.floor_r1);
            let budget = SimDur::from_ns((rev.as_ns() as f64 * config.rot_budget_frac) as u64);
            if excess <= budget {
                ctx.baseline = r;
                ctx.state = if ctx.slope.is_some() {
                    next_measure_state(ctx, capacity)
                } else {
                    State::SlotProbe {
                        i: 0,
                        r: [SimDur::ZERO; 3],
                    }
                };
            } else if attempts < 3 {
                // Shift the issue phase so the head arrives just before the
                // sector instead of `excess` early.
                counters.convergence_iters += 1;
                let target = SimDur::from_ns(rev.as_ns() / 128);
                ctx.phase = SimDur::from_ns(
                    (ctx.phase.as_ns() + excess.saturating_sub(target).as_ns()) % rev.as_ns(),
                );
                ctx.state = State::Baseline {
                    attempts: attempts + 1,
                };
            } else {
                // Persistent drift (e.g. zone change altered the layout):
                // recalibrate from scratch.
                counters.recalibrations += 1;
                ctx.state = State::Calibrate {
                    i: 0,
                    best_r: SimDur::from_secs_f64(3600.0),
                    best_phase: SimDur::ZERO,
                };
            }
        }
        State::VerifyLow => {
            let p = ctx.spt_est.expect("verify requires a prediction");
            if ctx.s + p >= capacity {
                ctx.state = State::Bisect {
                    lo: 1,
                    hi: capacity - ctx.s + 1,
                };
                return Ok(());
            }
            let (crossed, agree) = vote(
                disk,
                p,
                ctx.phase,
                ctx.baseline,
                ctx.slope.expect("slope measured"),
                probe_reads,
            )?;
            ctx.cur_conf = ctx.cur_conf.min(agree);
            if crossed {
                counters.mispredictions += 1;
                if ctx.slope_at == Some(ctx.s) {
                    // The prediction overshot: bisect below it.
                    ctx.state = State::Bisect { lo: 1, hi: p };
                } else {
                    // The failed prediction may mean the layout changed under
                    // us (zone boundary): re-measure the slope here first.
                    ctx.state = State::SlotProbe {
                        i: 0,
                        r: [SimDur::ZERO; 3],
                    };
                }
            } else {
                ctx.state = State::VerifyHigh;
            }
        }
        State::VerifyHigh => {
            let p = ctx.spt_est.expect("verify requires a prediction");
            if ctx.s + p + 1 > capacity {
                // The predicted track would end exactly at (or past) the end
                // of the disk.
                finish_track(ctx, (capacity - ctx.s).min(p), capacity);
                return Ok(());
            }
            let (crossed, agree) = vote(
                disk,
                p + 1,
                ctx.phase,
                ctx.baseline,
                ctx.slope.expect("slope measured"),
                probe_reads,
            )?;
            ctx.cur_conf = ctx.cur_conf.min(agree);
            if crossed {
                counters.verified_predictions += 1;
                finish_track(ctx, p, capacity);
            } else if ctx.slope_at == Some(ctx.s) {
                counters.mispredictions += 1;
                ctx.state = State::SearchUp {
                    lo: p + 1,
                    hi: (p + 1) * 2,
                };
            } else {
                counters.mispredictions += 1;
                ctx.state = State::SlotProbe {
                    i: 0,
                    r: [SimDur::ZERO; 3],
                };
            }
        }
        State::SearchUp { lo, hi } => {
            if ctx.s + hi > capacity {
                ctx.state = State::Bisect {
                    lo,
                    hi: capacity - ctx.s + 1,
                };
                return Ok(());
            }
            let (crossed, agree) = vote(
                disk,
                hi,
                ctx.phase,
                ctx.baseline,
                ctx.slope.expect("slope measured"),
                probe_reads,
            )?;
            ctx.cur_conf = ctx.cur_conf.min(agree);
            if crossed {
                ctx.state = State::Bisect { lo, hi };
            } else {
                ctx.state = State::SearchUp { lo: hi, hi: hi * 2 };
            }
        }
        State::Bisect { lo, hi } => {
            if hi - lo <= 1 {
                finish_track(ctx, lo, capacity);
                return Ok(());
            }
            let mid = lo + (hi - lo) / 2;
            let (crossed, agree) = vote(
                disk,
                mid,
                ctx.phase,
                ctx.baseline,
                ctx.slope.expect("slope measured"),
                probe_reads,
            )?;
            ctx.cur_conf = ctx.cur_conf.min(agree);
            if crossed {
                ctx.state = State::Bisect { lo, hi: mid };
            } else {
                ctx.state = State::Bisect { lo: mid, hi };
            }
        }
        State::Done => {}
    }
    Ok(())
}

/// Chooses what to do at a fresh `s` once the baseline is trustworthy.
fn next_measure_state(ctx: &Context, capacity: u64) -> State {
    match ctx.spt_est {
        Some(_) => State::VerifyLow,
        None => {
            // No prediction yet: find an upper bound by doubling.
            let hi = 2u64.min(capacity - ctx.s);
            State::SearchUp { lo: 1, hi }
        }
    }
}

/// Records the boundary at `s + spt` and advances to the next track (or
/// finishes the region).
fn finish_track(ctx: &mut Context, spt: u64, capacity: u64) {
    let boundary = ctx.s + spt;
    // A changed track size (zone boundary, spare area) may also change the
    // per-sector slope: measure it afresh on the next track.
    if ctx.spt_est != Some(spt) {
        ctx.slope = None;
    }
    ctx.spt_est = Some(spt);
    if boundary >= capacity {
        ctx.state = State::Done;
        return;
    }
    ctx.found.push((boundary, ctx.cur_conf));
    ctx.cur_conf = 1.0;
    ctx.s = boundary;
    if ctx.s >= ctx.region_end {
        ctx.state = State::Done;
    } else {
        ctx.state = State::Baseline { attempts: 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::defects::{DefectPolicy, SpareScheme};
    use sim_disk::disk::Disk;
    use sim_disk::models;

    fn ground_truth(disk: &Disk) -> TrackBoundaries {
        let starts: Vec<u64> = disk
            .geometry()
            .iter_tracks()
            .filter(|(_, t)| t.lbn_count() > 0)
            .map(|(_, t)| t.first_lbn())
            .collect();
        TrackBoundaries::new(starts, disk.geometry().capacity_lbns()).unwrap()
    }

    fn test_config() -> GeneralConfig {
        // Fewer contexts than the paper's 100 (the test disk is small), but
        // still comfortably above the 10 cache segments.
        GeneralConfig {
            contexts: 24,
            ..GeneralConfig::default()
        }
    }

    #[test]
    fn pristine_small_disk_extracts_exactly() {
        let disk = Disk::new(models::small_test_disk());
        let expect = ground_truth(&disk);
        let mut s = ScsiDisk::new(disk);
        let got = extract_general(&mut s, &test_config()).expect("extraction succeeds");
        assert_eq!(got.boundaries, expect);
        assert!(
            got.probes_per_track < 12.0,
            "probe cost too high: {} per track",
            got.probes_per_track
        );
    }

    #[test]
    fn slipped_defects_still_extract_exactly() {
        let cfg = models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::SectorsPerCylinder(8),
            DefectPolicy::Slip,
            600,
            17,
        );
        let disk = Disk::new(cfg);
        let expect = ground_truth(&disk);
        let mut s = ScsiDisk::new(disk);
        let got = extract_general(&mut s, &test_config()).expect("extraction succeeds");
        assert_eq!(got.boundaries, expect);
    }

    #[test]
    fn per_track_spares_extract_exactly() {
        let cfg = models::with_factory_defects(
            models::small_test_disk(),
            SpareScheme::SectorsPerTrack(2),
            DefectPolicy::Slip,
            400,
            23,
        );
        let disk = Disk::new(cfg);
        let expect = ground_truth(&disk);
        let mut s = ScsiDisk::new(disk);
        let got = extract_general(&mut s, &test_config()).expect("extraction succeeds");
        assert_eq!(got.boundaries, expect);
    }

    #[test]
    fn extraction_time_is_reported() {
        let disk = Disk::new(models::small_test_disk());
        let mut s = ScsiDisk::new(disk);
        let got = extract_general(&mut s, &test_config()).expect("extraction succeeds");
        assert!(got.elapsed > SimTime::ZERO);
        assert!(got.probe_reads > 0);
    }

    #[test]
    fn counters_and_step_times_account_for_the_run() {
        let disk = Disk::new(models::small_test_disk());
        let mut s = ScsiDisk::new(disk);
        let got = extract_general(&mut s, &test_config()).expect("extraction succeeds");
        let c = got.counters;
        assert!(c.calibration_probes > 0, "calibration always runs");
        assert!(
            c.verified_predictions > 0,
            "most tracks confirm via the fast path"
        );
        assert!(
            c.verified_predictions + c.mispredictions > 0
                && c.verified_predictions > c.mispredictions,
            "fast path should dominate: {c:?}"
        );
        let total = got.steps.calibrate
            + got.steps.baseline
            + got.steps.slope
            + got.steps.verify
            + got.steps.search;
        assert!(total > SimDur::ZERO);
        assert!(
            total <= got.elapsed - SimTime::ZERO,
            "step times cannot exceed the run"
        );

        let reg = Registry::new();
        got.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("dixtrac.general.probe_reads"),
            Some(got.probe_reads)
        );
        assert_eq!(
            snap.get("dixtrac.general.verified_predictions"),
            Some(c.verified_predictions)
        );
        assert!(snap.get("dixtrac.general.us.verify").unwrap_or(0) > 0);
    }

    #[test]
    #[should_panic(expected = "at least one context")]
    fn zero_contexts_panics() {
        let disk = Disk::new(models::small_test_disk());
        let mut s = ScsiDisk::new(disk);
        let cfg = GeneralConfig {
            contexts: 0,
            ..GeneralConfig::default()
        };
        let _ = extract_general(&mut s, &cfg);
    }
}
