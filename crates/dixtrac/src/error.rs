//! Extraction failure modes and the host-side retry policy.
//!
//! Real DIXtrac runs against drives that time out, abort commands, and
//! refuse vendor diagnostics. Every fallible step of both extractors
//! reports through [`ExtractError`]; transient command aborts are retried
//! a bounded number of times with a deterministic backoff before being
//! surfaced.

use scsi::{ScsiDisk, ScsiError, ScsiResult};
use sim_disk::SimDur;
use std::fmt;

/// Why an extraction could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractError {
    /// The drive does not implement the vendor diagnostic commands the
    /// SCSI-specific extractor depends on. The general, timing-based
    /// extractor still applies — see `extract_auto`.
    DiagnosticsUnsupported {
        /// The rejected command.
        command: &'static str,
    },
    /// A command kept failing with a transient ABORTED COMMAND even after
    /// every retry.
    RetriesExhausted {
        /// The command that failed.
        command: &'static str,
        /// The LBN it addressed.
        lbn: u64,
        /// How many attempts were made.
        attempts: u32,
    },
    /// A command failed in a way retries cannot help (bad address, medium
    /// error on the probe target, …).
    Scsi(ScsiError),
    /// The drive reported zero capacity.
    ZeroCapacity,
    /// The discovered boundaries do not form a valid table.
    InvalidTable(&'static str),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::DiagnosticsUnsupported { command } => {
                write!(f, "drive does not support diagnostic command {command}")
            }
            ExtractError::RetriesExhausted {
                command,
                lbn,
                attempts,
            } => write!(
                f,
                "{command} at LBN {lbn} still aborted after {attempts} attempts"
            ),
            ExtractError::Scsi(e) => write!(f, "extraction stopped by {e}"),
            ExtractError::ZeroCapacity => write!(f, "drive reports zero capacity"),
            ExtractError::InvalidTable(why) => {
                write!(f, "extracted boundaries are inconsistent: {why}")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

impl From<ScsiError> for ExtractError {
    fn from(e: ScsiError) -> Self {
        match e {
            ScsiError::Unsupported { command, .. } => {
                ExtractError::DiagnosticsUnsupported { command }
            }
            other => ExtractError::Scsi(other),
        }
    }
}

/// Attempts per command before a transient abort is surfaced.
pub(crate) const MAX_ATTEMPTS: u32 = 8;

/// Deterministic backoff before retry `attempt` (0-based): 250 µs doubling
/// to a 4 ms ceiling — long enough to outlast transport glitches, short
/// enough not to distort extraction-cost reporting.
pub(crate) fn backoff(attempt: u32) -> SimDur {
    SimDur::from_micros_f64(250.0) * (1u64 << attempt.min(4))
}

/// Runs `op` until it succeeds or fails non-transiently, waiting out the
/// backoff between transient aborts. `command`/`lbn` label the error when
/// the retry budget runs dry.
pub(crate) fn with_retries<T>(
    disk: &mut ScsiDisk,
    command: &'static str,
    lbn: u64,
    mut op: impl FnMut(&mut ScsiDisk) -> ScsiResult<T>,
) -> Result<T, ExtractError> {
    let mut attempt = 0;
    loop {
        match op(disk) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => {
                attempt += 1;
                if attempt >= MAX_ATTEMPTS {
                    return Err(ExtractError::RetriesExhausted {
                        command,
                        lbn,
                        attempts: attempt,
                    });
                }
                disk.wait(backoff(attempt - 1));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::disk::Disk;
    use sim_disk::fault::{FaultConfig, SenseKey};
    use sim_disk::models;
    use sim_disk::SimTime;

    #[test]
    fn backoff_doubles_then_caps() {
        assert_eq!(backoff(0).as_ns(), 250_000);
        assert_eq!(backoff(1).as_ns(), 500_000);
        assert_eq!(backoff(4).as_ns(), 4_000_000);
        assert_eq!(backoff(10), backoff(4));
    }

    #[test]
    fn retries_recover_transient_aborts() {
        let mut cfg = models::small_test_disk();
        cfg.fault = FaultConfig {
            transient_per_million: 400_000,
            ..FaultConfig::default()
        };
        let mut disk = ScsiDisk::new(Disk::new(cfg));
        // 100 reads, all of which must come back despite ~40 % aborts.
        for i in 0..100u64 {
            let lbn = (i * 613) % 10_000;
            let c = with_retries(&mut disk, "read", lbn, |d| d.read_at(lbn, 8))
                .expect("bounded retries must absorb transient aborts");
            assert!(c.completion > SimTime::ZERO);
        }
    }

    #[test]
    fn non_transient_errors_surface_immediately() {
        let mut disk = ScsiDisk::new(Disk::new(models::small_test_disk()));
        let cap = disk.read_capacity();
        let err = with_retries(&mut disk, "translate_lbn", cap, |d| d.translate_lbn(cap))
            .expect_err("out of range is not retryable");
        assert!(matches!(
            err,
            ExtractError::Scsi(ScsiError::Check {
                sense: SenseKey::IllegalRequest,
                ..
            })
        ));
    }

    #[test]
    fn unsupported_diagnostics_map_to_fallback_signal() {
        let mut cfg = models::small_test_disk();
        cfg.fault.diagnostics_unsupported = true;
        let mut disk = ScsiDisk::new(Disk::new(cfg));
        let err = with_retries(&mut disk, "translate_lbn", 0, |d| d.translate_lbn(0))
            .expect_err("diagnostics are off");
        assert_eq!(
            err,
            ExtractError::DiagnosticsUnsupported {
                command: "translate_lbn"
            }
        );
        assert!(err.to_string().contains("translate_lbn"));
    }
}
