//! Automatic track-boundary extraction (§4.1 of the paper).
//!
//! Two algorithms discover the LBN-to-track mapping through the standard,
//! opaque block interface:
//!
//! * [`scsi_probe`] — the DIXtrac-style five-step algorithm using SCSI
//!   `SEND/RECEIVE DIAGNOSTIC` address translations, `READ DEFECT DATA`, and
//!   `READ CAPACITY`. Fast (≈ 2–3 translations per track thanks to
//!   predict-and-verify) and exact.
//! * [`general`] — the interface-agnostic algorithm that infers boundaries
//!   purely from `READ` timing: it synchronizes probes with the rotation,
//!   interleaves probe streams across 100 widespread locations to defeat the
//!   firmware cache, and binary-searches for the request size at which
//!   response time jumps by a head-switch.
//!
//! Both produce a [`traxtent::TrackBoundaries`] table plus a report of what
//! the extraction cost.

#![warn(missing_docs)]

pub mod error;
pub mod general;
pub mod heal;
pub mod scsi_probe;

pub use error::ExtractError;
pub use general::{extract_general, GeneralConfig, GeneralExtraction};
pub use heal::{HealConfig, HealReport, Healer};
pub use scsi_probe::{extract_scsi, SchemeGuess, ScsiExtraction};

use scsi::ScsiDisk;
use traxtent::boundaries::ConfidentBoundaries;

/// Which extractor produced an [`AutoExtraction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionMethod {
    /// The SCSI-specific five-step extraction succeeded.
    Scsi,
    /// The drive refused diagnostics; the general timing-based extraction
    /// ran instead.
    GeneralFallback,
}

/// The result of [`extract_auto`]: boundaries with per-track confidence,
/// plus which path produced them.
#[derive(Debug, Clone)]
pub struct AutoExtraction {
    /// The extracted boundary table with per-track confidence.
    pub boundaries: ConfidentBoundaries,
    /// Which extractor ran to completion.
    pub method: ExtractionMethod,
    /// The SCSI extraction report, when that path succeeded.
    pub scsi: Option<ScsiExtraction>,
    /// The general extraction report, when the fallback ran.
    pub general: Option<GeneralExtraction>,
}

/// Extracts track boundaries the way a deployment would: try the fast,
/// exact SCSI-specific extractor first, and when the drive refuses the
/// vendor diagnostic commands, degrade gracefully to the general
/// timing-based extractor. Only a diagnostics refusal triggers the
/// fallback; drive misbehavior that defeats retries on either path is
/// reported, never papered over.
pub fn extract_auto(
    disk: &mut ScsiDisk,
    config: &GeneralConfig,
) -> Result<AutoExtraction, ExtractError> {
    match extract_scsi(disk) {
        Ok(scsi) => Ok(AutoExtraction {
            boundaries: ConfidentBoundaries::certain(scsi.boundaries.clone()),
            method: ExtractionMethod::Scsi,
            scsi: Some(scsi),
            general: None,
        }),
        Err(ExtractError::DiagnosticsUnsupported { .. }) => {
            let general = extract_general(disk, config)?;
            let boundaries =
                ConfidentBoundaries::new(general.boundaries.clone(), general.confidence.clone())
                    .map_err(|_| {
                        ExtractError::InvalidTable("confidence table does not match boundaries")
                    })?;
            Ok(AutoExtraction {
                boundaries,
                method: ExtractionMethod::GeneralFallback,
                scsi: None,
                general: Some(general),
            })
        }
        Err(other) => Err(other),
    }
}

/// Runs [`extract_auto`] over every member of a multi-disk fleet,
/// returning one result per member in member order.
///
/// Each member is characterized independently — heterogeneous drives get
/// heterogeneous boundary maps, and one member refusing diagnostics (or
/// defeating the timing fallback) does not stop the others from being
/// extracted. The fleet layer feeds the per-member
/// [`ConfidentBoundaries`] into its volume-wide stripe-unit map; members
/// whose extraction failed outright are the caller's policy decision
/// (typically: exclude the member or fall back to fixed-size stripe
/// units over its raw capacity).
pub fn extract_members(
    members: &mut [ScsiDisk],
    config: &GeneralConfig,
) -> Vec<Result<AutoExtraction, ExtractError>> {
    members
        .iter_mut()
        .map(|disk| extract_auto(disk, config))
        .collect()
}
