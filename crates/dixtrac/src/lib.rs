//! Automatic track-boundary extraction (§4.1 of the paper).
//!
//! Two algorithms discover the LBN-to-track mapping through the standard,
//! opaque block interface:
//!
//! * [`scsi_probe`] — the DIXtrac-style five-step algorithm using SCSI
//!   `SEND/RECEIVE DIAGNOSTIC` address translations, `READ DEFECT DATA`, and
//!   `READ CAPACITY`. Fast (≈ 2–3 translations per track thanks to
//!   predict-and-verify) and exact.
//! * [`general`] — the interface-agnostic algorithm that infers boundaries
//!   purely from `READ` timing: it synchronizes probes with the rotation,
//!   interleaves probe streams across 100 widespread locations to defeat the
//!   firmware cache, and binary-searches for the request size at which
//!   response time jumps by a head-switch.
//!
//! Both produce a [`traxtent::TrackBoundaries`] table plus a report of what
//! the extraction cost.

#![warn(missing_docs)]

pub mod general;
pub mod scsi_probe;

pub use general::{extract_general, GeneralConfig, GeneralExtraction};
pub use scsi_probe::{extract_scsi, SchemeGuess, ScsiExtraction};
