//! Background self-healing: recovered media errors demote (or re-verify)
//! track confidence.
//!
//! The fault layer's recovered media errors are early warnings — a sector
//! that needed a firmware retry today may grow into a remapped defect
//! tomorrow, and a remap silently invalidates the extracted track
//! boundaries the allocator relies on. The [`Healer`] closes that loop:
//!
//! 1. each pass drains the drive's recovered-error LBN buffer
//!    ([`scsi::ScsiDisk::take_recent_error_lbns`]) and attributes the
//!    errors to tracks of the current boundary map;
//! 2. a track that accumulates [`HealConfig::suspect_threshold`] errors
//!    becomes *suspect*;
//! 3. suspect tracks are re-verified through the same vendor diagnostics
//!    dixtrac's extraction uses (translate the track's first and last LBN,
//!    confirm they share a physical track and that the next LBN leaves
//!    it). An intact track is promoted back to full confidence; a track
//!    that fails verification — or a drive that refuses diagnostics — is
//!    demoted to [`HealConfig::demote_floor`], so the allocator degrades
//!    that track to untracked placement instead of trusting stale
//!    boundaries.
//!
//! Every pass exports `heal.*` counters through the observability
//! registry, and the whole loop is deterministic: identical fault seeds
//! and workloads produce identical reports.

use scsi::ScsiDisk;
use std::collections::BTreeMap;
use traxtent::boundaries::ConfidentBoundaries;
use traxtent::obs::Registry;

/// Policy knobs for the self-healing loop.
#[derive(Debug, Clone, Copy)]
pub struct HealConfig {
    /// Recovered media errors a track must accumulate (across passes)
    /// before it is treated as suspect.
    pub suspect_threshold: u64,
    /// Confidence a suspect track is demoted to when re-verification
    /// fails or is unavailable.
    pub demote_floor: f64,
}

impl Default for HealConfig {
    fn default() -> Self {
        HealConfig {
            suspect_threshold: 2,
            demote_floor: 0.25,
        }
    }
}

/// What one [`Healer::pass`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealReport {
    /// Recovered-error LBNs drained from the drive this pass.
    pub drained_errors: u64,
    /// Tracks that crossed the suspect threshold this pass.
    pub suspect_tracks: Vec<usize>,
    /// Suspects whose boundaries re-verified intact (promoted back to
    /// full confidence).
    pub verified_intact: Vec<usize>,
    /// Suspects demoted to the floor (verification failed, or the drive
    /// refuses diagnostics).
    pub demoted: Vec<usize>,
    /// Address translations spent on re-verification.
    pub translations: u64,
}

/// Accumulates per-track error counts across passes and heals the
/// boundary map. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Healer {
    config: HealConfig,
    /// Cumulative recovered-error counts per track index; cleared for a
    /// track once the pass acts on it.
    errors: BTreeMap<usize, u64>,
}

impl Healer {
    /// Creates a healer with the given policy.
    pub fn new(config: HealConfig) -> Self {
        Healer {
            config,
            errors: BTreeMap::new(),
        }
    }

    /// Cumulative unacted-on error count currently attributed to `track`.
    pub fn pending_errors(&self, track: usize) -> u64 {
        self.errors.get(&track).copied().unwrap_or(0)
    }

    /// Runs one healing pass over `disk`, updating `map` in place and
    /// exporting `heal.*` counters to `reg`.
    pub fn pass(
        &mut self,
        disk: &mut ScsiDisk,
        map: &mut ConfidentBoundaries,
        reg: &Registry,
    ) -> HealReport {
        let drained = disk.take_recent_error_lbns();
        let capacity = map.table().capacity();
        for &lbn in &drained {
            if lbn < capacity {
                *self.errors.entry(map.table().track_index(lbn)).or_insert(0) += 1;
            }
        }

        let suspects: Vec<usize> = self
            .errors
            .iter()
            .filter(|(_, n)| **n >= self.config.suspect_threshold)
            .map(|(t, _)| *t)
            .collect();

        let mut verified_intact = Vec::new();
        let mut demoted = Vec::new();
        let mut translations = 0u64;
        for &track in &suspects {
            self.errors.remove(&track);
            let intact = if disk.diagnostics_supported() {
                let before = disk.counts().translations;
                let ok = verify_track(disk, map, track);
                translations += disk.counts().translations - before;
                ok
            } else {
                false
            };
            if intact {
                map.promote(track, 1.0);
                verified_intact.push(track);
            } else {
                map.demote(track, self.config.demote_floor);
                demoted.push(track);
            }
        }

        let report = HealReport {
            drained_errors: drained.len() as u64,
            suspect_tracks: suspects,
            verified_intact,
            demoted,
            translations,
        };
        reg.add("heal.passes", 1);
        reg.add("heal.recovered_errors", report.drained_errors);
        reg.add("heal.suspect_tracks", report.suspect_tracks.len() as u64);
        reg.add("heal.verified_intact", report.verified_intact.len() as u64);
        reg.add("heal.demoted_tracks", report.demoted.len() as u64);
        reg.add("heal.translations", report.translations);
        report
    }
}

/// Re-verifies one track of the map against the drive's address
/// translations: the track's first and last LBN must share a physical
/// (cylinder, head), and the following LBN (if any) must not. A failed
/// translation counts as a failed verification — the track stays suspect.
fn verify_track(disk: &mut ScsiDisk, map: &ConfidentBoundaries, track: usize) -> bool {
    let ext = map.table().track_extent(track);
    let first = match disk.translate_lbn(ext.start) {
        Ok(p) => p,
        Err(_) => return false,
    };
    let last = match disk.translate_lbn(ext.start + ext.len - 1) {
        Ok(p) => p,
        Err(_) => return false,
    };
    if (first.cyl, first.head) != (last.cyl, last.head) {
        return false;
    }
    let next = ext.start + ext.len;
    if next < map.table().capacity() {
        match disk.translate_lbn(next) {
            Ok(p) => (p.cyl, p.head) != (first.cyl, first.head),
            Err(_) => false,
        }
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_scsi;
    use sim_disk::disk::Disk;
    use sim_disk::models;
    use traxtent::obs::Registry;

    fn faulty_disk(diagnostics: bool) -> ScsiDisk {
        let mut cfg = models::small_test_disk();
        cfg.fault.media_per_million = 20_000;
        cfg.fault.seed = 0x5eed;
        cfg.fault.diagnostics_unsupported = !diagnostics;
        ScsiDisk::new(Disk::new(cfg))
    }

    /// Drives the workload until the firmware reports recovered errors.
    fn provoke_errors(disk: &mut ScsiDisk) {
        for i in 0..200u64 {
            let lbn = (i * 977) % (disk.ground_truth().capacity_lbns() - 64);
            disk.read_at(lbn, 64).expect("reads recover media errors");
        }
        assert!(
            disk.ground_truth().fault_stats().media_errors > 0,
            "workload must provoke recovered media errors"
        );
    }

    #[test]
    fn intact_suspect_tracks_are_reverified_and_promoted() {
        let mut disk = faulty_disk(true);
        let map0 = ConfidentBoundaries::certain(
            extract_scsi(&mut disk)
                .expect("extraction succeeds")
                .boundaries,
        );
        let mut map = map0.clone();
        provoke_errors(&mut disk);

        let reg = Registry::new();
        let mut healer = Healer::new(HealConfig {
            suspect_threshold: 1,
            demote_floor: 0.25,
        });
        let report = healer.pass(&mut disk, &mut map, &reg);
        assert!(report.drained_errors > 0);
        assert!(!report.suspect_tracks.is_empty());
        // Boundaries never actually moved, so every suspect re-verifies.
        assert_eq!(report.suspect_tracks, report.verified_intact);
        assert!(report.demoted.is_empty());
        assert!(report.translations > 0);
        assert_eq!(map, map0, "intact tracks keep full confidence");

        let snap = reg.snapshot();
        assert_eq!(snap.get("heal.passes"), Some(1));
        assert_eq!(
            snap.get("heal.recovered_errors"),
            Some(report.drained_errors)
        );
        assert_eq!(
            snap.get("heal.verified_intact"),
            Some(report.verified_intact.len() as u64)
        );

        // The buffer was drained: an immediate second pass is a no-op.
        let again = healer.pass(&mut disk, &mut map, &reg);
        assert_eq!(again.drained_errors, 0);
        assert!(again.suspect_tracks.is_empty());
    }

    #[test]
    fn without_diagnostics_suspects_are_demoted() {
        let mut disk = faulty_disk(false);
        // Diagnostics are refused, so build the map from ground truth the
        // way a prior general extraction would have.
        let healthy = Disk::new(models::small_test_disk());
        let mut probe = ScsiDisk::new(healthy);
        let mut map = ConfidentBoundaries::certain(
            extract_scsi(&mut probe)
                .expect("extraction succeeds")
                .boundaries,
        );
        provoke_errors(&mut disk);

        let reg = Registry::new();
        let mut healer = Healer::new(HealConfig {
            suspect_threshold: 1,
            demote_floor: 0.25,
        });
        let report = healer.pass(&mut disk, &mut map, &reg);
        assert!(!report.suspect_tracks.is_empty());
        assert_eq!(report.suspect_tracks, report.demoted);
        assert!(report.verified_intact.is_empty());
        assert_eq!(report.translations, 0);
        for &t in &report.demoted {
            assert_eq!(map.track_confidence(t), 0.25);
            assert!(
                !map.is_confident(t, 0.9),
                "allocator must distrust the track"
            );
        }
        // Demotion is sticky: promotion requires an actual re-verification.
        assert!(map.mean_confidence() < 1.0);
    }

    #[test]
    fn threshold_accumulates_across_passes() {
        let mut disk = faulty_disk(true);
        let mut map = ConfidentBoundaries::certain(
            extract_scsi(&mut disk)
                .expect("extraction succeeds")
                .boundaries,
        );
        let reg = Registry::new();
        let mut healer = Healer::new(HealConfig {
            suspect_threshold: u64::MAX,
            demote_floor: 0.25,
        });
        provoke_errors(&mut disk);
        let report = healer.pass(&mut disk, &mut map, &reg);
        // An unreachable threshold: errors accumulate, nobody acts.
        assert!(report.drained_errors > 0);
        assert!(report.suspect_tracks.is_empty());
        let pending: u64 = (0..map.table().num_tracks())
            .map(|t| healer.pending_errors(t))
            .sum();
        assert_eq!(pending, report.drained_errors);
    }

    #[test]
    fn healing_is_deterministic() {
        let run = || {
            let mut disk = faulty_disk(true);
            let mut map = ConfidentBoundaries::certain(
                extract_scsi(&mut disk)
                    .expect("extraction succeeds")
                    .boundaries,
            );
            provoke_errors(&mut disk);
            let reg = Registry::new();
            let mut healer = Healer::new(HealConfig::default());
            (healer.pass(&mut disk, &mut map, &reg), map)
        };
        assert_eq!(run(), run());
    }
}
