//! Property-based end-to-end test: for arbitrary slipping-policy
//! geometries (random zones, spare schemes, defect lists), the SCSI
//! extraction recovers the exact track-boundary table — and on a sample of
//! them, the timing-based general extractor agrees.

use dixtrac::{extract_general, extract_scsi, GeneralConfig};
use proptest::prelude::*;
use scsi::ScsiDisk;
use sim_disk::bus::BusConfig;
use sim_disk::cache::CacheConfig;
use sim_disk::defects::{DefectLocation, DefectPolicy, SpareScheme};
use sim_disk::disk::{Disk, DiskConfig};
use sim_disk::geometry::{GeometrySpec, ZoneSpec};
use sim_disk::mech::{SeekCurve, Spindle};
use sim_disk::SimDur;
use traxtent::TrackBoundaries;

fn arb_slip_spec() -> impl Strategy<Value = GeometrySpec> {
    let zones = prop::collection::vec(
        (6u32..12, 60u32..220).prop_map(|(cyls, spt)| ZoneSpec {
            cylinders: cyls,
            spt,
            track_skew: spt / 8 + 2,
            cyl_skew: spt / 6 + 2,
        }),
        1..3,
    );
    let scheme = prop_oneof![
        Just(SpareScheme::None),
        Just(SpareScheme::SectorsPerTrack(3)),
        Just(SpareScheme::SectorsPerCylinder(8)),
        Just(SpareScheme::TracksPerZone(2)),
        Just(SpareScheme::TracksAtEnd(2)),
    ];
    (
        2u32..5,
        zones,
        scheme,
        prop::collection::vec((0u32..10_000u32, 0u32..5, 0u32..60), 0..5),
    )
        .prop_map(|(surfaces, zones, spare, raw)| {
            let total_cyls: u32 = zones.iter().map(|z| z.cylinders).sum();
            let defects = if spare == SpareScheme::None {
                Vec::new()
            } else {
                raw.into_iter()
                    .map(|(c, h, s)| DefectLocation::new(c % total_cyls, h % surfaces, s))
                    .collect()
            };
            GeometrySpec {
                surfaces,
                zones,
                spare,
                policy: DefectPolicy::Slip,
                defects,
            }
        })
}

fn disk_for(spec: GeometrySpec) -> Option<Disk> {
    let geometry = spec.build().ok()?;
    let cylinders = geometry.cylinders();
    // A self-consistent linear seek curve for whatever (small) cylinder
    // count the random geometry produced: seek(d) = 0.8 + k·(d − 1) ms.
    let k = 0.002;
    let cmax = f64::from(cylinders - 1);
    let seek = SeekCurve::calibrate(0.8, 0.8 - k + k * cmax / 3.0, 0.8 - k + k * cmax, cylinders);
    Some(Disk::new(DiskConfig {
        name: "prop".into(),
        geometry,
        spindle: Spindle::new(10_000),
        seek,
        head_switch: SimDur::from_millis_f64(0.8),
        write_settle: SimDur::from_millis_f64(1.0),
        cmd_overhead: SimDur::from_micros_f64(100.0),
        zero_latency: true,
        bus: BusConfig::in_order(160.0),
        cache: CacheConfig::default(),
        tracer: None,
        fault: Default::default(),
    }))
}

fn ground_truth(disk: &Disk) -> TrackBoundaries {
    TrackBoundaries::new(
        disk.geometry()
            .iter_tracks()
            .filter(|(_, t)| t.lbn_count() > 0)
            .map(|(_, t)| t.first_lbn())
            .collect(),
        disk.geometry().capacity_lbns(),
    )
    .expect("valid table")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The SCSI extractor is exact on every slipping geometry.
    #[test]
    fn scsi_extraction_is_exact(spec in arb_slip_spec()) {
        if let Some(disk) = disk_for(spec) {
            let truth = ground_truth(&disk);
            let mut s = ScsiDisk::new(disk);
            let r = extract_scsi(&mut s).expect("fault-free extraction succeeds");
            prop_assert_eq!(r.boundaries, truth);
        }
    }
}

proptest! {
    // The general extractor exercises thousands of simulated I/Os per case;
    // a handful of random geometries is plenty on top of the unit matrix.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The timing-only extractor agrees with the geometry too.
    #[test]
    fn general_extraction_is_exact(spec in arb_slip_spec()) {
        if let Some(disk) = disk_for(spec) {
            let truth = ground_truth(&disk);
            let mut s = ScsiDisk::new(disk);
            let cfg = GeneralConfig { contexts: 16, ..GeneralConfig::default() };
            let g = extract_general(&mut s, &cfg).expect("fault-free extraction succeeds");
            prop_assert_eq!(g.boundaries, truth);
        }
    }

    /// Majority voting keeps the timing-only extractor exact under
    /// rotational jitter smaller than half a sector time — the noise regime
    /// where a single probe can land a measurement on the wrong side of the
    /// decision threshold but the vote cannot.
    #[test]
    fn majority_vote_converges_under_sub_sector_jitter(
        spec in arb_slip_spec(),
        seed in 1u64..u64::MAX,
    ) {
        let max_spt = spec.zones.iter().map(|z| z.spt).max().unwrap_or(1);
        if let Some(disk) = disk_for(spec) {
            let truth = ground_truth(&disk);
            // Rotational jitter is drawn as a fraction of one revolution;
            // cap the draw at 0.4 sector times, safely below half a sector.
            let mut cfg = disk.config().clone();
            cfg.fault.rot_jitter = sim_disk::fault::Jitter::Uniform(0.4 / f64::from(max_spt));
            cfg.fault.seed = seed;
            let mut s = ScsiDisk::new(Disk::new(cfg));
            let gcfg = GeneralConfig { contexts: 16, votes: 5, ..GeneralConfig::default() };
            let g = extract_general(&mut s, &gcfg).expect("jittered extraction succeeds");
            prop_assert_eq!(&g.boundaries, &truth);
            // Every boundary was carried by a majority, so no track's
            // confidence can sit at or below one half.
            for (i, c) in g.confidence.iter().enumerate() {
                prop_assert!(*c > 0.5, "track {} confidence {} not a majority", i, c);
            }
        }
    }
}
