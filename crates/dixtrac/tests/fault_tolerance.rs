//! End-to-end fault tolerance of the extraction stack: the automatic
//! extractor prefers the exact SCSI path, degrades to timing probes when
//! the drive refuses diagnostics, and rides out transient command aborts
//! on both paths — never panicking, always reporting typed errors.

use dixtrac::{extract_auto, extract_scsi, ExtractError, ExtractionMethod, GeneralConfig};
use scsi::ScsiDisk;
use sim_disk::disk::Disk;
use sim_disk::fault::FaultConfig;
use sim_disk::models;
use traxtent::TrackBoundaries;

fn ground_truth(disk: &Disk) -> TrackBoundaries {
    TrackBoundaries::new(
        disk.geometry()
            .iter_tracks()
            .filter(|(_, t)| t.lbn_count() > 0)
            .map(|(_, t)| t.first_lbn())
            .collect(),
        disk.geometry().capacity_lbns(),
    )
    .expect("valid table")
}

#[test]
fn auto_extraction_prefers_the_scsi_path() {
    let mut disk = ScsiDisk::new(Disk::new(models::small_test_disk()));
    let truth = ground_truth(disk.ground_truth());
    let auto = extract_auto(&mut disk, &GeneralConfig::default()).expect("healthy drive");
    assert_eq!(auto.method, ExtractionMethod::Scsi);
    assert_eq!(auto.boundaries.table(), &truth);
    assert_eq!(auto.boundaries.mean_confidence(), 1.0);
    assert!(auto.scsi.is_some());
    assert!(auto.general.is_none());
}

#[test]
fn auto_extraction_falls_back_when_diagnostics_unsupported() {
    let mut cfg = models::small_test_disk();
    cfg.fault.diagnostics_unsupported = true;
    let truth;
    {
        let probe = Disk::new(cfg.clone());
        truth = ground_truth(&probe);
    }
    let mut disk = ScsiDisk::new(Disk::new(cfg));
    let auto = extract_auto(&mut disk, &GeneralConfig::default())
        .expect("fallback must absorb the diagnostics refusal");
    assert_eq!(auto.method, ExtractionMethod::GeneralFallback);
    assert_eq!(auto.boundaries.table(), &truth);
    assert!(auto.scsi.is_none());
    assert!(auto.general.is_some());
    // A noise-free fallback run is fully confident in every track.
    assert_eq!(auto.boundaries.mean_confidence(), 1.0);
}

#[test]
fn scsi_extraction_reports_rather_than_panics_without_diagnostics() {
    let mut cfg = models::small_test_disk();
    cfg.fault.diagnostics_unsupported = true;
    let mut disk = ScsiDisk::new(Disk::new(cfg));
    let err = extract_scsi(&mut disk).expect_err("diagnostics are off");
    assert!(matches!(err, ExtractError::DiagnosticsUnsupported { .. }));
}

#[test]
fn scsi_extraction_rides_out_transient_aborts() {
    let mut cfg = models::small_test_disk();
    cfg.fault = FaultConfig {
        transient_per_million: 100_000, // 10 % of commands abort
        seed: 0x7e57,
        ..FaultConfig::default()
    };
    let truth;
    {
        let probe = Disk::new(cfg.clone());
        truth = ground_truth(&probe);
    }
    let mut disk = ScsiDisk::new(Disk::new(cfg));
    let r = extract_scsi(&mut disk).expect("bounded retries absorb 10 % aborts");
    assert_eq!(r.boundaries, truth);
}

#[test]
fn auto_extraction_with_faults_and_fallback_still_finds_the_geometry() {
    let mut cfg = models::small_test_disk();
    cfg.fault = FaultConfig {
        diagnostics_unsupported: true,
        transient_per_million: 20_000, // 2 % of commands abort
        seed: 0xd15c,
        ..FaultConfig::default()
    };
    let truth;
    {
        let probe = Disk::new(cfg.clone());
        truth = ground_truth(&probe);
    }
    let mut disk = ScsiDisk::new(Disk::new(cfg));
    let gcfg = GeneralConfig {
        votes: 3,
        ..GeneralConfig::default()
    };
    let auto = extract_auto(&mut disk, &gcfg).expect("fallback plus retries");
    assert_eq!(auto.method, ExtractionMethod::GeneralFallback);
    assert_eq!(auto.boundaries.table(), &truth);
    assert!(auto.boundaries.mean_confidence() > 0.5);
}
