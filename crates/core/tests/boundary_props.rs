//! Property-based tests for the traxtent core: boundary tables, extent
//! splitting, the planner's track-locality guarantee, and allocator
//! conservation.

use proptest::prelude::*;
use traxtent::{Extent, RequestPlanner, TrackBoundaries, TraxtentAllocator};

fn arb_table() -> impl Strategy<Value = TrackBoundaries> {
    prop::collection::vec(1u64..600, 2..120).prop_map(|lens| {
        TrackBoundaries::from_track_lengths(lens).expect("positive lengths are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// track_bounds is consistent with track_index and covers every LBN.
    #[test]
    fn bounds_cover_and_agree(tb in arb_table(), pick in 0u64..u64::MAX) {
        let lbn = pick % tb.capacity();
        let (s, e) = tb.track_bounds(lbn);
        prop_assert!(s <= lbn && lbn < e);
        let idx = tb.track_index(lbn);
        prop_assert_eq!(tb.track_extent(idx), Extent::new(s, e - s));
        prop_assert!(tb.is_track_start(s));
    }

    /// Splitting an extent yields contiguous, track-local pieces covering
    /// exactly the input.
    #[test]
    fn split_partitions_exactly(tb in arb_table(), a in 0u64..u64::MAX, b in 1u64..u64::MAX) {
        let start = a % tb.capacity();
        let len = 1 + b % (tb.capacity() - start);
        let ext = Extent::new(start, len);
        let pieces: Vec<Extent> = tb.split_extent(ext).collect();
        prop_assert!(!pieces.is_empty());
        let mut at = start;
        for p in &pieces {
            prop_assert_eq!(p.start, at, "pieces must be contiguous");
            let (s, e) = tb.track_bounds(p.start);
            prop_assert!(p.start >= s && p.end() <= e, "{} crosses a track", p);
            at = p.end();
        }
        prop_assert_eq!(at, ext.end());
    }

    /// The planner never lets a prefetch or write-back cross a boundary,
    /// and a prefetch from a track start covers the whole track (capped).
    #[test]
    fn planner_is_track_local(tb in arb_table(), a in 0u64..u64::MAX, want in 1u64..2000, cap in 1u64..2000) {
        let start = a % tb.capacity();
        let planner = RequestPlanner::new(tb.clone());
        let len = planner.plan_prefetch(start, want, cap);
        prop_assert!(len >= 1 && len <= cap.max(1));
        prop_assert!(planner.is_track_local(start, len));
        let wb = planner.plan_writeback(start, want);
        prop_assert!(planner.is_track_local(start, wb));
        let (s, e) = tb.track_bounds(start);
        if start == s {
            prop_assert_eq!(len, (e - s).max(want.min(e - s)).min(cap.max(1)).min(e - s));
        }
    }

    /// Allocation conserves sectors, never double-allocates, and
    /// within-track allocations never span boundaries.
    #[test]
    fn allocator_conserves(tb in arb_table(), seeds in prop::collection::vec((0u64..u64::MAX, 1u64..100), 1..40)) {
        let total = tb.capacity();
        let mut alloc = TraxtentAllocator::new(tb.clone());
        let mut held: Vec<Extent> = Vec::new();
        for (near_raw, len) in seeds {
            let near = near_raw % total;
            if let Some(e) = alloc.alloc_within_track(len, near) {
                let (s, end) = tb.track_bounds(e.start);
                prop_assert!(e.start >= s && e.end() <= end, "{} crosses a track", e);
                for h in &held {
                    prop_assert!(!h.overlaps(&e), "{} overlaps {}", h, e);
                }
                held.push(e);
            }
        }
        let held_total: u64 = held.iter().map(|e| e.len).sum();
        prop_assert_eq!(alloc.free_sectors() + held_total, total);
        for e in held {
            alloc.free(e);
        }
        prop_assert_eq!(alloc.free_sectors(), total);
        prop_assert_eq!(alloc.free_runs(), 1, "all space coalesces back");
    }

    /// Whole-track allocations are exactly tracks and exhaust to None.
    #[test]
    fn traxtent_allocs_are_tracks(tb in arb_table(), near_raw in 0u64..u64::MAX) {
        let mut alloc = TraxtentAllocator::new(tb.clone());
        let near = near_raw % tb.capacity();
        let mut count = 0;
        while let Some(e) = alloc.alloc_traxtent(near) {
            let (s, end) = tb.track_bounds(e.start);
            prop_assert_eq!(e, Extent::new(s, end - s));
            count += 1;
        }
        prop_assert_eq!(count, tb.num_tracks());
        prop_assert_eq!(alloc.free_sectors(), 0);
    }
}
