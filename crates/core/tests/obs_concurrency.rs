//! Concurrency properties of the `traxtent::obs` registry.
//!
//! The registry's contract is that counter adds and `set_max` high-water
//! updates commute: any interleaving of concurrent updates produces the
//! same final snapshot. These tests hammer one registry from many threads
//! with seed-shuffled schedules and assert the commutative outcomes, plus
//! that snapshot ordering is stable (sorted by name, independent of
//! registration order).

use traxtent::obs::span::{Span, SpanRecorder};
use traxtent::obs::Registry;

/// SplitMix64, used to derive per-thread shuffled update schedules.
fn splitmix(mut x: u64) -> impl FnMut() -> u64 {
    move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn concurrent_counter_increments_never_lose_updates() {
    for round in 0..8u64 {
        let reg = Registry::new();
        let threads = 8;
        let per_thread = 2500u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let c = reg.counter("hits");
                let mut rng = splitmix(round * 31 + t);
                s.spawn(move || {
                    let mut budget = per_thread;
                    while budget > 0 {
                        // Mix inc() and add(n) in a seed-dependent order.
                        let n = (rng() % 7 + 1).min(budget);
                        if n == 1 {
                            c.inc();
                        } else {
                            c.add(n);
                        }
                        budget -= n;
                    }
                });
            }
        });
        assert_eq!(
            reg.snapshot().get("hits"),
            Some(threads * per_thread),
            "round {round}: lost counter updates"
        );
    }
}

#[test]
fn concurrent_set_max_never_loses_the_maximum() {
    for round in 0..8u64 {
        let reg = Registry::new();
        let threads = 8u64;
        let per_thread = 2000u64;
        // Every thread publishes a shuffled sequence of candidate highs;
        // the true maximum over all sequences must survive any schedule.
        let mut expected_max = 0u64;
        let sequences: Vec<Vec<u64>> = (0..threads)
            .map(|t| {
                let mut rng = splitmix(round * 101 + t);
                (0..per_thread)
                    .map(|_| {
                        let v = rng() % 1_000_000;
                        expected_max = expected_max.max(v);
                        v
                    })
                    .collect()
            })
            .collect();
        std::thread::scope(|s| {
            for seq in &sequences {
                let reg = reg.clone();
                s.spawn(move || {
                    for v in seq {
                        reg.set_max("high_water", *v);
                    }
                });
            }
        });
        assert_eq!(
            reg.snapshot().get("high_water"),
            Some(expected_max),
            "round {round}: high-water mark regressed"
        );
    }
}

#[test]
fn mixed_counters_and_maxima_from_many_threads() {
    let reg = Registry::new();
    let threads = 6u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let reg = reg.clone();
            s.spawn(move || {
                let c = reg.counter("mixed.count");
                for i in 0..1000u64 {
                    c.inc();
                    reg.set_max("mixed.max", t * 10_000 + i);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.get("mixed.count"), Some(threads * 1000));
    assert_eq!(snap.get("mixed.max"), Some((threads - 1) * 10_000 + 999));
}

#[test]
fn snapshot_ordering_is_stable_regardless_of_registration_order() {
    // Register the same names in two opposite orders (one of them from
    // concurrent threads); snapshots must list identical sorted names.
    let names = ["z.last", "a.first", "m.middle", "b.second", "y.late"];
    let forward = Registry::new();
    for n in &names {
        forward.add(n, 1);
    }
    let scrambled = Registry::new();
    std::thread::scope(|s| {
        for n in names.iter().rev() {
            let reg = scrambled.clone();
            s.spawn(move || reg.add(n, 1));
        }
    });
    let order = |reg: &Registry| -> Vec<String> {
        reg.snapshot()
            .entries()
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    };
    let a = order(&forward);
    assert_eq!(a, order(&scrambled));
    let mut sorted = a.clone();
    sorted.sort();
    assert_eq!(a, sorted, "snapshot must be sorted by name");
    // Repeated snapshots are identical point-in-time copies.
    assert_eq!(forward.snapshot(), forward.snapshot());
}

#[test]
fn span_recorder_collects_concurrent_batches_without_loss() {
    // The recorder itself is only ever hot under --threads 1, but its
    // buffer must still be safe when cells share it: every recorded span
    // survives, and take_sorted() yields one deterministic order.
    let rec = SpanRecorder::new();
    let threads = 4u64;
    let per_thread = 500u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = rec.clone();
            s.spawn(move || {
                let mut batch = Vec::new();
                for i in 0..per_thread {
                    let id = t * per_thread + i + 1;
                    batch.push(Span::new(id, 0, "cell", 0, id * 10, id * 10 + 5));
                }
                rec.record_all(&mut batch);
            });
        }
    });
    let spans = rec.take_sorted();
    assert_eq!(spans.len(), (threads * per_thread) as usize);
    let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "(start, id) order is deterministic");
}
