//! A boundary-aware free-space manager.
//!
//! [`TraxtentAllocator`] tracks free LBN runs and serves three placement
//! policies, in the order a traxtent-aware file system wants them (§3.2):
//!
//! 1. [`alloc_traxtent`](TraxtentAllocator::alloc_traxtent) — a whole track,
//!    closest to a hint (for large files and LFS segments);
//! 2. [`alloc_within_track`](TraxtentAllocator::alloc_within_track) — a run
//!    that does not cross a track boundary (for mid-size files);
//! 3. [`alloc_near`](TraxtentAllocator::alloc_near) — the closest free run
//!    regardless of boundaries (the track-unaware fallback).

use crate::boundaries::{ConfidentBoundaries, TrackBoundaries};
use crate::extent::Extent;
use std::collections::BTreeMap;

/// Free-space manager over the LBN space described by a boundary table.
#[derive(Debug, Clone)]
pub struct TraxtentAllocator {
    boundaries: TrackBoundaries,
    /// Free runs: start → length. Invariant: non-overlapping, non-adjacent
    /// (adjacent runs are coalesced), all within `[0, capacity)`.
    free: BTreeMap<u64, u64>,
    free_sectors: u64,
    /// Per-track trust mask from a noisy extraction; `None` means every
    /// track's boundaries are trusted. Untrusted tracks are never handed
    /// out by the track-aligned policies — only by the untracked
    /// [`alloc_near`](Self::alloc_near) fallback.
    trusted: Option<Vec<bool>>,
}

impl TraxtentAllocator {
    /// Creates an allocator with the entire LBN space free.
    pub fn new(boundaries: TrackBoundaries) -> Self {
        let cap = boundaries.capacity();
        let mut free = BTreeMap::new();
        free.insert(0, cap);
        TraxtentAllocator {
            boundaries,
            free,
            free_sectors: cap,
            trusted: None,
        }
    }

    /// Creates an allocator with everything allocated (free space is added
    /// with [`free`](Self::free)).
    pub fn new_full(boundaries: TrackBoundaries) -> Self {
        TraxtentAllocator {
            boundaries,
            free: BTreeMap::new(),
            free_sectors: 0,
            trusted: None,
        }
    }

    /// Creates an allocator from a noisy extraction: tracks whose
    /// confidence falls below `threshold` are excluded from the
    /// track-aligned policies ([`alloc_traxtent`](Self::alloc_traxtent) and
    /// [`alloc_within_track`](Self::alloc_within_track)) — their boundaries
    /// may be wrong, so alignment to them buys nothing. The space is still
    /// served, untracked, by [`alloc_near`](Self::alloc_near).
    pub fn with_confidence(boundaries: &ConfidentBoundaries, threshold: f64) -> Self {
        let trusted = (0..boundaries.table().num_tracks())
            .map(|i| boundaries.is_confident(i, threshold))
            .collect();
        let mut a = TraxtentAllocator::new(boundaries.table().clone());
        a.trusted = Some(trusted);
        a
    }

    /// Whether track `idx`'s boundaries are trusted for aligned placement
    /// (always true for an allocator built without confidence data).
    pub fn is_track_trusted(&self, idx: usize) -> bool {
        self.trusted.as_ref().is_none_or(|t| t[idx])
    }

    /// Number of tracks excluded from aligned placement by low confidence.
    pub fn untrusted_tracks(&self) -> usize {
        self.trusted
            .as_ref()
            .map_or(0, |t| t.iter().filter(|&&x| !x).count())
    }

    /// The boundary table in use.
    pub fn boundaries(&self) -> &TrackBoundaries {
        &self.boundaries
    }

    /// Total free sectors.
    pub fn free_sectors(&self) -> u64 {
        self.free_sectors
    }

    /// Number of discontiguous free runs (a fragmentation signal).
    pub fn free_runs(&self) -> usize {
        self.free.len()
    }

    /// Whether the whole extent is currently free.
    pub fn is_free(&self, ext: Extent) -> bool {
        match self.free.range(..=ext.start).next_back() {
            Some((&s, &l)) => s + l >= ext.end(),
            None => false,
        }
    }

    /// Allocates the whole track closest to `near` whose sectors are all
    /// free. Returns the track extent, or `None` if no fully free track
    /// remains.
    pub fn alloc_traxtent(&mut self, near: u64) -> Option<Extent> {
        let n = self.boundaries.num_tracks();
        let origin = self
            .boundaries
            .track_index(near.min(self.boundaries.capacity() - 1));
        for idx in ring(origin, n) {
            if !self.is_track_trusted(idx) {
                continue;
            }
            let t = self.boundaries.track_extent(idx);
            if self.is_free(t) {
                self.take(t);
                return Some(t);
            }
        }
        None
    }

    /// Allocates `len` sectors that do not cross a track boundary, as close
    /// to `near` as possible. Returns `None` if no single track has a free
    /// run of `len` sectors.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn alloc_within_track(&mut self, len: u64, near: u64) -> Option<Extent> {
        assert!(len > 0);
        let n = self.boundaries.num_tracks();
        let origin = self
            .boundaries
            .track_index(near.min(self.boundaries.capacity() - 1));
        for idx in ring(origin, n) {
            if !self.is_track_trusted(idx) {
                continue;
            }
            let t = self.boundaries.track_extent(idx);
            if let Some(e) = self.first_fit_within(t, len) {
                self.take(e);
                return Some(e);
            }
        }
        None
    }

    /// Allocates `len` contiguous sectors from the free run closest to
    /// `near`, ignoring track boundaries (the track-unaware policy used by
    /// the baseline systems). Returns `None` when no run is long enough.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn alloc_near(&mut self, len: u64, near: u64) -> Option<Extent> {
        assert!(len > 0);
        let mut best: Option<(u64, Extent)> = None; // (distance, candidate)
                                                    // Closest suitable run after `near` (or containing it).
        for (&s, &l) in self
            .free
            .range(..=near)
            .next_back()
            .into_iter()
            .chain(self.free.range(near..))
        {
            if l < len {
                continue;
            }
            // Allocate at max(near, s) if the tail from there still fits,
            // else at the run start.
            let at = if near > s && near + len <= s + l {
                near
            } else {
                s
            };
            let dist = at.abs_diff(near);
            if best.map(|(d, _)| dist < d).unwrap_or(true) {
                best = Some((dist, Extent::new(at, len)));
            }
            if s >= near {
                break; // runs only get farther from here on
            }
        }
        // Also scan backwards for a closer earlier run.
        let limit = best.map(|(d, _)| d).unwrap_or(u64::MAX);
        for (&s, &l) in self.free.range(..near).rev() {
            if near - s > limit.saturating_add(l) {
                break;
            }
            if l >= len {
                let at = if near > s && near + len <= s + l {
                    near
                } else {
                    s
                };
                let dist = at.abs_diff(near);
                if best.map(|(d, _)| dist < d).unwrap_or(true) {
                    best = Some((dist, Extent::new(at, len)));
                }
                break;
            }
        }
        let (_, e) = best?;
        self.take(e);
        Some(e)
    }

    /// Frees an extent.
    ///
    /// # Panics
    ///
    /// Panics if any part of the extent is already free or out of range.
    pub fn free(&mut self, ext: Extent) {
        assert!(
            ext.end() <= self.boundaries.capacity(),
            "free {ext} out of range"
        );
        // Check no overlap with existing free space.
        if let Some((&s, &l)) = self.free.range(..ext.end()).next_back() {
            assert!(
                s + l <= ext.start,
                "double free of {ext} (overlaps run [{s}, {})",
                s + l
            );
        }
        self.free_sectors += ext.len;
        // Coalesce with predecessor and successor.
        let mut start = ext.start;
        let mut end = ext.end();
        if let Some((&s, &l)) = self.free.range(..start).next_back() {
            if s + l == start {
                start = s;
                self.free.remove(&s);
            }
        }
        if let Some((&s, &l)) = self.free.range(end..).next() {
            if s == end {
                end += l;
                self.free.remove(&s);
            }
        }
        self.free.insert(start, end - start);
    }

    /// First free sub-run of `len` sectors inside track extent `t`.
    fn first_fit_within(&self, t: Extent, len: u64) -> Option<Extent> {
        // Runs that could overlap t: the one starting before t, plus those
        // starting within it.
        let before = self
            .free
            .range(..t.start)
            .next_back()
            .map(|(&s, &l)| Extent::new(s, l))
            .filter(|r| r.end() > t.start);
        let within = self
            .free
            .range(t.start..t.end())
            .map(|(&s, &l)| Extent::new(s, l));
        for run in before.into_iter().chain(within) {
            if let Some(overlap) = run.intersect(&t) {
                if overlap.len >= len {
                    return Some(Extent::new(overlap.start, len));
                }
            }
        }
        None
    }

    /// Removes `e` from the free map; `e` must be entirely free.
    fn take(&mut self, e: Extent) {
        let (&s, &l) = self
            .free
            .range(..=e.start)
            .next_back()
            .expect("allocating free space");
        debug_assert!(s + l >= e.end(), "take of non-free extent");
        self.free.remove(&s);
        if s < e.start {
            self.free.insert(s, e.start - s);
        }
        if e.end() < s + l {
            self.free.insert(e.end(), s + l - e.end());
        }
        self.free_sectors -= e.len;
    }
}

/// Yields `origin, origin+1, origin-1, origin+2, …` over `0..n`, visiting
/// every index exactly once in order of distance from the origin.
fn ring(origin: usize, n: usize) -> impl Iterator<Item = usize> {
    std::iter::once(origin).chain((1..n).flat_map(move |step| {
        let up = origin.checked_add(step).filter(|&i| i < n);
        let down = origin.checked_sub(step);
        up.into_iter().chain(down)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boundaries() -> TrackBoundaries {
        TrackBoundaries::uniform(10, 100)
    }

    #[test]
    fn ring_visits_everything_once_starting_near_origin() {
        let seen: Vec<usize> = ring(3, 6).collect();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], 3, "origin first");
    }

    #[test]
    fn alloc_traxtent_prefers_nearby_track() {
        let mut a = TraxtentAllocator::new(boundaries());
        let e = a.alloc_traxtent(350).unwrap();
        assert_eq!(e, Extent::new(300, 100));
        // That track is now gone; next closest wins.
        let e2 = a.alloc_traxtent(350).unwrap();
        assert!(e2 == Extent::new(400, 100) || e2 == Extent::new(200, 100));
    }

    #[test]
    fn alloc_traxtent_exhausts() {
        let tb = TrackBoundaries::uniform(2, 10);
        let mut a = TraxtentAllocator::new(tb);
        assert!(a.alloc_traxtent(0).is_some());
        assert!(a.alloc_traxtent(0).is_some());
        assert!(a.alloc_traxtent(0).is_none());
        assert_eq!(a.free_sectors(), 0);
    }

    #[test]
    fn alloc_within_track_never_crosses_boundary() {
        let mut a = TraxtentAllocator::new(boundaries());
        for _ in 0..20 {
            if let Some(e) = a.alloc_within_track(33, 450) {
                let (s, end) = a.boundaries().track_bounds(e.start);
                assert!(e.start >= s && e.end() <= end, "{e} crosses a boundary");
            }
        }
    }

    #[test]
    fn alloc_within_track_fails_for_oversized() {
        let mut a = TraxtentAllocator::new(boundaries());
        assert!(a.alloc_within_track(101, 0).is_none());
        assert!(a.alloc_within_track(100, 0).is_some());
    }

    #[test]
    fn alloc_near_can_cross_boundaries() {
        let mut a = TraxtentAllocator::new(boundaries());
        let e = a.alloc_near(150, 80).unwrap();
        assert_eq!(e, Extent::new(80, 150));
        assert!(!a.is_free(Extent::new(80, 1)));
        assert!(a.is_free(Extent::new(0, 80)));
        assert!(a.is_free(Extent::new(230, 1)));
    }

    #[test]
    fn alloc_near_finds_earlier_run_when_later_absent() {
        let tb = TrackBoundaries::uniform(4, 100);
        let mut a = TraxtentAllocator::new_full(tb);
        a.free(Extent::new(0, 50));
        let e = a.alloc_near(30, 399).unwrap();
        assert_eq!(e.start, 0);
        assert_eq!(e.len, 30);
    }

    #[test]
    fn low_confidence_tracks_are_skipped_by_aligned_policies() {
        // Tracks 3 and 4 came out of a noisy extraction below threshold.
        let conf = vec![1.0, 1.0, 1.0, 0.4, 0.6, 1.0, 1.0, 1.0, 1.0, 1.0];
        let cb = ConfidentBoundaries::new(boundaries(), conf).unwrap();
        let mut a = TraxtentAllocator::with_confidence(&cb, 0.9);
        assert_eq!(a.untrusted_tracks(), 2);
        assert!(!a.is_track_trusted(3));
        assert!(a.is_track_trusted(5));

        // A whole-track request near track 3 lands on a trusted neighbour.
        let e = a.alloc_traxtent(350).unwrap();
        let idx = a.boundaries().track_index(e.start);
        assert!(idx != 3 && idx != 4, "allocated untrusted track {idx}");

        // Within-track placement near track 4 avoids the untrusted region
        // too, even though those sectors are free.
        let e = a.alloc_within_track(50, 430).unwrap();
        let idx = a.boundaries().track_index(e.start);
        assert!(idx != 3 && idx != 4, "allocated untrusted track {idx}");

        // The untracked fallback still serves the region.
        let e = a.alloc_near(50, 330).unwrap();
        assert_eq!(e.start, 330);
    }

    #[test]
    fn fully_untrusted_table_degrades_to_untracked_only() {
        let cb = ConfidentBoundaries::new(boundaries(), vec![0.0; 10]).unwrap();
        let mut a = TraxtentAllocator::with_confidence(&cb, 0.5);
        assert!(a.alloc_traxtent(0).is_none());
        assert!(a.alloc_within_track(10, 0).is_none());
        // Untracked allocation is unaffected.
        assert!(a.alloc_near(150, 0).is_some());
    }

    #[test]
    fn certain_confidence_changes_nothing() {
        let cb = ConfidentBoundaries::certain(boundaries());
        let mut gated = TraxtentAllocator::with_confidence(&cb, 0.9);
        let mut plain = TraxtentAllocator::new(boundaries());
        assert_eq!(gated.untrusted_tracks(), 0);
        assert_eq!(gated.alloc_traxtent(350), plain.alloc_traxtent(350));
        assert_eq!(
            gated.alloc_within_track(33, 120),
            plain.alloc_within_track(33, 120)
        );
    }

    #[test]
    fn free_coalesces() {
        let mut a = TraxtentAllocator::new(boundaries());
        let e1 = a.alloc_near(100, 0).unwrap();
        let e2 = a.alloc_near(100, 100).unwrap();
        assert_eq!(a.free_runs(), 1);
        a.free(e1);
        a.free(e2);
        assert_eq!(a.free_runs(), 1, "freed runs should coalesce");
        assert_eq!(a.free_sectors(), 1000);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = TraxtentAllocator::new(boundaries());
        a.free(Extent::new(0, 10));
    }

    #[test]
    fn accounting_is_conserved() {
        let mut a = TraxtentAllocator::new(boundaries());
        let total = a.free_sectors();
        let mut held = Vec::new();
        for i in 0..8 {
            if let Some(e) = a.alloc_within_track(37, i * 117) {
                held.push(e);
            }
        }
        let held_total: u64 = held.iter().map(|e| e.len).sum();
        assert_eq!(a.free_sectors() + held_total, total);
        for e in held {
            a.free(e);
        }
        assert_eq!(a.free_sectors(), total);
        assert_eq!(a.free_runs(), 1);
    }
}
