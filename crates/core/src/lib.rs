//! Track-aligned extents (*traxtents*): the primary contribution of
//! Schindler et al., "Track-aligned Extents: Matching Access Patterns to
//! Disk Drive Characteristics" (FAST 2002), as a reusable library.
//!
//! A *traxtent* is a variable-sized extent whose boundaries coincide with
//! physical disk track boundaries. Allocating and accessing data in
//! traxtents avoids most rotational latency (on zero-latency drives) and all
//! mid-request head switches, raising disk efficiency by up to ~50 % for
//! mid-sized requests.
//!
//! The crate is deliberately independent of any particular disk or
//! simulator: it consumes a [`TrackBoundaries`] table — produced by the
//! `dixtrac` extraction crate, by a vendor utility, or by hand — and offers:
//!
//! * [`TrackBoundaries`] — the boundary table with O(log n) queries;
//! * [`Extent`] and boundary-aware splitting;
//! * [`alloc::TraxtentAllocator`] — a free-space manager that prefers
//!   whole-traxtent and within-traxtent placements;
//! * [`planner::RequestPlanner`] — clips or extends prefetch and write-back
//!   requests at track boundaries;
//! * [`model`] — closed-form performance models behind Figures 1 and 3 of
//!   the paper;
//! * [`stats`] — small statistics helpers used throughout the evaluation;
//! * [`obs`] — a lightweight counter/gauge registry the upper layers use to
//!   expose what a run did (lock-free updates, deterministic snapshots).
//!
//! # Example
//!
//! ```
//! use traxtent::{Extent, TrackBoundaries};
//!
//! // Three 100-sector tracks.
//! let tb = TrackBoundaries::from_track_lengths([100, 100, 100]).unwrap();
//! let ext = Extent::new(50, 200);
//! let pieces: Vec<Extent> = tb.split_extent(ext).collect();
//! assert_eq!(pieces, vec![
//!     Extent::new(50, 50),   // tail of track 0
//!     Extent::new(100, 100), // all of track 1
//!     Extent::new(200, 50),  // head of track 2
//! ]);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod boundaries;
pub mod extent;
pub mod model;
pub mod obs;
pub mod planner;
pub mod stats;

pub use alloc::TraxtentAllocator;
pub use boundaries::{BoundariesError, ConfidentBoundaries, TrackBoundaries};
pub use extent::Extent;
pub use planner::{PlanStatsSnapshot, RequestPlanner, StripePlanner};
