//! The track-boundary table: which LBNs start each track.
//!
//! This is the single piece of disk-specific knowledge a traxtent-aware
//! system needs (§3 of the paper). It is obtained once — by the `dixtrac`
//! extraction algorithms or from a vendor tool — then stored with the file
//! system and consulted at allocation and request-generation time.

use crate::extent::Extent;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error validating a boundary table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundariesError {
    /// The table is empty.
    Empty,
    /// Track starts are not strictly increasing at the given index.
    NotIncreasing(usize),
    /// The first track does not start at LBN 0.
    MissingOrigin,
    /// The declared capacity does not exceed the last track start.
    BadCapacity,
    /// A confidence vector does not line up with the table's tracks, or
    /// holds a value outside `[0, 1]`.
    BadConfidence,
}

impl fmt::Display for BoundariesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundariesError::Empty => write!(f, "boundary table is empty"),
            BoundariesError::NotIncreasing(i) => {
                write!(f, "track starts are not strictly increasing at index {i}")
            }
            BoundariesError::MissingOrigin => write!(f, "first track must start at lbn 0"),
            BoundariesError::BadCapacity => {
                write!(f, "capacity must exceed the last track start")
            }
            BoundariesError::BadConfidence => {
                write!(f, "confidence vector must hold one [0, 1] value per track")
            }
        }
    }
}

impl Error for BoundariesError {}

/// A validated table of track boundaries covering LBNs `[0, capacity)`.
///
/// Tracks are variable-sized: zoned recording, spare space, and slipped
/// defects all perturb track lengths, which is why a simple "N sectors per
/// track" constant does not work on any modern drive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackBoundaries {
    /// Strictly increasing track start LBNs; `starts[0] == 0`.
    starts: Vec<u64>,
    /// Total LBNs covered.
    capacity: u64,
}

impl TrackBoundaries {
    /// Builds a table from track start LBNs and the total capacity.
    ///
    /// ```
    /// use traxtent::{BoundariesError, TrackBoundaries};
    ///
    /// // Tracks start at LBN 0, 100, and 199; the disk holds 300 sectors.
    /// let tb = TrackBoundaries::new(vec![0, 100, 199], 300).unwrap();
    /// assert_eq!(tb.num_tracks(), 3);
    ///
    /// // The first track must start at LBN 0.
    /// assert_eq!(
    ///     TrackBoundaries::new(vec![1, 100], 300),
    ///     Err(BoundariesError::MissingOrigin)
    /// );
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`BoundariesError`] unless `starts` begins at 0, is strictly
    /// increasing, and `capacity` exceeds the last start.
    pub fn new(starts: Vec<u64>, capacity: u64) -> Result<Self, BoundariesError> {
        if starts.is_empty() {
            return Err(BoundariesError::Empty);
        }
        if starts[0] != 0 {
            return Err(BoundariesError::MissingOrigin);
        }
        for i in 1..starts.len() {
            if starts[i] <= starts[i - 1] {
                return Err(BoundariesError::NotIncreasing(i));
            }
        }
        if capacity <= *starts.last().expect("non-empty") {
            return Err(BoundariesError::BadCapacity);
        }
        Ok(TrackBoundaries { starts, capacity })
    }

    /// Builds a table from consecutive track lengths.
    ///
    /// ```
    /// use traxtent::TrackBoundaries;
    ///
    /// // Zoned recording and slipped defects make real track lengths vary.
    /// let tb = TrackBoundaries::from_track_lengths([100, 99, 101]).unwrap();
    /// assert_eq!(tb.capacity(), 300);
    /// assert_eq!(tb.track_bounds(150), (100, 199));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`BoundariesError::NotIncreasing`] if any length is zero and
    /// [`BoundariesError::Empty`] for an empty list.
    pub fn from_track_lengths<I: IntoIterator<Item = u64>>(
        lengths: I,
    ) -> Result<Self, BoundariesError> {
        let mut starts = Vec::new();
        let mut at = 0u64;
        for (i, len) in lengths.into_iter().enumerate() {
            if len == 0 {
                return Err(BoundariesError::NotIncreasing(i));
            }
            starts.push(at);
            at += len;
        }
        Self::new(starts, at)
    }

    /// A uniform table: `tracks` tracks of `spt` sectors each — adequate
    /// only for a single zone of a defect-free disk, but handy in tests.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn uniform(tracks: u64, spt: u64) -> Self {
        assert!(tracks > 0 && spt > 0);
        Self::from_track_lengths((0..tracks).map(|_| spt)).expect("uniform table is valid")
    }

    /// Total LBNs covered.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of tracks.
    pub fn num_tracks(&self) -> usize {
        self.starts.len()
    }

    /// The index of the track containing `lbn`.
    ///
    /// ```
    /// use traxtent::TrackBoundaries;
    ///
    /// let tb = TrackBoundaries::from_track_lengths([100, 99, 101]).unwrap();
    /// assert_eq!(tb.track_index(0), 0);
    /// assert_eq!(tb.track_index(100), 1); // first sector of track 1
    /// assert_eq!(tb.track_index(198), 1); // last sector of track 1
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lbn` is at or beyond capacity.
    pub fn track_index(&self, lbn: u64) -> usize {
        assert!(
            lbn < self.capacity,
            "lbn {lbn} beyond capacity {}",
            self.capacity
        );
        self.starts.partition_point(|&s| s <= lbn) - 1
    }

    /// The `[start, end)` bounds of the track containing `lbn`.
    ///
    /// # Panics
    ///
    /// Panics if `lbn` is at or beyond capacity.
    pub fn track_bounds(&self, lbn: u64) -> (u64, u64) {
        let i = self.track_index(lbn);
        (self.starts[i], self.track_end(i))
    }

    /// The extent of track `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn track_extent(&self, i: usize) -> Extent {
        Extent::new(self.starts[i], self.track_end(i) - self.starts[i])
    }

    fn track_end(&self, i: usize) -> u64 {
        self.starts.get(i + 1).copied().unwrap_or(self.capacity)
    }

    /// Whether `lbn` is the first sector of a track.
    pub fn is_track_start(&self, lbn: u64) -> bool {
        self.starts.binary_search(&lbn).is_ok()
    }

    /// Iterates over all track extents.
    pub fn iter(&self) -> impl Iterator<Item = Extent> + '_ {
        (0..self.starts.len()).map(|i| self.track_extent(i))
    }

    /// Splits an extent at every track boundary it crosses, yielding pieces
    /// that each lie within a single track.
    ///
    /// ```
    /// use traxtent::{Extent, TrackBoundaries};
    ///
    /// let tb = TrackBoundaries::from_track_lengths([100, 100, 100]).unwrap();
    /// let pieces: Vec<Extent> = tb.split_extent(Extent::new(50, 200)).collect();
    /// assert_eq!(pieces, vec![
    ///     Extent::new(50, 50),   // tail of track 0
    ///     Extent::new(100, 100), // all of track 1
    ///     Extent::new(200, 50),  // head of track 2
    /// ]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the extent extends beyond capacity.
    pub fn split_extent(&self, ext: Extent) -> SplitExtent<'_> {
        assert!(ext.end() <= self.capacity, "extent {ext} beyond capacity");
        SplitExtent {
            table: self,
            cur: ext.start,
            end: ext.end(),
        }
    }

    /// Clips `[start, start + want)` so it does not cross the end of the
    /// track containing `start`; returns the clipped length (≥ 1 for any
    /// in-range start).
    ///
    /// ```
    /// use traxtent::TrackBoundaries;
    ///
    /// let tb = TrackBoundaries::from_track_lengths([100, 100]).unwrap();
    /// assert_eq!(tb.clip_to_track(90, 64), 10); // stops at the boundary
    /// assert_eq!(tb.clip_to_track(90, 5), 5);   // already within the track
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `start` is at or beyond capacity.
    pub fn clip_to_track(&self, start: u64, want: u64) -> u64 {
        let (_, end) = self.track_bounds(start);
        want.min(end - start)
    }

    /// The whole-track extents fully contained in `ext` (used to turn a free
    /// region into traxtents).
    pub fn contained_tracks(&self, ext: Extent) -> impl Iterator<Item = Extent> + '_ {
        let first = if ext.start == 0 {
            0
        } else {
            self.track_index(ext.start - 1) + 1
        };
        (first..self.num_tracks())
            .map(|i| self.track_extent(i))
            .take_while(move |t| t.end() <= ext.end())
            .filter(move |t| t.start >= ext.start)
    }

    /// Mean track length in sectors.
    pub fn mean_track_len(&self) -> f64 {
        self.capacity as f64 / self.starts.len() as f64
    }
}

/// A boundary table paired with per-track extraction confidence.
///
/// The SCSI-specific extractor reads boundaries from the drive's own
/// address-translation diagnostics, so every track is certain. The general
/// timing-based extractor votes over noisy latency measurements; under
/// timing jitter some tracks come back with less than unanimous agreement.
/// The allocator consults the confidence to decide, per track, whether
/// track-aligned placement is trustworthy or whether it should degrade to
/// untracked allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidentBoundaries {
    table: TrackBoundaries,
    confidence: Vec<f64>,
}

impl ConfidentBoundaries {
    /// Pairs a boundary table with one confidence value per track.
    ///
    /// Fails with [`BoundariesError::BadConfidence`] when the vector's
    /// length differs from the table's track count or any value falls
    /// outside `[0, 1]`.
    pub fn new(table: TrackBoundaries, confidence: Vec<f64>) -> Result<Self, BoundariesError> {
        if confidence.len() != table.num_tracks() {
            return Err(BoundariesError::BadConfidence);
        }
        if confidence.iter().any(|c| !(0.0..=1.0).contains(c)) {
            return Err(BoundariesError::BadConfidence);
        }
        Ok(ConfidentBoundaries { table, confidence })
    }

    /// Wraps a table whose every track is fully trusted (confidence 1.0),
    /// as produced by the exact SCSI-diagnostic extraction.
    pub fn certain(table: TrackBoundaries) -> Self {
        let confidence = vec![1.0; table.num_tracks()];
        ConfidentBoundaries { table, confidence }
    }

    /// The underlying boundary table.
    pub fn table(&self) -> &TrackBoundaries {
        &self.table
    }

    /// Per-track confidence, indexed like the table's tracks.
    pub fn confidence(&self) -> &[f64] {
        &self.confidence
    }

    /// Confidence of track `i`. Panics if `i` is out of range.
    pub fn track_confidence(&self, i: usize) -> f64 {
        self.confidence[i]
    }

    /// Whether track `i`'s boundaries are trusted at `threshold` (inclusive).
    pub fn is_confident(&self, i: usize, threshold: f64) -> bool {
        self.confidence[i] >= threshold
    }

    /// Mean confidence across all tracks (1.0 for an empty-noise run).
    pub fn mean_confidence(&self) -> f64 {
        self.confidence.iter().sum::<f64>() / self.confidence.len() as f64
    }

    /// Fraction of tracks at or above `threshold`.
    pub fn confident_fraction(&self, threshold: f64) -> f64 {
        let n = self.confidence.iter().filter(|c| **c >= threshold).count();
        n as f64 / self.confidence.len() as f64
    }

    /// Indices of tracks whose confidence falls below `threshold`.
    pub fn low_confidence_tracks(&self, threshold: f64) -> Vec<usize> {
        self.confidence
            .iter()
            .enumerate()
            .filter(|(_, c)| **c < threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Lowers track `i`'s confidence to at most `to` (clamped to
    /// `[0, 1]`), returning the new value. Never raises: demotion is how
    /// the self-healing loop marks a track suspect after recovered media
    /// errors, and a suspect track must not accidentally regain trust.
    /// Panics if `i` is out of range.
    pub fn demote(&mut self, i: usize, to: f64) -> f64 {
        let to = to.clamp(0.0, 1.0);
        self.confidence[i] = self.confidence[i].min(to);
        self.confidence[i]
    }

    /// Raises track `i`'s confidence to at least `to` (clamped to
    /// `[0, 1]`), returning the new value. Never lowers: promotion is the
    /// inverse of [`ConfidentBoundaries::demote`], applied when exact
    /// re-verification confirms a suspect track's boundaries are intact.
    /// Panics if `i` is out of range.
    pub fn promote(&mut self, i: usize, to: f64) -> f64 {
        let to = to.clamp(0.0, 1.0);
        self.confidence[i] = self.confidence[i].max(to);
        self.confidence[i]
    }

    /// Consumes the wrapper, returning the bare table.
    pub fn into_table(self) -> TrackBoundaries {
        self.table
    }

    /// Composes a boundary map from consecutive `(length, confidence)`
    /// units — the primitive the fleet layer uses to publish a
    /// *volume-wide* boundary map: each member's stripe units (snapped to
    /// that member's physical tracks) become the "tracks" of the volume's
    /// logical address space, carrying the confidence of the member track
    /// they were carved from.
    ///
    /// ```
    /// use traxtent::ConfidentBoundaries;
    ///
    /// // Two trusted whole-track units and one low-confidence fallback unit.
    /// let map = ConfidentBoundaries::from_unit_lengths([
    ///     (200, 1.0),
    ///     (150, 1.0),
    ///     (64, 0.4),
    /// ])
    /// .unwrap();
    /// assert_eq!(map.table().num_tracks(), 3);
    /// assert_eq!(map.table().track_bounds(210), (200, 350));
    /// assert!(map.is_confident(1, 0.9));
    /// assert!(!map.is_confident(2, 0.9));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`BoundariesError`] when the unit list is empty, any
    /// length is zero, or any confidence falls outside `[0, 1]`.
    pub fn from_unit_lengths<I: IntoIterator<Item = (u64, f64)>>(
        units: I,
    ) -> Result<Self, BoundariesError> {
        let (lengths, confidence): (Vec<u64>, Vec<f64>) = units.into_iter().unzip();
        let table = TrackBoundaries::from_track_lengths(lengths)?;
        Self::new(table, confidence)
    }
}

/// Iterator produced by [`TrackBoundaries::split_extent`].
#[derive(Debug)]
pub struct SplitExtent<'a> {
    table: &'a TrackBoundaries,
    cur: u64,
    end: u64,
}

impl Iterator for SplitExtent<'_> {
    type Item = Extent;

    fn next(&mut self) -> Option<Extent> {
        if self.cur >= self.end {
            return None;
        }
        let (_, track_end) = self.table.track_bounds(self.cur);
        let piece_end = track_end.min(self.end);
        let e = Extent::new(self.cur, piece_end - self.cur);
        self.cur = piece_end;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TrackBoundaries {
        // Tracks of 100, 99, 101, 100 sectors (defects/spares vary lengths).
        TrackBoundaries::from_track_lengths([100, 99, 101, 100]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            TrackBoundaries::new(vec![], 10).unwrap_err(),
            BoundariesError::Empty
        );
        assert_eq!(
            TrackBoundaries::new(vec![1], 10).unwrap_err(),
            BoundariesError::MissingOrigin
        );
        assert_eq!(
            TrackBoundaries::new(vec![0, 5, 5], 10).unwrap_err(),
            BoundariesError::NotIncreasing(2)
        );
        assert_eq!(
            TrackBoundaries::new(vec![0, 5], 5).unwrap_err(),
            BoundariesError::BadCapacity
        );
        assert!(TrackBoundaries::new(vec![0, 5], 6).is_ok());
    }

    #[test]
    fn confidence_validates_length_and_range() {
        let t = table();
        assert_eq!(
            ConfidentBoundaries::new(t.clone(), vec![1.0; 3]).unwrap_err(),
            BoundariesError::BadConfidence
        );
        assert_eq!(
            ConfidentBoundaries::new(t.clone(), vec![1.0, 0.5, 1.2, 1.0]).unwrap_err(),
            BoundariesError::BadConfidence
        );
        assert!(ConfidentBoundaries::new(t, vec![1.0, 0.5, 0.0, 1.0]).is_ok());
    }

    #[test]
    fn certain_tables_trust_every_track() {
        let c = ConfidentBoundaries::certain(table());
        assert_eq!(c.confidence(), &[1.0; 4]);
        assert_eq!(c.mean_confidence(), 1.0);
        assert_eq!(c.confident_fraction(0.9), 1.0);
        assert!(c.low_confidence_tracks(0.9).is_empty());
        assert_eq!(c.into_table(), table());
    }

    #[test]
    fn confidence_queries_single_out_weak_tracks() {
        let c = ConfidentBoundaries::new(table(), vec![1.0, 0.6, 0.95, 1.0]).unwrap();
        assert!(c.is_confident(0, 0.9));
        assert!(!c.is_confident(1, 0.9));
        assert_eq!(c.track_confidence(2), 0.95);
        assert_eq!(c.low_confidence_tracks(0.9), vec![1]);
        assert_eq!(c.confident_fraction(0.9), 0.75);
        assert!((c.mean_confidence() - 0.8875).abs() < 1e-12);
        assert_eq!(c.table().num_tracks(), 4);
    }

    #[test]
    fn lookup_and_bounds() {
        let tb = table();
        assert_eq!(tb.capacity(), 400);
        assert_eq!(tb.num_tracks(), 4);
        assert_eq!(tb.track_bounds(0), (0, 100));
        assert_eq!(tb.track_bounds(99), (0, 100));
        assert_eq!(tb.track_bounds(100), (100, 199));
        assert_eq!(tb.track_bounds(399), (300, 400));
        assert!(tb.is_track_start(199));
        assert!(!tb.is_track_start(200));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_lookup_panics() {
        table().track_bounds(400);
    }

    #[test]
    fn split_extent_at_boundaries() {
        let tb = table();
        let pieces: Vec<Extent> = tb.split_extent(Extent::new(50, 200)).collect();
        assert_eq!(
            pieces,
            vec![
                Extent::new(50, 50),
                Extent::new(100, 99),
                Extent::new(199, 51)
            ]
        );
        // Fully inside one track: a single piece.
        let single: Vec<Extent> = tb.split_extent(Extent::new(210, 30)).collect();
        assert_eq!(single, vec![Extent::new(210, 30)]);
    }

    #[test]
    fn clip_to_track_never_crosses() {
        let tb = table();
        assert_eq!(tb.clip_to_track(90, 64), 10);
        assert_eq!(tb.clip_to_track(100, 64), 64);
        assert_eq!(tb.clip_to_track(150, 64), 49);
    }

    #[test]
    fn contained_tracks_filters_partials() {
        let tb = table();
        let tracks: Vec<Extent> = tb.contained_tracks(Extent::new(50, 300)).collect();
        assert_eq!(tracks, vec![Extent::new(100, 99), Extent::new(199, 101)]);
        let all: Vec<Extent> = tb.contained_tracks(Extent::new(0, 400)).collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn uniform_table() {
        let tb = TrackBoundaries::uniform(5, 10);
        assert_eq!(tb.capacity(), 50);
        assert_eq!(tb.track_bounds(42), (40, 50));
        assert!((tb.mean_track_len() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn iter_covers_everything() {
        let tb = table();
        let total: u64 = tb.iter().map(|e| e.len).sum();
        assert_eq!(total, tb.capacity());
    }

    #[test]
    fn serde_round_trip() {
        let tb = table();
        // serde is derived; exercise it via the serde_test-free JSON-less
        // path: clone + eq is enough to assert the derives compile, so just
        // check Debug is non-empty per C-DEBUG-NONEMPTY.
        assert!(!format!("{tb:?}").is_empty());
    }
}
