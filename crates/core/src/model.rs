//! Closed-form performance models from §2 of the paper.
//!
//! These analytic curves back Figures 1 and 3 and are used by the benchmark
//! harness as overlays against the simulator's measurements.

/// Expected rotational latency, in revolutions, for a **zero-latency**
/// (access-on-arrival) disk serving a track-aligned request covering a
/// fraction `f` of the track (Figure 3).
///
/// Derivation: the request occupies a contiguous arc of fraction `f`. If the
/// head lands inside the arc (probability `f`) the access completes in
/// exactly one revolution, i.e. latency `1 − f`; if it lands in the gap
/// (probability `1 − f`) the expected wait is `(1 − f)/2`. Total:
/// `f·(1 − f) + (1 − f)²/2 = (1 − f²)/2`.
///
/// # Panics
///
/// Panics if `f` is not within `[0, 1]`.
pub fn zero_latency_rot_latency_revs(f: f64) -> f64 {
    assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
    (1.0 - f * f) / 2.0
}

/// Expected rotational latency, in revolutions, for an **ordinary** disk:
/// `(SPT − 1) / (2·SPT)` — about half a revolution regardless of request
/// size (Figure 3's flat line).
pub fn ordinary_rot_latency_revs(spt: u32) -> f64 {
    assert!(spt > 0);
    f64::from(spt - 1) / (2.0 * f64::from(spt))
}

/// Expected number of track boundaries crossed by a request of `n` sectors
/// whose placement is uncorrelated with track boundaries: `(n − 1) / spt`
/// (§2.2, "head switch" probability for n ≤ spt).
pub fn expected_head_switches(n: u64, spt: u32) -> f64 {
    assert!(spt > 0);
    (n.saturating_sub(1)) as f64 / f64::from(spt)
}

/// Drive parameters for the analytic efficiency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// Revolution time, ms.
    pub rev_ms: f64,
    /// Average seek time for the workload's span, ms.
    pub avg_seek_ms: f64,
    /// Head switch time, ms.
    pub head_switch_ms: f64,
    /// Sectors per track in the zone of interest.
    pub spt: u32,
    /// Whether the firmware supports zero-latency access.
    pub zero_latency: bool,
}

impl DiskParams {
    /// Media transfer time for `n` sectors, ms.
    pub fn media_ms(&self, n: u64) -> f64 {
        n as f64 / f64::from(self.spt) * self.rev_ms
    }

    /// Maximum streaming efficiency: even an infinite sequential transfer
    /// loses the head-switch time once per track, so efficiency tops out at
    /// `rev / (rev + head_switch)` (the dashed asymptote in Figure 1).
    pub fn max_streaming_efficiency(&self) -> f64 {
        self.rev_ms / (self.rev_ms + self.head_switch_ms)
    }

    /// Expected service time, ms, for a random **track-aligned** request of
    /// `n` sectors (start coincides with a track boundary).
    pub fn aligned_time_ms(&self, n: u64) -> f64 {
        assert!(n > 0);
        let spt = u64::from(self.spt);
        let full_tracks = n / spt;
        let tail = n % spt;
        let mut t = self.avg_seek_ms;
        // Full tracks: one revolution each on a zero-latency disk; ordinary
        // disks pay the expected latency before each track's sector 0 (only
        // the first track — following tracks are skew-aligned).
        if full_tracks > 0 {
            if self.zero_latency {
                t += full_tracks as f64 * self.rev_ms;
            } else {
                t += ordinary_rot_latency_revs(self.spt) * self.rev_ms
                    + full_tracks as f64 * self.rev_ms;
            }
            // A head switch between consecutive tracks.
            t += (full_tracks as f64 - 1.0) * self.head_switch_ms;
        }
        if tail > 0 {
            let f = tail as f64 / self.spt as f64;
            if full_tracks > 0 {
                t += self.head_switch_ms;
                // After a switch the arrival angle is arbitrary again.
            }
            let lat = if self.zero_latency {
                zero_latency_rot_latency_revs(f)
            } else {
                ordinary_rot_latency_revs(self.spt)
            };
            t += (lat + f) * self.rev_ms;
        }
        t
    }

    /// Expected service time, ms, for a random **unaligned** request of `n`
    /// sectors (start uncorrelated with track boundaries).
    pub fn unaligned_time_ms(&self, n: u64) -> f64 {
        assert!(n > 0);
        let spt = f64::from(self.spt);
        let media = self.media_ms(n);
        let switches = expected_head_switches(n, self.spt);
        let lat = if self.zero_latency {
            // The first track's portion is a contiguous arc of expected
            // fraction min(n, spt)/spt split at a uniform point; averaging
            // the zero-latency latency over the split yields
            // ∫₀¹ (1−(uf)²)/2 du averaged with the remainder's wait — the
            // dominant term is close to the ordinary half-revolution once a
            // boundary is crossed, so we combine: with probability
            // (1 − switches_frac) the request stays on one track and gets
            // the zero-latency arc latency; otherwise it behaves like an
            // ordinary access for the crossing.
            let f = (n as f64 / spt).min(1.0);
            let p_cross = expected_head_switches(n, self.spt).min(1.0);
            (1.0 - p_cross) * zero_latency_rot_latency_revs(f)
                + p_cross * (0.5 - f.min(1.0) * f.min(1.0) / 6.0)
        } else {
            ordinary_rot_latency_revs(self.spt)
        };
        self.avg_seek_ms + lat * self.rev_ms + media + switches * self.head_switch_ms
    }

    /// Analytic disk efficiency (media time over total time) for aligned
    /// requests of `n` sectors.
    pub fn aligned_efficiency(&self, n: u64) -> f64 {
        self.media_ms(n) / self.aligned_time_ms(n)
    }

    /// Analytic disk efficiency for unaligned requests of `n` sectors.
    pub fn unaligned_efficiency(&self, n: u64) -> f64 {
        self.media_ms(n) / self.unaligned_time_ms(n)
    }
}

/// The Matthews et al. transfer-inefficiency model used in Figure 10:
/// `Tpos · BW / S + 1`, with `Tpos` in seconds, `BW` in bytes/second, and
/// segment size `S` in bytes.
pub fn matthews_transfer_inefficiency(tpos_s: f64, bw_bytes_s: f64, segment_bytes: f64) -> f64 {
    assert!(segment_bytes > 0.0);
    tpos_s * bw_bytes_s / segment_bytes + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atlas_params(zero_latency: bool) -> DiskParams {
        DiskParams {
            rev_ms: 6.0,
            avg_seek_ms: 2.2,
            head_switch_ms: 0.6,
            spt: 528,
            zero_latency,
        }
    }

    #[test]
    fn zero_latency_latency_endpoints() {
        assert!((zero_latency_rot_latency_revs(0.0) - 0.5).abs() < 1e-12);
        assert!(zero_latency_rot_latency_revs(1.0).abs() < 1e-12);
        // Monotone decreasing, concave.
        let mut last = 0.51;
        for i in 0..=10 {
            let v = zero_latency_rot_latency_revs(f64::from(i) / 10.0);
            assert!(v < last);
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fraction_out_of_range_panics() {
        let _ = zero_latency_rot_latency_revs(1.5);
    }

    #[test]
    fn ordinary_latency_is_about_half() {
        assert!((ordinary_rot_latency_revs(528) - 0.499).abs() < 1e-3);
    }

    #[test]
    fn head_switch_expectation() {
        // 64 KB requests, 192 KB track: every third access on average.
        assert!((expected_head_switches(128, 384) - 127.0 / 384.0).abs() < 1e-12);
        assert_eq!(expected_head_switches(1, 384), 0.0);
    }

    #[test]
    fn max_streaming_efficiency_below_one() {
        let p = atlas_params(true);
        let eff = p.max_streaming_efficiency();
        assert!(eff > 0.85 && eff < 1.0);
    }

    #[test]
    fn track_sized_aligned_access_hits_paper_point_a() {
        // Point A of Figure 1: one-track aligned request ≈ 0.73 efficiency,
        // ≈ 82 % of the streaming maximum.
        let p = atlas_params(true);
        let eff = p.aligned_efficiency(528);
        assert!(
            (0.68..=0.78).contains(&eff),
            "aligned track efficiency {eff}"
        );
        let ratio = eff / p.max_streaming_efficiency();
        assert!((0.76..=0.88).contains(&ratio), "ratio to max {ratio}");
    }

    #[test]
    fn track_sized_unaligned_access_is_much_worse() {
        let p = atlas_params(true);
        let ua = p.unaligned_efficiency(528);
        let al = p.aligned_efficiency(528);
        // Point A of Figure 1 has 0.73 vs 0.56, a ratio of ≈ 1.30.
        assert!(al / ua > 1.25, "aligned {al} vs unaligned {ua}");
    }

    #[test]
    fn unaligned_catches_up_at_about_1mb() {
        // Point B of Figure 1: 1 MB unaligned ≈ 0.75 efficiency.
        let p = atlas_params(true);
        let eff_1mb = p.unaligned_efficiency(2048);
        assert!(
            (0.68..=0.82).contains(&eff_1mb),
            "1 MB unaligned efficiency {eff_1mb}"
        );
    }

    #[test]
    fn non_zero_latency_gains_only_head_switch() {
        let zl = atlas_params(true);
        let nzl = atlas_params(false);
        let gain_zl = zl.aligned_efficiency(528) / zl.unaligned_efficiency(528);
        let gain_nzl = nzl.aligned_efficiency(528) / nzl.unaligned_efficiency(528);
        assert!(
            gain_zl > gain_nzl + 0.15,
            "zero-latency should dominate the win"
        );
    }

    #[test]
    fn matthews_model_decreases_with_segment_size() {
        let a = matthews_transfer_inefficiency(5.2e-3, 40e6, 64.0 * 1024.0);
        let b = matthews_transfer_inefficiency(5.2e-3, 40e6, 1024.0 * 1024.0);
        assert!(a > b && b > 1.0);
    }
}
