//! Causal spans on the simulated clock.
//!
//! A [`Span`] is one named interval of simulated time with a parent link,
//! so a request served through the whole stack — admission, scheduling,
//! volume fan-out, member service, drive phases — yields one connected
//! tree from arrival to media. Spans carry no wall-clock state at all:
//! start and end are simulated nanoseconds, and every id is a pure hash
//! of the run salt plus deterministic sequence numbers (request trace
//! index, scheduling round, drive request seq). Two runs with the same
//! seed therefore emit byte-identical span streams at any `--threads`.
//!
//! The [`SpanRecorder`] is the shared collection point: a cheap-to-clone
//! handle over one buffer, mirroring the `Tracer`/`TraceSink` idiom in
//! the drive engine. It also carries the *current causal context* — the
//! span id and member track that lower layers should parent their spans
//! under — as two atomics, so a `&SpanRecorder` threaded through
//! trait objects (e.g. a trace sink bridging drive events into spans)
//! can read the context without locking.
//!
//! Export targets:
//! * JSONL — one flat object per span via [`Span::to_json`], parsed back
//!   by [`Span::parse_json`];
//! * Chrome `trace_event` JSON via [`chrome_trace`] — loadable in
//!   Perfetto / `chrome://tracing`, with one "process" per volume member
//!   so member idle gaps are visible on the timeline.
//!
//! ```
//! use traxtent::obs::span::{self, Span, SpanRecorder};
//!
//! let rec = SpanRecorder::new();
//! rec.set_salt(0x5eed);
//! let id = span::derive_id(rec.salt(), span::kind::REQUEST, 7, 0);
//! let mut root = Span::new(id, 0, "request", 0, 1_000, 9_000);
//! root.push_attr("op", "read");
//! rec.record(root);
//! let spans = rec.take_sorted();
//! assert_eq!(span::validate(&spans).unwrap().roots, 1);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Span-kind tags mixed into id derivation so spans of different kinds
/// keyed by the same sequence number never collide.
pub mod kind {
    /// Per-request root span: arrival → completion.
    pub const REQUEST: u32 = 1;
    /// Zero-length admission instant at arrival.
    pub const ADMIT: u32 = 2;
    /// Arrival → dispatch wait in the admission queue.
    pub const QUEUE_WAIT: u32 = 3;
    /// Dispatch → completion of the command serving this request.
    pub const DISPATCH: u32 = 4;
    /// Zero-length rejection instant at arrival (queue full).
    pub const REJECT: u32 = 5;
    /// One scheduler round: dispatch instant → last completion.
    pub const ROUND: u32 = 6;
    /// One logical volume command (fleet layer).
    pub const VOL_CMD: u32 = 7;
    /// One per-member physical command (fleet layer).
    pub const MEMBER_CMD: u32 = 8;
    /// RAID-5 / mirror reconstruction fan-out (fleet layer).
    pub const RECONSTRUCT: u32 = 9;
    /// One drive command as seen by `sim_disk` (issue → complete).
    pub const DISK_CMD: u32 = 10;
    /// One drive service phase (seek, settle, rotational wait, ...).
    pub const PHASE: u32 = 11;
}

/// SplitMix64 finalizer: the bijective mixer used across the simulator
/// for deterministic hashing.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives a deterministic span id from the run salt, a [`kind`] tag and
/// two caller-chosen sequence keys. The result is never zero (zero means
/// "no parent"), and distinct `(kind, k1, k2)` triples collide only with
/// the probability of a 64-bit hash collision.
pub fn derive_id(salt: u64, kind: u32, k1: u64, k2: u64) -> u64 {
    let mut x = mix(salt ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(kind) + 1));
    x = mix(x ^ k1);
    x = mix(x ^ k2.wrapping_mul(0x2545_f491_4f6c_dd1d));
    if x == 0 {
        1
    } else {
        x
    }
}

/// One named interval of simulated time in a request's causal tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique nonzero id (see [`derive_id`]).
    pub id: u64,
    /// Parent span id, or `0` for a tree root.
    pub parent: u64,
    /// Span name — a fixed vocabulary (`request`, `vol_cmd`, `seek`, ...).
    pub name: String,
    /// Timeline lane: `0` is the server/host, `1 + m` is volume member `m`.
    pub track: u32,
    /// Start, simulated nanoseconds.
    pub start_ns: u64,
    /// End, simulated nanoseconds (`end_ns >= start_ns`).
    pub end_ns: u64,
    /// Flat `key=value` attributes joined by commas (empty when none).
    /// Keys and values use `[A-Za-z0-9_.:/+-]` only, so the encoding is
    /// unambiguous.
    pub attrs: String,
}

impl Span {
    /// A span with no attributes.
    pub fn new(id: u64, parent: u64, name: &str, track: u32, start_ns: u64, end_ns: u64) -> Self {
        Span {
            id,
            parent,
            name: name.to_string(),
            track,
            start_ns,
            end_ns,
            attrs: String::new(),
        }
    }

    /// Appends one `key=value` attribute.
    pub fn push_attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if !self.attrs.is_empty() {
            self.attrs.push(',');
        }
        let _ = write!(self.attrs, "{key}={value}");
    }

    /// Span duration in simulated nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The span as one flat JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"span\":\"{}\",\"id\":{},\"parent\":{},\"track\":{},\"start\":{},\"end\":{},\"attrs\":\"{}\"}}",
            escape(&self.name),
            self.id,
            self.parent,
            self.track,
            self.start_ns,
            self.end_ns,
            escape(&self.attrs),
        )
    }

    /// Parses one line produced by [`Span::to_json`].
    pub fn parse_json(line: &str) -> Result<Span, String> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&Field, String> {
            fields
                .get(key)
                .ok_or_else(|| format!("span line missing `{key}`"))
        };
        let num = |key: &str| -> Result<u64, String> {
            match get(key)? {
                Field::Num(n) => Ok(*n),
                Field::Str(_) => Err(format!("span field `{key}` should be a number")),
            }
        };
        let text = |key: &str| -> Result<String, String> {
            match get(key)? {
                Field::Str(s) => Ok(s.clone()),
                Field::Num(_) => Err(format!("span field `{key}` should be a string")),
            }
        };
        let span = Span {
            name: text("span")?,
            id: num("id")?,
            parent: num("parent")?,
            track: u32::try_from(num("track")?).map_err(|_| "track out of range".to_string())?,
            start_ns: num("start")?,
            end_ns: num("end")?,
            attrs: text("attrs")?,
        };
        if span.id == 0 {
            return Err("span id must be nonzero".to_string());
        }
        Ok(span)
    }

    /// The value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.split(',').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out
}

enum Field {
    Num(u64),
    Str(String),
}

/// Minimal flat-object parser for span JSONL lines: one `{...}` object of
/// string or unsigned-integer fields, no nesting. Kept local so `core`
/// stays dependency-free.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Field>, String> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or("span line is not a JSON object")?;
    let mut fields = BTreeMap::new();
    let mut chars = inner.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let key = parse_string(&mut chars)?;
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after key `{key}`"));
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let field = match chars.peek() {
            Some('"') => Field::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                    digits.push(chars.next().unwrap());
                }
                Field::Num(
                    digits
                        .parse()
                        .map_err(|_| format!("bad number for `{key}`"))?,
                )
            }
            other => return Err(format!("unexpected value start {other:?} for `{key}`")),
        };
        fields.insert(key, field);
    }
    Ok(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected string".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

/// The shared span collection point: cheap-to-clone handle over one
/// buffer plus the current causal context (parent span id + member
/// track) read by lower layers.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    buf: Mutex<Vec<Span>>,
    ctx_parent: AtomicU64,
    ctx_track: AtomicU32,
    salt: AtomicU64,
}

impl SpanRecorder {
    /// An empty recorder with salt 0 and no context.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Sets the id-derivation salt for the spans recorded next (typically
    /// a hash of the experiment cell's parameters).
    pub fn set_salt(&self, salt: u64) {
        self.inner.salt.store(salt, Ordering::Relaxed);
    }

    /// The current id-derivation salt.
    pub fn salt(&self) -> u64 {
        self.inner.salt.load(Ordering::Relaxed)
    }

    /// Sets the causal context: spans created by lower layers parent
    /// under `parent` and default to timeline lane `track`.
    pub fn set_context(&self, parent: u64, track: u32) {
        self.inner.ctx_parent.store(parent, Ordering::Relaxed);
        self.inner.ctx_track.store(track, Ordering::Relaxed);
    }

    /// Clears the causal context (parent 0 means "do not attribute").
    pub fn clear_context(&self) {
        self.set_context(0, 0);
    }

    /// The current `(parent span id, track)` context.
    pub fn context(&self) -> (u64, u32) {
        (
            self.inner.ctx_parent.load(Ordering::Relaxed),
            self.inner.ctx_track.load(Ordering::Relaxed),
        )
    }

    /// Records one span.
    pub fn record(&self, span: Span) {
        self.inner.buf.lock().expect("span buffer").push(span);
    }

    /// Records a batch under one lock acquisition, draining `spans`.
    pub fn record_all(&self, spans: &mut Vec<Span>) {
        if spans.is_empty() {
            return;
        }
        self.inner.buf.lock().expect("span buffer").append(spans);
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().expect("span buffer").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the buffer sorted by `(start_ns, id)` — a deterministic
    /// total order because ids are unique.
    pub fn take_sorted(&self) -> Vec<Span> {
        let mut spans = std::mem::take(&mut *self.inner.buf.lock().expect("span buffer"));
        spans.sort_by_key(|s| (s.start_ns, s.id));
        spans
    }
}

/// Structural facts about a validated span set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Total span count.
    pub spans: usize,
    /// Spans with `parent == 0`.
    pub roots: usize,
    /// Longest root-to-leaf chain (a lone root has depth 1).
    pub max_depth: usize,
}

/// Checks that `spans` form well-founded trees: ids unique and nonzero,
/// every nonzero parent id present, `end >= start`, no parent cycles.
/// Returns tree statistics on success.
pub fn validate(spans: &[Span]) -> Result<TreeStats, String> {
    let mut parents: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if s.id == 0 {
            return Err(format!("span `{}` has id 0", s.name));
        }
        if s.end_ns < s.start_ns {
            return Err(format!(
                "span `{}` ({:#x}) ends before it starts ({} < {})",
                s.name, s.id, s.end_ns, s.start_ns
            ));
        }
        if parents.insert(s.id, s.parent).is_some() {
            return Err(format!("duplicate span id {:#x} (`{}`)", s.id, s.name));
        }
    }
    for s in spans {
        if s.parent != 0 && !parents.contains_key(&s.parent) {
            return Err(format!(
                "span `{}` ({:#x}) references missing parent {:#x}",
                s.name, s.id, s.parent
            ));
        }
    }
    let mut roots = 0;
    let mut max_depth = 0;
    for s in spans {
        if s.parent == 0 {
            roots += 1;
        }
        let mut depth = 1usize;
        let mut at = s.parent;
        while at != 0 {
            depth += 1;
            if depth > spans.len() {
                return Err(format!("parent cycle reached from span {:#x}", s.id));
            }
            at = parents[&at];
        }
        max_depth = max_depth.max(depth);
    }
    Ok(TreeStats {
        spans: spans.len(),
        roots,
        max_depth,
    })
}

/// Renders spans as a Chrome `trace_event` JSON document (the
/// `{"traceEvents": [...]}` form loadable in Perfetto and
/// `chrome://tracing`). Each track becomes its own "process" — pid 1 is
/// the server/host lane, pid `2 + m` is volume member `m` — so member
/// idle gaps are visible side by side. Timestamps are microseconds with
/// nanosecond fractions.
pub fn chrome_trace(spans: &[Span]) -> String {
    let us = |ns: u64| format!("{}.{:03}", ns / 1000, ns % 1000);
    let mut tracks: Vec<u32> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&ev);
    };
    for t in &tracks {
        let pname = if *t == 0 {
            "server".to_string()
        } else {
            format!("member {}", t - 1)
        };
        push(&mut out, format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":1,\"args\":{{\"name\":\"{}\"}}}}",
            t + 1,
            pname
        ));
    }
    for s in spans {
        push(&mut out, format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":1,\"ts\":{},\"dur\":{},\"args\":{{\"id\":\"{:#x}\",\"parent\":\"{:#x}\",\"attrs\":\"{}\"}}}}",
            escape(&s.name),
            s.track + 1,
            us(s.start_ns),
            us(s.duration_ns()),
            s.id,
            s.parent,
            escape(&s.attrs),
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ids_are_deterministic_distinct_and_nonzero() {
        let a = derive_id(7, kind::REQUEST, 3, 0);
        assert_eq!(a, derive_id(7, kind::REQUEST, 3, 0));
        assert_ne!(a, derive_id(7, kind::DISPATCH, 3, 0), "kind separates");
        assert_ne!(a, derive_id(7, kind::REQUEST, 4, 0), "key separates");
        assert_ne!(a, derive_id(8, kind::REQUEST, 3, 0), "salt separates");
        for k in 0..4096u64 {
            assert_ne!(derive_id(0, kind::PHASE, k, k ^ 1), 0);
        }
    }

    #[test]
    fn attrs_append_and_read_back() {
        let mut s = Span::new(1, 0, "request", 0, 10, 20);
        s.push_attr("op", "read");
        s.push_attr("lbn", 4096);
        assert_eq!(s.attrs, "op=read,lbn=4096");
        assert_eq!(s.attr("op"), Some("read"));
        assert_eq!(s.attr("lbn"), Some("4096"));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(s.duration_ns(), 10);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut s = Span::new(
            derive_id(1, kind::VOL_CMD, 9, 2),
            42,
            "vol_cmd",
            3,
            100,
            250,
        );
        s.push_attr("mode", "rmw");
        let line = s.to_json();
        assert_eq!(Span::parse_json(&line).unwrap(), s);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Span::parse_json("not json").is_err());
        assert!(
            Span::parse_json("{\"span\":\"x\"}").is_err(),
            "missing fields"
        );
        let zero = "{\"span\":\"x\",\"id\":0,\"parent\":0,\"track\":0,\"start\":0,\"end\":0,\"attrs\":\"\"}";
        assert!(Span::parse_json(zero).is_err(), "zero id");
        let stringy =
            "{\"span\":\"x\",\"id\":\"1\",\"parent\":0,\"track\":0,\"start\":0,\"end\":0,\"attrs\":\"\"}";
        assert!(Span::parse_json(stringy).is_err(), "id must be numeric");
    }

    #[test]
    fn recorder_context_and_sorted_drain() {
        let rec = SpanRecorder::new();
        assert_eq!(rec.context(), (0, 0));
        rec.set_context(99, 2);
        assert_eq!(rec.context(), (99, 2));
        rec.clear_context();
        assert_eq!(rec.context(), (0, 0));

        rec.record(Span::new(2, 1, "b", 0, 50, 60));
        rec.record(Span::new(1, 0, "a", 0, 10, 70));
        let mut batch = vec![Span::new(3, 1, "c", 0, 50, 55)];
        rec.record_all(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(rec.len(), 3);
        let spans = rec.take_sorted();
        let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, [1, 2, 3], "sorted by (start, id)");
        assert!(rec.is_empty());
    }

    #[test]
    fn validate_accepts_trees_and_reports_stats() {
        let spans = vec![
            Span::new(1, 0, "request", 0, 0, 100),
            Span::new(2, 1, "dispatch", 0, 10, 100),
            Span::new(3, 2, "disk_cmd", 1, 10, 90),
            Span::new(4, 0, "round", 0, 10, 100),
        ];
        let stats = validate(&spans).unwrap();
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.roots, 2);
        assert_eq!(stats.max_depth, 3);
    }

    #[test]
    fn validate_rejects_broken_trees() {
        let orphan = vec![Span::new(1, 77, "x", 0, 0, 1)];
        assert!(validate(&orphan).unwrap_err().contains("missing parent"));
        let backwards = vec![Span::new(1, 0, "x", 0, 10, 5)];
        assert!(validate(&backwards).unwrap_err().contains("ends before"));
        let dup = vec![Span::new(1, 0, "x", 0, 0, 1), Span::new(1, 0, "y", 0, 0, 1)];
        assert!(validate(&dup).unwrap_err().contains("duplicate"));
        let cycle = vec![Span::new(1, 2, "x", 0, 0, 1), Span::new(2, 1, "y", 0, 0, 1)];
        assert!(validate(&cycle).unwrap_err().contains("cycle"));
    }

    #[test]
    fn chrome_trace_lists_processes_and_events() {
        let spans = vec![
            Span::new(1, 0, "request", 0, 1500, 4500),
            Span::new(2, 1, "disk_cmd", 2, 1500, 4000),
        ];
        let doc = chrome_trace(&spans);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"server\""), "{doc}");
        assert!(doc.contains("\"name\":\"member 1\""), "{doc}");
        assert!(doc.contains("\"ts\":1.500"), "µs with ns fraction: {doc}");
        assert!(doc.contains("\"dur\":3.000"), "{doc}");
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.trim_end().ends_with("]}"));
    }
}
