//! Track-aware request generation.
//!
//! After allocation places data on track boundaries, the request path must
//! also be taught to *issue* traxtent requests: prefetch and write-back
//! requests are extended or clipped so no request crosses a track boundary
//! (§3.2 of the paper).

use crate::boundaries::TrackBoundaries;
use crate::extent::Extent;
use std::sync::atomic::{AtomicU64, Ordering};

/// Planner activity counters, kept with relaxed atomics so a planner
/// shared across worker threads can be observed without locking.
#[derive(Debug, Default)]
struct PlanStats {
    prefetches: AtomicU64,
    prefetch_extensions: AtomicU64,
    writebacks: AtomicU64,
    writeback_clips: AtomicU64,
    splits: AtomicU64,
    split_pieces: AtomicU64,
}

/// A point-in-time copy of a planner's activity counters
/// (see [`RequestPlanner::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStatsSnapshot {
    /// Prefetch plans made ([`RequestPlanner::plan_prefetch`]).
    pub prefetches: u64,
    /// Prefetches that opened a track and were extended to cover it — the
    /// traxtent-sized fetches the paper's §3.2 policy exists to create.
    pub prefetch_extensions: u64,
    /// Write-back plans made ([`RequestPlanner::plan_writeback`]).
    pub writebacks: u64,
    /// Write-backs that were clipped short at a track boundary.
    pub writeback_clips: u64,
    /// Extent splits performed ([`RequestPlanner::split`]).
    pub splits: u64,
    /// Total track-aligned pieces those splits produced.
    pub split_pieces: u64,
}

/// Plans request sizes against a boundary table.
#[derive(Debug)]
pub struct RequestPlanner {
    boundaries: TrackBoundaries,
    stats: PlanStats,
}

impl Clone for RequestPlanner {
    /// Cloning copies the boundary table and the counters' current values.
    fn clone(&self) -> Self {
        let snap = self.stats();
        RequestPlanner {
            boundaries: self.boundaries.clone(),
            stats: PlanStats {
                prefetches: AtomicU64::new(snap.prefetches),
                prefetch_extensions: AtomicU64::new(snap.prefetch_extensions),
                writebacks: AtomicU64::new(snap.writebacks),
                writeback_clips: AtomicU64::new(snap.writeback_clips),
                splits: AtomicU64::new(snap.splits),
                split_pieces: AtomicU64::new(snap.split_pieces),
            },
        }
    }
}

impl RequestPlanner {
    /// Creates a planner.
    pub fn new(boundaries: TrackBoundaries) -> Self {
        RequestPlanner {
            boundaries,
            stats: PlanStats::default(),
        }
    }

    /// The boundary table in use.
    pub fn boundaries(&self) -> &TrackBoundaries {
        &self.boundaries
    }

    /// A snapshot of the planner's activity counters since creation (or the
    /// values carried over by a clone).
    pub fn stats(&self) -> PlanStatsSnapshot {
        PlanStatsSnapshot {
            prefetches: self.stats.prefetches.load(Ordering::Relaxed),
            prefetch_extensions: self.stats.prefetch_extensions.load(Ordering::Relaxed),
            writebacks: self.stats.writebacks.load(Ordering::Relaxed),
            writeback_clips: self.stats.writeback_clips.load(Ordering::Relaxed),
            splits: self.stats.splits.load(Ordering::Relaxed),
            split_pieces: self.stats.split_pieces.load(Ordering::Relaxed),
        }
    }

    /// Plans a prefetch starting at `start`: the caller wants `want` sectors
    /// and can tolerate up to `cap`; the planner clips the request at the
    /// next track boundary, and — when `start` opens a track — extends it to
    /// cover the full track even if `want` is smaller (a traxtent-sized
    /// fetch), still respecting `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is at or beyond capacity or `want` is zero.
    pub fn plan_prefetch(&self, start: u64, want: u64, cap: u64) -> u64 {
        assert!(want > 0, "prefetch of zero sectors");
        self.stats.prefetches.fetch_add(1, Ordering::Relaxed);
        let (tstart, tend) = self.boundaries.track_bounds(start);
        let track_remaining = tend - start;
        let len = if start == tstart {
            if track_remaining > want {
                self.stats
                    .prefetch_extensions
                    .fetch_add(1, Ordering::Relaxed);
            }
            track_remaining.max(want)
        } else {
            want
        };
        len.min(track_remaining).min(cap.max(1))
    }

    /// Plans a write-back of dirty data `[start, start + want)`: the request
    /// is clipped at the next track boundary so each disk write stays within
    /// one track.
    ///
    /// # Panics
    ///
    /// Panics if `start` is at or beyond capacity or `want` is zero.
    pub fn plan_writeback(&self, start: u64, want: u64) -> u64 {
        assert!(want > 0, "write-back of zero sectors");
        self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        let len = self.boundaries.clip_to_track(start, want);
        if len < want {
            self.stats.writeback_clips.fetch_add(1, Ordering::Relaxed);
        }
        len
    }

    /// Splits an arbitrary transfer into track-aligned pieces, each of which
    /// becomes one disk request.
    pub fn split(&self, ext: Extent) -> Vec<Extent> {
        let pieces: Vec<Extent> = self.boundaries.split_extent(ext).collect();
        self.stats.splits.fetch_add(1, Ordering::Relaxed);
        self.stats
            .split_pieces
            .fetch_add(pieces.len() as u64, Ordering::Relaxed);
        pieces
    }

    /// True if `[start, start+len)` stays within one track.
    pub fn is_track_local(&self, start: u64, len: u64) -> bool {
        let (_, end) = self.boundaries.track_bounds(start);
        start + len <= end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> RequestPlanner {
        RequestPlanner::new(TrackBoundaries::from_track_lengths([100, 99, 101]).unwrap())
    }

    #[test]
    fn prefetch_from_track_start_takes_whole_track() {
        let p = planner();
        assert_eq!(p.plan_prefetch(0, 8, 1_000), 100);
        assert_eq!(p.plan_prefetch(100, 8, 1_000), 99);
    }

    #[test]
    fn prefetch_mid_track_clips_at_boundary() {
        let p = planner();
        assert_eq!(p.plan_prefetch(90, 64, 1_000), 10);
        assert_eq!(p.plan_prefetch(150, 8, 1_000), 8);
    }

    #[test]
    fn prefetch_respects_cap() {
        let p = planner();
        assert_eq!(p.plan_prefetch(0, 8, 32), 32);
        assert_eq!(
            p.plan_prefetch(0, 8, 0),
            1,
            "cap clamps to at least one sector"
        );
    }

    #[test]
    fn writeback_clips() {
        let p = planner();
        assert_eq!(p.plan_writeback(95, 64), 5);
        assert_eq!(p.plan_writeback(100, 64), 64);
        assert_eq!(p.plan_writeback(100, 200), 99);
    }

    #[test]
    fn split_covers_without_crossing() {
        let p = planner();
        let pieces = p.split(Extent::new(0, 300));
        assert_eq!(pieces.len(), 3);
        for e in &pieces {
            assert!(p.is_track_local(e.start, e.len), "{e} crosses a track");
        }
        assert_eq!(pieces.iter().map(|e| e.len).sum::<u64>(), 300);
    }

    #[test]
    #[should_panic(expected = "zero sectors")]
    fn zero_prefetch_panics() {
        planner().plan_prefetch(0, 0, 10);
    }

    #[test]
    fn stats_count_planner_activity() {
        let p = planner();
        let _ = p.plan_prefetch(0, 8, 1_000); // opens track 0 → extended
        let _ = p.plan_prefetch(150, 8, 1_000); // mid-track → not extended
        let _ = p.plan_writeback(95, 64); // clipped at 100
        let _ = p.plan_writeback(100, 32); // fits
        let pieces = p.split(Extent::new(0, 300));
        let s = p.stats();
        assert_eq!(s.prefetches, 2);
        assert_eq!(s.prefetch_extensions, 1);
        assert_eq!(s.writebacks, 2);
        assert_eq!(s.writeback_clips, 1);
        assert_eq!(s.splits, 1);
        assert_eq!(s.split_pieces, pieces.len() as u64);
        // Clones carry the counters over.
        assert_eq!(p.clone().stats(), s);
    }
}

/// Generalized boundary planning: §1 notes that variable-sized extents let
/// a file system honor *other* boundary-related goals with the same
/// machinery — e.g. matching writes to RAID 5 stripe boundaries to avoid
/// read-modify-write cycles. `StripePlanner` composes a stripe grid with a
/// track-boundary table: requests are clipped at whichever boundary comes
/// first.
#[derive(Debug, Clone)]
pub struct StripePlanner {
    tracks: RequestPlanner,
    /// Stripe unit in sectors.
    stripe: u64,
}

impl StripePlanner {
    /// Creates a planner over `boundaries` with the given stripe unit.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_sectors` is zero.
    pub fn new(boundaries: TrackBoundaries, stripe_sectors: u64) -> Self {
        assert!(stripe_sectors > 0, "stripe unit must be positive");
        StripePlanner {
            tracks: RequestPlanner::new(boundaries),
            stripe: stripe_sectors,
        }
    }

    /// Next stripe boundary strictly after `lbn`.
    pub fn next_stripe_boundary(&self, lbn: u64) -> u64 {
        (lbn / self.stripe + 1) * self.stripe
    }

    /// Plans a write-back clipped at both the next track boundary and the
    /// next stripe boundary, so a full-stripe write never degenerates into
    /// a read-modify-write and a track write never crosses a track.
    ///
    /// # Panics
    ///
    /// Panics if `start` is at or beyond capacity or `want` is zero.
    pub fn plan_writeback(&self, start: u64, want: u64) -> u64 {
        let track_clipped = self.tracks.plan_writeback(start, want);
        track_clipped.min(self.next_stripe_boundary(start) - start)
    }

    /// True if `[start, start+len)` crosses neither kind of boundary.
    pub fn is_local(&self, start: u64, len: u64) -> bool {
        self.tracks.is_track_local(start, len) && start + len <= self.next_stripe_boundary(start)
    }
}

#[cfg(test)]
mod stripe_tests {
    use super::*;

    #[test]
    fn clips_at_the_nearer_boundary() {
        // Tracks of 100, stripes of 64.
        let tb = TrackBoundaries::uniform(10, 100);
        let p = StripePlanner::new(tb, 64);
        // From 0: stripe ends at 64, track at 100 → clip at 64.
        assert_eq!(p.plan_writeback(0, 1000), 64);
        // From 70: track ends at 100, stripe at 128 → clip at 100.
        assert_eq!(p.plan_writeback(70, 1000), 30);
        // Small writes untouched.
        assert_eq!(p.plan_writeback(10, 5), 5);
    }

    #[test]
    fn locality_respects_both_grids() {
        let tb = TrackBoundaries::uniform(10, 100);
        let p = StripePlanner::new(tb, 64);
        assert!(p.is_local(0, 64));
        assert!(!p.is_local(0, 65));
        assert!(p.is_local(64, 36));
        assert!(!p.is_local(64, 37), "crosses the track at 100");
    }

    #[test]
    fn stripe_boundary_math() {
        let tb = TrackBoundaries::uniform(4, 100);
        let p = StripePlanner::new(tb, 64);
        assert_eq!(p.next_stripe_boundary(0), 64);
        assert_eq!(p.next_stripe_boundary(63), 64);
        assert_eq!(p.next_stripe_boundary(64), 128);
    }

    #[test]
    #[should_panic(expected = "stripe unit must be positive")]
    fn zero_stripe_rejected() {
        let _ = StripePlanner::new(TrackBoundaries::uniform(2, 10), 0);
    }
}
