//! Track-aware request generation.
//!
//! After allocation places data on track boundaries, the request path must
//! also be taught to *issue* traxtent requests: prefetch and write-back
//! requests are extended or clipped so no request crosses a track boundary
//! (§3.2 of the paper).

use crate::boundaries::TrackBoundaries;
use crate::extent::Extent;

/// Plans request sizes against a boundary table.
#[derive(Debug, Clone)]
pub struct RequestPlanner {
    boundaries: TrackBoundaries,
}

impl RequestPlanner {
    /// Creates a planner.
    pub fn new(boundaries: TrackBoundaries) -> Self {
        RequestPlanner { boundaries }
    }

    /// The boundary table in use.
    pub fn boundaries(&self) -> &TrackBoundaries {
        &self.boundaries
    }

    /// Plans a prefetch starting at `start`: the caller wants `want` sectors
    /// and can tolerate up to `cap`; the planner clips the request at the
    /// next track boundary, and — when `start` opens a track — extends it to
    /// cover the full track even if `want` is smaller (a traxtent-sized
    /// fetch), still respecting `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is at or beyond capacity or `want` is zero.
    pub fn plan_prefetch(&self, start: u64, want: u64, cap: u64) -> u64 {
        assert!(want > 0, "prefetch of zero sectors");
        let (tstart, tend) = self.boundaries.track_bounds(start);
        let track_remaining = tend - start;
        let len = if start == tstart {
            track_remaining.max(want)
        } else {
            want
        };
        len.min(track_remaining).min(cap.max(1))
    }

    /// Plans a write-back of dirty data `[start, start + want)`: the request
    /// is clipped at the next track boundary so each disk write stays within
    /// one track.
    ///
    /// # Panics
    ///
    /// Panics if `start` is at or beyond capacity or `want` is zero.
    pub fn plan_writeback(&self, start: u64, want: u64) -> u64 {
        assert!(want > 0, "write-back of zero sectors");
        self.boundaries.clip_to_track(start, want)
    }

    /// Splits an arbitrary transfer into track-aligned pieces, each of which
    /// becomes one disk request.
    pub fn split(&self, ext: Extent) -> Vec<Extent> {
        self.boundaries.split_extent(ext).collect()
    }

    /// True if `[start, start+len)` stays within one track.
    pub fn is_track_local(&self, start: u64, len: u64) -> bool {
        let (_, end) = self.boundaries.track_bounds(start);
        start + len <= end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> RequestPlanner {
        RequestPlanner::new(TrackBoundaries::from_track_lengths([100, 99, 101]).unwrap())
    }

    #[test]
    fn prefetch_from_track_start_takes_whole_track() {
        let p = planner();
        assert_eq!(p.plan_prefetch(0, 8, 1_000), 100);
        assert_eq!(p.plan_prefetch(100, 8, 1_000), 99);
    }

    #[test]
    fn prefetch_mid_track_clips_at_boundary() {
        let p = planner();
        assert_eq!(p.plan_prefetch(90, 64, 1_000), 10);
        assert_eq!(p.plan_prefetch(150, 8, 1_000), 8);
    }

    #[test]
    fn prefetch_respects_cap() {
        let p = planner();
        assert_eq!(p.plan_prefetch(0, 8, 32), 32);
        assert_eq!(
            p.plan_prefetch(0, 8, 0),
            1,
            "cap clamps to at least one sector"
        );
    }

    #[test]
    fn writeback_clips() {
        let p = planner();
        assert_eq!(p.plan_writeback(95, 64), 5);
        assert_eq!(p.plan_writeback(100, 64), 64);
        assert_eq!(p.plan_writeback(100, 200), 99);
    }

    #[test]
    fn split_covers_without_crossing() {
        let p = planner();
        let pieces = p.split(Extent::new(0, 300));
        assert_eq!(pieces.len(), 3);
        for e in &pieces {
            assert!(p.is_track_local(e.start, e.len), "{e} crosses a track");
        }
        assert_eq!(pieces.iter().map(|e| e.len).sum::<u64>(), 300);
    }

    #[test]
    #[should_panic(expected = "zero sectors")]
    fn zero_prefetch_panics() {
        planner().plan_prefetch(0, 0, 10);
    }
}

/// Generalized boundary planning: §1 notes that variable-sized extents let
/// a file system honor *other* boundary-related goals with the same
/// machinery — e.g. matching writes to RAID 5 stripe boundaries to avoid
/// read-modify-write cycles. `StripePlanner` composes a stripe grid with a
/// track-boundary table: requests are clipped at whichever boundary comes
/// first.
#[derive(Debug, Clone)]
pub struct StripePlanner {
    tracks: RequestPlanner,
    /// Stripe unit in sectors.
    stripe: u64,
}

impl StripePlanner {
    /// Creates a planner over `boundaries` with the given stripe unit.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_sectors` is zero.
    pub fn new(boundaries: TrackBoundaries, stripe_sectors: u64) -> Self {
        assert!(stripe_sectors > 0, "stripe unit must be positive");
        StripePlanner {
            tracks: RequestPlanner::new(boundaries),
            stripe: stripe_sectors,
        }
    }

    /// Next stripe boundary strictly after `lbn`.
    pub fn next_stripe_boundary(&self, lbn: u64) -> u64 {
        (lbn / self.stripe + 1) * self.stripe
    }

    /// Plans a write-back clipped at both the next track boundary and the
    /// next stripe boundary, so a full-stripe write never degenerates into
    /// a read-modify-write and a track write never crosses a track.
    ///
    /// # Panics
    ///
    /// Panics if `start` is at or beyond capacity or `want` is zero.
    pub fn plan_writeback(&self, start: u64, want: u64) -> u64 {
        let track_clipped = self.tracks.plan_writeback(start, want);
        track_clipped.min(self.next_stripe_boundary(start) - start)
    }

    /// True if `[start, start+len)` crosses neither kind of boundary.
    pub fn is_local(&self, start: u64, len: u64) -> bool {
        self.tracks.is_track_local(start, len) && start + len <= self.next_stripe_boundary(start)
    }
}

#[cfg(test)]
mod stripe_tests {
    use super::*;

    #[test]
    fn clips_at_the_nearer_boundary() {
        // Tracks of 100, stripes of 64.
        let tb = TrackBoundaries::uniform(10, 100);
        let p = StripePlanner::new(tb, 64);
        // From 0: stripe ends at 64, track at 100 → clip at 64.
        assert_eq!(p.plan_writeback(0, 1000), 64);
        // From 70: track ends at 100, stripe at 128 → clip at 100.
        assert_eq!(p.plan_writeback(70, 1000), 30);
        // Small writes untouched.
        assert_eq!(p.plan_writeback(10, 5), 5);
    }

    #[test]
    fn locality_respects_both_grids() {
        let tb = TrackBoundaries::uniform(10, 100);
        let p = StripePlanner::new(tb, 64);
        assert!(p.is_local(0, 64));
        assert!(!p.is_local(0, 65));
        assert!(p.is_local(64, 36));
        assert!(!p.is_local(64, 37), "crosses the track at 100");
    }

    #[test]
    fn stripe_boundary_math() {
        let tb = TrackBoundaries::uniform(4, 100);
        let p = StripePlanner::new(tb, 64);
        assert_eq!(p.next_stripe_boundary(0), 64);
        assert_eq!(p.next_stripe_boundary(63), 64);
        assert_eq!(p.next_stripe_boundary(64), 128);
    }

    #[test]
    #[should_panic(expected = "stripe unit must be positive")]
    fn zero_stripe_rejected() {
        let _ = StripePlanner::new(TrackBoundaries::uniform(2, 10), 0);
    }
}
