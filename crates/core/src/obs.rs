//! A lightweight counter/gauge registry for stack-wide observability.
//!
//! The layers above the drive engine — extraction, file systems, the video
//! server, workload generators — expose what they did through a shared
//! [`Registry`]: a named set of monotonically increasing counters and
//! set-on-export gauges. The design follows the `PlanStatsSnapshot` idiom
//! already used by [`crate::planner::RequestPlanner`]:
//!
//! * hot-path updates are a single relaxed atomic add on a pre-registered
//!   [`Counter`] handle — no lock, no allocation, no formatting;
//! * registration (name lookup) takes a mutex, but happens once per counter,
//!   outside any measured loop;
//! * reading is always via an immutable point-in-time [`Snapshot`], sorted
//!   by name so output and JSON are deterministic.
//!
//! Because relaxed counter additions commute, totals are deterministic even
//! when independent simulation cells update the same registry from a worker
//! pool: every interleaving sums to the same value.
//!
//! ```
//! use traxtent::obs::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache.hits");
//! hits.inc();
//! hits.add(2);
//! reg.set_gauge("segments.live", 17);
//! let snap = reg.snapshot();
//! assert_eq!(snap.get("cache.hits"), Some(3));
//! assert_eq!(snap.get("segments.live"), Some(17));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod span;

/// A shared registry of named `u64` cells. Cloning is cheap and yields a
/// handle to the *same* registry, so one registry can be threaded through
/// every layer of a run.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    cells: Arc<Mutex<BTreeMap<String, Arc<AtomicU64>>>>,
}

/// A handle to one registered counter: updates are relaxed atomic adds, so
/// the handle can be used from worker threads without locking.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it at zero on
    /// first use. Call once and keep the handle; the lookup locks the
    /// registration table.
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = self.cells.lock().expect("obs registry");
        let cell = cells
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Adds `n` to the counter named `name` (registering it if new). A
    /// convenience for cold paths — e.g. publishing a result struct's totals
    /// at the end of a run — where keeping a [`Counter`] handle is not worth
    /// it.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Sets the cell named `name` to exactly `value`, registering it if
    /// new. Gauges are meant for set-on-export values (an occupancy, a
    /// fraction scaled to fixed-point) written once from a single thread;
    /// concurrent setters race by last-write-wins.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut cells = self.cells.lock().expect("obs registry");
        cells
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .store(value, Ordering::Relaxed);
    }

    /// Raises the cell named `name` to at least `value`. Like [`Registry::add`],
    /// `max` is commutative, so concurrent exporters (e.g. parallel
    /// simulation cells each publishing a high-water mark) produce the same
    /// final value under any interleaving.
    pub fn set_max(&self, name: &str, value: u64) {
        let mut cells = self.cells.lock().expect("obs registry");
        cells
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of every cell, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let cells = self.cells.lock().expect("obs registry");
        Snapshot {
            entries: cells
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// An immutable point-in-time copy of a [`Registry`], sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<(String, u64)>,
}

impl Snapshot {
    /// The `(name, value)` pairs, sorted by name.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// The value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// True if no cell was ever registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The snapshot as one flat JSON object (`{"a.b": 1, ...}`), keys
    /// sorted. Names never need escaping beyond quotes/backslashes because
    /// instrumentation uses plain dotted identifiers, but both are escaped
    /// anyway.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            for c in name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push_str("\": ");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Snapshot {
    /// A fixed-width `name value` table, one cell per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &self.entries {
            writeln!(f, "{name:<width$} {value:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("a");
        let a2 = reg.counter("a");
        a.inc();
        a2.add(4);
        assert_eq!(a.get(), 5, "same name resolves to the same cell");
        assert_eq!(reg.snapshot().get("a"), Some(5));
    }

    #[test]
    fn clones_share_the_registry() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.add("x", 3);
        assert_eq!(reg.snapshot().get("x"), Some(3));
    }

    #[test]
    fn gauges_overwrite() {
        let reg = Registry::new();
        reg.set_gauge("g", 10);
        reg.set_gauge("g", 7);
        assert_eq!(reg.snapshot().get("g"), Some(7));
    }

    #[test]
    fn set_max_keeps_the_high_water_mark() {
        let reg = Registry::new();
        reg.set_max("hw", 5);
        reg.set_max("hw", 3);
        reg.set_max("hw", 9);
        assert_eq!(reg.snapshot().get("hw"), Some(9));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.add("z", 1);
        reg.add("a", 2);
        reg.add("m", 3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
        assert_eq!(snap.get("missing"), None);
        assert_eq!(snap.to_json(), r#"{"a": 2, "m": 3, "z": 1}"#);
    }

    #[test]
    fn empty_snapshot() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.to_json(), "{}");
        assert_eq!(snap.to_string(), "");
    }

    #[test]
    fn json_escapes_quotes() {
        let reg = Registry::new();
        reg.add("we\"ird\\name", 1);
        assert_eq!(reg.snapshot().to_json(), r#"{"we\"ird\\name": 1}"#);
    }

    #[test]
    fn concurrent_adds_sum_deterministically() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = reg.counter("n");
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().get("n"), Some(4000));
    }

    #[test]
    fn display_lines_up() {
        let reg = Registry::new();
        reg.add("short", 1);
        reg.add("a.much.longer.name", 22);
        let text = reg.snapshot().to_string();
        assert!(text.contains("short              "), "{text}");
        assert!(text.lines().count() == 2);
    }
}
