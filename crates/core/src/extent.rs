//! Extents: half-open LBN ranges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open range of logical block numbers `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Extent {
    /// First LBN.
    pub start: u64,
    /// Number of sectors (always positive).
    pub len: u64,
}

impl Extent {
    /// Creates an extent.
    ///
    /// ```
    /// use traxtent::Extent;
    ///
    /// let e = Extent::new(10, 5); // sectors 10, 11, 12, 13, 14
    /// assert_eq!(e.end(), 15);
    /// assert!(e.contains(14) && !e.contains(15));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or the range overflows `u64`.
    pub fn new(start: u64, len: u64) -> Self {
        assert!(len > 0, "extent length must be positive");
        assert!(
            start.checked_add(len).is_some(),
            "extent overflows the LBN space"
        );
        Extent { start, len }
    }

    /// Creates an extent from half-open bounds, or `None` if empty.
    ///
    /// ```
    /// use traxtent::Extent;
    ///
    /// assert_eq!(Extent::from_bounds(5, 7), Some(Extent::new(5, 2)));
    /// assert_eq!(Extent::from_bounds(5, 5), None); // empty range
    /// ```
    pub fn from_bounds(start: u64, end: u64) -> Option<Self> {
        (end > start).then(|| Extent::new(start, end - start))
    }

    /// One past the last LBN.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `lbn` falls inside the extent.
    pub fn contains(&self, lbn: u64) -> bool {
        (self.start..self.end()).contains(&lbn)
    }

    /// Whether two extents share any LBN.
    pub fn overlaps(&self, other: &Extent) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Whether `other` lies entirely within `self`.
    pub fn contains_extent(&self, other: &Extent) -> bool {
        self.start <= other.start && other.end() <= self.end()
    }

    /// The overlap of two extents, if any.
    ///
    /// ```
    /// use traxtent::Extent;
    ///
    /// let a = Extent::new(0, 10);
    /// assert_eq!(a.intersect(&Extent::new(5, 10)), Some(Extent::new(5, 5)));
    /// assert_eq!(a.intersect(&Extent::new(10, 5)), None); // merely adjacent
    /// ```
    pub fn intersect(&self, other: &Extent) -> Option<Extent> {
        Extent::from_bounds(self.start.max(other.start), self.end().min(other.end()))
    }

    /// Splits at an absolute LBN, returning the (left, right) parts. Either
    /// may be `None` if the cut falls at or outside an edge.
    ///
    /// ```
    /// use traxtent::Extent;
    ///
    /// let e = Extent::new(10, 10);
    /// assert_eq!(
    ///     e.split_at(15),
    ///     (Some(Extent::new(10, 5)), Some(Extent::new(15, 5)))
    /// );
    /// assert_eq!(e.split_at(10), (None, Some(e))); // cut at the left edge
    /// ```
    pub fn split_at(&self, lbn: u64) -> (Option<Extent>, Option<Extent>) {
        (
            Extent::from_bounds(self.start, lbn.min(self.end())),
            Extent::from_bounds(lbn.max(self.start), self.end()),
        )
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let e = Extent::new(10, 5);
        assert_eq!(e.end(), 15);
        assert!(e.contains(10) && e.contains(14) && !e.contains(15));
        assert_eq!(format!("{e}"), "[10, 15)");
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_len_panics() {
        let _ = Extent::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_panics() {
        let _ = Extent::new(u64::MAX, 2);
    }

    #[test]
    fn from_bounds_rejects_empty() {
        assert_eq!(Extent::from_bounds(5, 5), None);
        assert_eq!(Extent::from_bounds(6, 5), None);
        assert_eq!(Extent::from_bounds(5, 7), Some(Extent::new(5, 2)));
    }

    #[test]
    fn overlap_and_containment() {
        let a = Extent::new(0, 10);
        let b = Extent::new(5, 10);
        let c = Extent::new(10, 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.contains_extent(&Extent::new(2, 8)));
        assert!(!a.contains_extent(&b));
        assert_eq!(a.intersect(&b), Some(Extent::new(5, 5)));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn split_at_edges() {
        let e = Extent::new(10, 10);
        assert_eq!(e.split_at(10), (None, Some(e)));
        assert_eq!(e.split_at(20), (Some(e), None));
        assert_eq!(
            e.split_at(15),
            (Some(Extent::new(10, 5)), Some(Extent::new(15, 5)))
        );
        assert_eq!(e.split_at(5), (None, Some(e)));
        assert_eq!(e.split_at(25), (Some(e), None));
    }
}
