//! Small statistics helpers used by the evaluation harness: mean, standard
//! deviation, and percentiles over `f64` samples.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 with fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice (0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<Running>().std_dev()
}

/// The `p`-quantile (0 ≤ p ≤ 1) by linear interpolation between order
/// statistics. Sorts a copy of the input.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 1]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let rank = p * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let r: Running = xs.iter().copied().collect();
        assert_eq!(r.count(), 5);
        assert!((r.mean() - mean(&xs)).abs() < 1e-12);
        assert!((r.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
        let mut one = Running::new();
        one.push(7.0);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.std_dev(), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_of_empty_panics() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn known_std_dev() {
        // Variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }
}
