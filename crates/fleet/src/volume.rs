//! The volume proper: member drives + data plane + degraded-mode service.

use crate::data::{fill_stores, pattern_word, SectorStore};
use crate::layout::{Chunk, StripePolicy, VolumeKind, VolumeLayout};
use crate::FleetError;
use sim_disk::crash::{words_payload, SectorImage};
use sim_disk::disk::Disk;
use sim_disk::request::{Completion, Op, Request};
use sim_disk::SimTime;
use traxtent::boundaries::ConfidentBoundaries;
use traxtent::obs::span::{self, Span, SpanRecorder};
use traxtent::obs::Registry;

/// How many times a surfaced [`sim_disk::fault::CommandFault`] is
/// re-issued before the volume gives up on that member for the access
/// and falls over to redundancy (or reports the data unrecoverable).
pub const FAULT_RETRIES: u32 = 4;

/// Builds a member's ground-truth boundary map straight from its drive
/// geometry, at full confidence — the shortcut for tests and examples
/// where running dixtrac extraction per member would be noise. Production
/// paths use [`dixtrac`-style extraction] per member instead.
///
/// [`dixtrac`-style extraction]: crate#example
pub fn member_boundaries(disk: &Disk) -> ConfidentBoundaries {
    ConfidentBoundaries::certain(server::drive_boundaries(disk))
}

/// One member drive with its data plane and health flag.
#[derive(Debug)]
pub(crate) struct Member {
    pub(crate) disk: Disk,
    pub(crate) store: SectorStore,
    pub(crate) healthy: bool,
}

impl Member {
    /// Issues a command clamped to the member's own issue-time floor
    /// (per-member FCFS), retrying surfaced transient faults.
    pub(crate) fn issue(&mut self, req: Request, at: SimTime) -> Result<Completion, ()> {
        for _ in 0..FAULT_RETRIES {
            let t = at.max(self.disk.last_issue());
            if let Ok(done) = self.disk.try_service(req, t) {
                return Ok(done);
            }
        }
        Err(())
    }

    /// Attaches the words just written by the member's last successful
    /// write command to its crash log (no-op when crash capture is not
    /// armed). Must be called right after the issuing write, before any
    /// other command goes to this member.
    pub(crate) fn note_words(&mut self, words: &[u64]) {
        if self.disk.crash_log().is_some() {
            self.disk.note_write_payload(&words_payload(words));
        }
    }
}

/// Running counters of what the volume has done, exported via
/// [`Volume::export_metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VolumeStats {
    /// Commands issued to member drives.
    pub member_cmds: u64,
    /// Logical reads that could not use their home member and were served
    /// from a mirror copy or parity reconstruction.
    pub degraded_reads: u64,
    /// Sectors whose contents were reconstructed from redundancy.
    pub reconstructed_sectors: u64,
    /// Logical writes that had to take a degraded path (reconstruct-write
    /// or data-only write under a failed parity member).
    pub degraded_writes: u64,
}

/// The host-visible result of one logical volume access.
///
/// Member-level completions are internal; the volume reports when the
/// whole logical request finished (the latest member completion) and how
/// much work it fanned out into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeCompletion {
    /// The logical request serviced.
    pub request: Request,
    /// When the host issued it to the volume.
    pub issue: SimTime,
    /// When the last member command completed.
    pub completion: SimTime,
    /// Member commands the access fanned out into.
    pub member_cmds: u32,
    /// True if any part of the access took a degraded path.
    pub reconstructed: bool,
}

impl VolumeCompletion {
    /// Converts to a [`sim_disk::request::Completion`] for consumers that
    /// speak the single-drive completion shape (the PR 7 server). The
    /// component breakdown is zeroed: a multi-member access has no single
    /// seek/rotation decomposition.
    pub fn into_completion(self) -> Completion {
        Completion {
            request: self.request,
            issue: self.issue,
            service_start: self.issue,
            media_end: self.completion,
            completion: self.completion,
            cache_hit: false,
            breakdown: Default::default(),
        }
    }
}

/// A multi-disk volume: heterogeneous member drives behind one logical
/// LBN space, with stripe units snapped to member track boundaries.
#[derive(Debug)]
pub struct Volume {
    pub(crate) layout: VolumeLayout,
    pub(crate) members: Vec<Member>,
    pub(crate) stats: VolumeStats,
    /// Per-member base images snapshotted by [`Volume::arm_crash`]; the
    /// state a power-cut replay starts from.
    pub(crate) crash_base: Option<Vec<SectorImage>>,
    fill_seed: u64,
    write_seq: u64,
    spans: Option<SpanRecorder>,
    span_seq: u64,
}

/// Span bookkeeping for one logical volume access: the open `vol_cmd`
/// span, the per-member command sub-sequence, and the context that must
/// be restored when the access finishes (or unwinds on error — restoring
/// happens in `Drop` so a failed access never leaks its context into
/// later untraced traffic).
struct AccessSpans {
    rec: SpanRecorder,
    saved: (u64, u32),
    vol_id: u64,
    seq: u64,
    sub: u64,
    parent: u64,
    notes: Vec<&'static str>,
    buf: Vec<Span>,
}

impl AccessSpans {
    /// Issues `req` to `member` under a fresh `member_cmd` span, with the
    /// recorder context pointed at it so the member drive's
    /// [`server::DiskSpanBridge`] parents its `disk_cmd` spans (one per
    /// attempt — retries stay visible) underneath.
    fn member_issue(
        &mut self,
        member: &mut Member,
        m: usize,
        req: Request,
        at: SimTime,
        role: &'static str,
    ) -> Result<Completion, ()> {
        let id = span::derive_id(self.rec.salt(), span::kind::MEMBER_CMD, self.seq, self.sub);
        self.sub += 1;
        let track = (1 + m) as u32;
        self.rec.set_context(id, track);
        let res = member.issue(req, at);
        let end = match &res {
            Ok(c) => c.completion,
            Err(()) => at,
        };
        let mut s = Span::new(
            id,
            self.parent,
            "member_cmd",
            track,
            at.as_ns(),
            end.as_ns(),
        );
        s.push_attr("member", m);
        s.push_attr("op", op_label(req.op));
        s.push_attr("pstart", req.lbn);
        s.push_attr("len", req.len);
        s.push_attr("role", role);
        if res.is_err() {
            s.push_attr("failed", 1);
        }
        self.buf.push(s);
        res
    }

    /// Opens a `reconstruct` grouping span; member commands issued until
    /// [`AccessSpans::end_reconstruct`] parent under it.
    fn begin_reconstruct(&mut self) -> u64 {
        let id = span::derive_id(self.rec.salt(), span::kind::RECONSTRUCT, self.seq, self.sub);
        self.sub += 1;
        self.parent = id;
        id
    }

    fn end_reconstruct(&mut self, id: u64, chunk: &Chunk, at: SimTime, done: SimTime) {
        let mut s = Span::new(id, self.vol_id, "reconstruct", 0, at.as_ns(), done.as_ns());
        s.push_attr("member", chunk.member);
        s.push_attr("sectors", chunk.len);
        self.buf.push(s);
        self.parent = self.vol_id;
    }

    /// Remembers which service mode the access took (`rmw`,
    /// `reconstruct_write`, …); deduplicated into `mode` attrs at finish.
    fn note(&mut self, mode: &'static str) {
        if !self.notes.contains(&mode) {
            self.notes.push(mode);
        }
    }

    /// Emits the `vol_cmd` span covering the whole access and flushes the
    /// buffered spans to the recorder.
    fn finish(mut self, req: Request, at: SimTime, done: SimTime) {
        let mut v = Span::new(
            self.vol_id,
            self.saved.0,
            "vol_cmd",
            0,
            at.as_ns(),
            done.as_ns(),
        );
        v.push_attr("op", op_label(req.op));
        v.push_attr("lbn", req.lbn);
        v.push_attr("len", req.len);
        for mode in std::mem::take(&mut self.notes) {
            v.push_attr("mode", mode);
        }
        self.buf.push(v);
        let mut buf = std::mem::take(&mut self.buf);
        self.rec.record_all(&mut buf);
    }
}

impl Drop for AccessSpans {
    fn drop(&mut self) {
        self.rec.set_context(self.saved.0, self.saved.1);
    }
}

fn op_label(op: Op) -> &'static str {
    match op {
        Op::Read => "read",
        Op::Write => "write",
    }
}

/// Issues `req` to `member`, through the span scope when one is active.
fn issue_member(
    member: &mut Member,
    m: usize,
    req: Request,
    at: SimTime,
    sp: &mut Option<AccessSpans>,
    role: &'static str,
) -> Result<Completion, ()> {
    match sp {
        Some(s) => s.member_issue(member, m, req, at, role),
        None => member.issue(req, at),
    }
}

impl Volume {
    fn build(
        kind: VolumeKind,
        members: Vec<(Disk, ConfidentBoundaries)>,
        policy: StripePolicy,
    ) -> Result<Self, FleetError> {
        for (i, (disk, map)) in members.iter().enumerate() {
            if map.table().capacity() != disk.capacity_lbns() {
                return Err(FleetError::MemberMismatch {
                    member: i,
                    boundaries: map.table().capacity(),
                    disk: disk.capacity_lbns(),
                });
            }
        }
        let maps: Vec<ConfidentBoundaries> = members.iter().map(|(_, m)| m.clone()).collect();
        let layout = VolumeLayout::new(kind, &maps, &policy)?;
        let members = members
            .into_iter()
            .map(|(disk, _)| Member {
                store: SectorStore::new(disk.capacity_lbns()),
                disk,
                healthy: true,
            })
            .collect();
        Ok(Volume {
            layout,
            members,
            stats: VolumeStats::default(),
            crash_base: None,
            fill_seed: 0,
            write_seq: 0,
            spans: None,
            span_seq: 0,
        })
    }

    /// Attaches a span recorder: every subsequent [`Volume::read`] /
    /// [`Volume::write`] emits a `vol_cmd` span (parented under whatever
    /// context the caller set — the server's dispatch span) with one
    /// `member_cmd` child per member command, and `reconstruct` grouping
    /// spans on RAID-5 degraded reads. Install a
    /// [`server::DiskSpanBridge`] as each member drive's tracer on the
    /// same recorder to extend the tree down to per-phase drive spans.
    pub fn attach_spans(&mut self, rec: SpanRecorder) {
        self.spans = Some(rec);
    }

    /// Opens the span scope for one logical access, if recording.
    fn begin_access(&mut self) -> Option<AccessSpans> {
        let rec = self.spans.clone()?;
        self.span_seq += 1;
        let saved = rec.context();
        let vol_id = span::derive_id(rec.salt(), span::kind::VOL_CMD, self.span_seq, 0);
        Some(AccessSpans {
            rec,
            saved,
            vol_id,
            seq: self.span_seq,
            sub: 0,
            parent: vol_id,
            notes: Vec::new(),
            buf: Vec::new(),
        })
    }

    /// A RAID-0 volume: stripe units round-robin across `members`, no
    /// redundancy. Needs at least two members.
    ///
    /// ```
    /// use fleet::{member_boundaries, StripePolicy, Volume};
    /// use sim_disk::disk::Disk;
    /// use sim_disk::models::small_test_disk;
    ///
    /// let members: Vec<_> = (0..2)
    ///     .map(|_| {
    ///         let d = Disk::new(small_test_disk());
    ///         let b = member_boundaries(&d);
    ///         (d, b)
    ///     })
    ///     .collect();
    /// let v = Volume::striped(members, StripePolicy::aligned()).unwrap();
    /// // RAID-0 exposes every member sector as logical space.
    /// assert_eq!(v.capacity(), 2 * 84_000);
    /// ```
    pub fn striped(
        members: Vec<(Disk, ConfidentBoundaries)>,
        policy: StripePolicy,
    ) -> Result<Self, FleetError> {
        Self::build(VolumeKind::Striped, members, policy)
    }

    /// A RAID-1 volume: every member holds a full copy; reads rotate
    /// across healthy members, writes go to all of them. Needs at least
    /// two members.
    ///
    /// ```
    /// use fleet::{member_boundaries, StripePolicy, Volume};
    /// use sim_disk::disk::Disk;
    /// use sim_disk::models::small_test_disk;
    ///
    /// let members: Vec<_> = (0..2)
    ///     .map(|_| {
    ///         let d = Disk::new(small_test_disk());
    ///         let b = member_boundaries(&d);
    ///         (d, b)
    ///     })
    ///     .collect();
    /// let v = Volume::mirrored(members, StripePolicy::aligned()).unwrap();
    /// // A mirror exposes one copy's worth of logical space.
    /// assert_eq!(v.capacity(), 84_000);
    /// ```
    pub fn mirrored(
        members: Vec<(Disk, ConfidentBoundaries)>,
        policy: StripePolicy,
    ) -> Result<Self, FleetError> {
        Self::build(VolumeKind::Mirrored, members, policy)
    }

    /// A RAID-5 volume: per stripe round, one member's unit holds the XOR
    /// parity of the others, rotating through the members. Needs at least
    /// three members.
    ///
    /// ```
    /// use fleet::{member_boundaries, StripePolicy, Volume};
    /// use sim_disk::disk::Disk;
    /// use sim_disk::models::small_test_disk;
    ///
    /// let members: Vec<_> = (0..3)
    ///     .map(|_| {
    ///         let d = Disk::new(small_test_disk());
    ///         let b = member_boundaries(&d);
    ///         (d, b)
    ///     })
    ///     .collect();
    /// let v = Volume::raid5(members, StripePolicy::aligned()).unwrap();
    /// // One member's worth of sectors goes to parity.
    /// assert_eq!(v.capacity(), 2 * 84_000);
    /// ```
    pub fn raid5(
        members: Vec<(Disk, ConfidentBoundaries)>,
        policy: StripePolicy,
    ) -> Result<Self, FleetError> {
        Self::build(VolumeKind::Raid5, members, policy)
    }

    /// The logical↔physical map.
    pub fn layout(&self) -> &VolumeLayout {
        &self.layout
    }

    /// Logical capacity in sectors.
    pub fn capacity(&self) -> u64 {
        self.layout.capacity()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &VolumeStats {
        &self.stats
    }

    /// Per-member health flags.
    pub fn member_health(&self) -> Vec<bool> {
        self.members.iter().map(|m| m.healthy).collect()
    }

    /// Indices of failed members.
    pub fn failed_members(&self) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&i| !self.members[i].healthy)
            .collect()
    }

    /// True if any member is failed.
    pub fn is_degraded(&self) -> bool {
        self.members.iter().any(|m| !m.healthy)
    }

    /// True if every logical LBN is still readable given current member
    /// health: all members healthy for RAID-0, at least one for a
    /// mirror, at most one failed for RAID-5.
    pub fn can_serve(&self) -> bool {
        let failed = self.failed_members().len();
        match self.layout.kind() {
            VolumeKind::Striped => failed == 0,
            VolumeKind::Mirrored => failed < self.members.len(),
            VolumeKind::Raid5 => failed <= 1,
        }
    }

    /// The volume-wide boundary map (see
    /// [`VolumeLayout::logical_boundaries`]).
    pub fn logical_boundaries(&self) -> ConfidentBoundaries {
        self.layout.logical_boundaries()
    }

    /// Fills the logical space with the canonical [`pattern_word`]
    /// content and establishes mirror/parity redundancy. Data-plane only
    /// — a format costs no simulated time.
    pub fn format(&mut self, seed: u64) {
        self.fill_seed = seed;
        let mut stores: Vec<SectorStore> = self
            .members
            .iter()
            .map(|m| SectorStore::new(m.disk.capacity_lbns()))
            .collect();
        fill_stores(&self.layout, &mut stores, seed);
        for (m, store) in self.members.iter_mut().zip(stores) {
            m.store = store;
        }
    }

    /// The seed the volume was last [`Volume::format`]ted with.
    pub fn fill_seed(&self) -> u64 {
        self.fill_seed
    }

    /// Marks member `i` failed and destroys its contents, so that any
    /// data later "recovered" from it can only come from real
    /// reconstruction. Idempotent.
    pub fn fail_member(&mut self, i: usize) -> Result<(), FleetError> {
        if i >= self.members.len() {
            return Err(FleetError::Unrecoverable { member: i });
        }
        if self.members[i].healthy {
            self.members[i].healthy = false;
            self.members[i].store.scramble(i as u64);
        }
        Ok(())
    }

    fn check_range(&self, lbn: u64, len: u64) -> Result<(), FleetError> {
        if len == 0 || lbn + len > self.layout.capacity() {
            return Err(FleetError::OutOfRange {
                lbn,
                len,
                capacity: self.layout.capacity(),
            });
        }
        Ok(())
    }

    /// Reconstructs chunk contents + completion time for a RAID-5 chunk
    /// whose owner cannot serve: timed reads of every surviving member's
    /// column, XOR of their stored words.
    fn raid5_reconstruct_read(
        &mut self,
        chunk: &Chunk,
        at: SimTime,
        data: &mut Vec<u64>,
        sp: &mut Option<AccessSpans>,
    ) -> Result<(SimTime, u32), FleetError> {
        let info = self.layout.rounds()[chunk.round].clone();
        let off = chunk.pstart - info.pstarts[chunk.member];
        let mut done = at;
        let mut cmds = 0;
        let base = data.len();
        data.resize(base + chunk.len as usize, 0);
        let rid = sp.as_mut().map(AccessSpans::begin_reconstruct);
        for m in 0..self.members.len() {
            if m == chunk.member {
                continue;
            }
            if !self.members[m].healthy {
                return Err(FleetError::Unrecoverable {
                    member: chunk.member,
                });
            }
            let pstart = info.pstarts[m] + off;
            let req = Request::read(pstart, chunk.len);
            let c =
                issue_member(&mut self.members[m], m, req, at, sp, "survivor").map_err(|_| {
                    FleetError::Unrecoverable {
                        member: chunk.member,
                    }
                })?;
            cmds += 1;
            done = done.max(c.completion);
            for o in 0..chunk.len as usize {
                data[base + o] ^= self.members[m].store.word(pstart + o as u64);
            }
        }
        if let (Some(s), Some(id)) = (sp.as_mut(), rid) {
            s.end_reconstruct(id, chunk, at, done);
            s.note("reconstruct_read");
        }
        self.stats.member_cmds += cmds as u64;
        self.stats.degraded_reads += 1;
        self.stats.reconstructed_sectors += chunk.len;
        Ok((done, cmds))
    }

    /// Reads `len` sectors at logical `lbn`, issued at `at`. Returns the
    /// host-visible completion and the data words, reconstructing from
    /// mirror or parity wherever a member is failed or persistently
    /// faulting.
    pub fn read(
        &mut self,
        lbn: u64,
        len: u64,
        at: SimTime,
    ) -> Result<(VolumeCompletion, Vec<u64>), FleetError> {
        self.check_range(lbn, len)?;
        let chunks = self.layout.split(lbn, len)?;
        let mut sp = self.begin_access();
        let mut done = at;
        let mut cmds = 0u32;
        let mut reconstructed = false;
        let mut data = Vec::with_capacity(len as usize);
        for chunk in &chunks {
            match self.layout.kind() {
                VolumeKind::Striped => {
                    let m = chunk.member;
                    if !self.members[m].healthy {
                        return Err(FleetError::Unrecoverable { member: m });
                    }
                    let req = Request::read(chunk.pstart, chunk.len);
                    let c = issue_member(&mut self.members[m], m, req, at, &mut sp, "data")
                        .map_err(|_| FleetError::Unrecoverable { member: m })?;
                    self.stats.member_cmds += 1;
                    cmds += 1;
                    done = done.max(c.completion);
                    self.members[m]
                        .store
                        .read_into(chunk.pstart, chunk.len, &mut data);
                }
                VolumeKind::Mirrored => {
                    let n = self.members.len();
                    let mut served = false;
                    for k in 0..n {
                        let m = (chunk.member + k) % n;
                        if !self.members[m].healthy {
                            continue;
                        }
                        let req = Request::read(chunk.pstart, chunk.len);
                        let role = if k == 0 { "data" } else { "mirror" };
                        if let Ok(c) = issue_member(&mut self.members[m], m, req, at, &mut sp, role)
                        {
                            self.stats.member_cmds += 1;
                            cmds += 1;
                            done = done.max(c.completion);
                            self.members[m]
                                .store
                                .read_into(chunk.pstart, chunk.len, &mut data);
                            if k > 0 {
                                self.stats.degraded_reads += 1;
                                self.stats.reconstructed_sectors += chunk.len;
                                reconstructed = true;
                                if let Some(s) = sp.as_mut() {
                                    s.note("degraded_mirror");
                                }
                            }
                            served = true;
                            break;
                        }
                    }
                    if !served {
                        return Err(FleetError::Unrecoverable {
                            member: chunk.member,
                        });
                    }
                }
                VolumeKind::Raid5 => {
                    let m = chunk.member;
                    let healthy_ok = if self.members[m].healthy {
                        let req = Request::read(chunk.pstart, chunk.len);
                        match issue_member(&mut self.members[m], m, req, at, &mut sp, "data") {
                            Ok(c) => {
                                self.stats.member_cmds += 1;
                                cmds += 1;
                                done = done.max(c.completion);
                                self.members[m]
                                    .store
                                    .read_into(chunk.pstart, chunk.len, &mut data);
                                true
                            }
                            Err(()) => false,
                        }
                    } else {
                        false
                    };
                    if !healthy_ok {
                        let (t, c) = self.raid5_reconstruct_read(chunk, at, &mut data, &mut sp)?;
                        done = done.max(t);
                        cmds += c;
                        reconstructed = true;
                    }
                }
            }
        }
        let request = Request::read(lbn, len);
        if let Some(s) = sp {
            s.finish(request, at, done);
        }
        Ok((
            VolumeCompletion {
                request,
                issue: at,
                completion: done,
                member_cmds: cmds,
                reconstructed,
            },
            data,
        ))
    }

    /// Writes `data` at logical `lbn`, issued at `at`, maintaining the
    /// redundancy invariant: mirrors write every healthy copy; healthy
    /// RAID-5 does the classic read-modify-write of data + parity;
    /// degraded RAID-5 reconstruct-writes through parity.
    pub fn write(
        &mut self,
        lbn: u64,
        data: &[u64],
        at: SimTime,
    ) -> Result<VolumeCompletion, FleetError> {
        let len = data.len() as u64;
        self.check_range(lbn, len)?;
        let chunks = self.layout.split(lbn, len)?;
        let mut sp = self.begin_access();
        let mut done = at;
        let mut cmds = 0u32;
        let mut reconstructed = false;
        for chunk in &chunks {
            let words =
                &data[(chunk.lstart - lbn) as usize..(chunk.lstart - lbn + chunk.len) as usize];
            let (t, c, degraded) = self.write_chunk(chunk, words, at, &mut sp)?;
            done = done.max(t);
            cmds += c;
            reconstructed |= degraded;
        }
        let request = Request::write(lbn, len);
        if let Some(s) = sp {
            s.finish(request, at, done);
        }
        Ok(VolumeCompletion {
            request,
            issue: at,
            completion: done,
            member_cmds: cmds,
            reconstructed,
        })
    }

    fn write_chunk(
        &mut self,
        chunk: &Chunk,
        words: &[u64],
        at: SimTime,
        sp: &mut Option<AccessSpans>,
    ) -> Result<(SimTime, u32, bool), FleetError> {
        match self.layout.kind() {
            VolumeKind::Striped => {
                let m = chunk.member;
                if !self.members[m].healthy {
                    return Err(FleetError::Unrecoverable { member: m });
                }
                let req = Request::write(chunk.pstart, chunk.len);
                let c =
                    issue_member(&mut self.members[m], m, req, at, sp, "data").map_err(|_| {
                        FleetError::RetriesExhausted {
                            member: m,
                            attempts: FAULT_RETRIES,
                        }
                    })?;
                self.members[m].note_words(words);
                self.stats.member_cmds += 1;
                self.members[m].store.write(chunk.pstart, words);
                Ok((c.completion, 1, false))
            }
            VolumeKind::Mirrored => {
                // Two-phase: issue every copy's command first, commit the
                // data plane only once all of them succeeded — a
                // retry-exhausted copy must never leave a half-updated
                // stripe visible to later reads.
                let mut done = at;
                let mut wrote = Vec::new();
                for m in 0..self.members.len() {
                    if !self.members[m].healthy {
                        continue;
                    }
                    let req = Request::write(chunk.pstart, chunk.len);
                    let c = issue_member(&mut self.members[m], m, req, at, sp, "copy").map_err(
                        |_| FleetError::RetriesExhausted {
                            member: m,
                            attempts: FAULT_RETRIES,
                        },
                    )?;
                    self.members[m].note_words(words);
                    done = done.max(c.completion);
                    wrote.push(m);
                }
                if wrote.is_empty() {
                    return Err(FleetError::Unrecoverable {
                        member: chunk.member,
                    });
                }
                let cmds = wrote.len() as u32;
                self.stats.member_cmds += u64::from(cmds);
                for m in wrote {
                    self.members[m].store.write(chunk.pstart, words);
                }
                let degraded = self.is_degraded();
                if degraded {
                    if let Some(s) = sp.as_mut() {
                        s.note("degraded_mirror");
                    }
                }
                Ok((done, cmds, degraded))
            }
            VolumeKind::Raid5 => self.raid5_write_chunk(chunk, words, at, sp),
        }
    }

    fn raid5_write_chunk(
        &mut self,
        chunk: &Chunk,
        words: &[u64],
        at: SimTime,
        sp: &mut Option<AccessSpans>,
    ) -> Result<(SimTime, u32, bool), FleetError> {
        let info = self.layout.rounds()[chunk.round].clone();
        let owner = chunk.member;
        let parity = info.parity;
        let off = chunk.pstart - info.pstarts[owner];
        let ppstart = info.pstarts[parity] + off;
        let owner_ok = self.members[owner].healthy;
        let parity_ok = self.members[parity].healthy;
        match (owner_ok, parity_ok) {
            (true, true) => {
                // Read-modify-write: read old data and old parity, then
                // write both with the XOR-updated parity.
                if let Some(s) = sp.as_mut() {
                    s.note("rmw");
                }
                let r1 = issue_member(
                    &mut self.members[owner],
                    owner,
                    Request::read(chunk.pstart, chunk.len),
                    at,
                    sp,
                    "data",
                )
                .map_err(|_| FleetError::Unrecoverable { member: owner })?;
                let r2 = issue_member(
                    &mut self.members[parity],
                    parity,
                    Request::read(ppstart, chunk.len),
                    at,
                    sp,
                    "parity",
                )
                .map_err(|_| FleetError::Unrecoverable { member: parity })?;
                let reads_done = r1.completion.max(r2.completion);
                let mut new_parity = Vec::with_capacity(words.len());
                for (o, &w) in words.iter().enumerate() {
                    let old = self.members[owner].store.word(chunk.pstart + o as u64);
                    let oldp = self.members[parity].store.word(ppstart + o as u64);
                    new_parity.push(oldp ^ old ^ w);
                }
                let w1 = issue_member(
                    &mut self.members[owner],
                    owner,
                    Request::write(chunk.pstart, chunk.len),
                    reads_done,
                    sp,
                    "data",
                )
                .map_err(|_| FleetError::RetriesExhausted {
                    member: owner,
                    attempts: FAULT_RETRIES,
                })?;
                self.members[owner].note_words(words);
                let w2 = issue_member(
                    &mut self.members[parity],
                    parity,
                    Request::write(ppstart, chunk.len),
                    reads_done,
                    sp,
                    "parity",
                )
                .map_err(|_| FleetError::RetriesExhausted {
                    member: parity,
                    attempts: FAULT_RETRIES,
                })?;
                self.members[parity].note_words(&new_parity);
                self.members[owner].store.write(chunk.pstart, words);
                self.members[parity].store.write(ppstart, &new_parity);
                self.stats.member_cmds += 4;
                Ok((w1.completion.max(w2.completion), 4, false))
            }
            (false, true) => {
                // Reconstruct-write: the new parity is the XOR of the new
                // data with every *surviving* data column; the dead
                // member's platters stay untouched.
                if let Some(s) = sp.as_mut() {
                    s.note("reconstruct_write");
                }
                let mut new_parity = words.to_vec();
                let mut reads_done = at;
                let mut cmds = 0;
                for m in 0..self.members.len() {
                    if m == owner || m == parity {
                        continue;
                    }
                    if !self.members[m].healthy {
                        return Err(FleetError::Unrecoverable { member: owner });
                    }
                    let pstart = info.pstarts[m] + off;
                    let c = issue_member(
                        &mut self.members[m],
                        m,
                        Request::read(pstart, chunk.len),
                        at,
                        sp,
                        "survivor",
                    )
                    .map_err(|_| FleetError::Unrecoverable { member: owner })?;
                    cmds += 1;
                    reads_done = reads_done.max(c.completion);
                    for (o, p) in new_parity.iter_mut().enumerate() {
                        *p ^= self.members[m].store.word(pstart + o as u64);
                    }
                }
                let w = issue_member(
                    &mut self.members[parity],
                    parity,
                    Request::write(ppstart, chunk.len),
                    reads_done,
                    sp,
                    "parity",
                )
                .map_err(|_| FleetError::RetriesExhausted {
                    member: parity,
                    attempts: FAULT_RETRIES,
                })?;
                self.members[parity].note_words(&new_parity);
                cmds += 1;
                self.members[parity].store.write(ppstart, &new_parity);
                self.stats.member_cmds += cmds as u64;
                self.stats.degraded_writes += 1;
                Ok((w.completion, cmds, true))
            }
            (true, false) => {
                // Parity member is dead: write the data, skip parity.
                if let Some(s) = sp.as_mut() {
                    s.note("parity_skip");
                }
                let c = issue_member(
                    &mut self.members[owner],
                    owner,
                    Request::write(chunk.pstart, chunk.len),
                    at,
                    sp,
                    "data",
                )
                .map_err(|_| FleetError::RetriesExhausted {
                    member: owner,
                    attempts: FAULT_RETRIES,
                })?;
                self.members[owner].note_words(words);
                self.members[owner].store.write(chunk.pstart, words);
                self.stats.member_cmds += 1;
                self.stats.degraded_writes += 1;
                Ok((c.completion, 1, true))
            }
            (false, false) => Err(FleetError::Unrecoverable { member: owner }),
        }
    }

    /// Services one logical request as the server sees it: reads return
    /// timing only (contents are checked elsewhere), writes synthesize
    /// deterministic payloads from an internal sequence number.
    pub fn service(&mut self, req: Request, at: SimTime) -> Result<VolumeCompletion, FleetError> {
        match req.op {
            Op::Read => self.read(req.lbn, req.len, at).map(|(c, _)| c),
            Op::Write => {
                self.write_seq += 1;
                let salt = self.fill_seed ^ self.write_seq.rotate_left(17);
                let words: Vec<u64> = (0..req.len)
                    .map(|o| pattern_word(salt, req.lbn + o))
                    .collect();
                self.write(req.lbn, &words, at)
            }
        }
    }

    /// Exports the volume's counters plus each member's fault-layer
    /// statistics into `reg` under `fleet.*`.
    pub fn export_metrics(&self, reg: &Registry) {
        reg.add("fleet.members", self.members.len() as u64);
        reg.add("fleet.failed_members", self.failed_members().len() as u64);
        reg.add("fleet.member_cmds", self.stats.member_cmds);
        reg.add("fleet.degraded_reads", self.stats.degraded_reads);
        reg.add("fleet.degraded_writes", self.stats.degraded_writes);
        reg.add(
            "fleet.reconstructed_sectors",
            self.stats.reconstructed_sectors,
        );
        for (i, m) in self.members.iter().enumerate() {
            for (name, value) in m.disk.fault_stats().pairs() {
                reg.add(&format!("fleet.m{i}.{name}"), value);
            }
        }
    }
}

impl server::Backend for Volume {
    fn capacity_lbns(&self) -> u64 {
        self.layout.capacity()
    }

    /// # Panics
    ///
    /// Panics if the volume cannot serve a request — a failed RAID-0
    /// member or a double failure. Callers gate degraded service on
    /// [`Volume::can_serve`].
    fn service_batch_into(&mut self, batch: &[(Request, SimTime)], out: &mut Vec<Completion>) {
        for &(req, at) in batch {
            let done = self
                .service(req, at)
                .unwrap_or_else(|e| panic!("volume cannot serve {req:?}: {e}"));
            out.push(done.into_completion());
        }
    }

    /// Per-member mechanical occupancy, for windowed busy fractions.
    fn member_busy_ns(&self) -> Vec<u64> {
        self.members.iter().map(|m| m.disk.busy_ns()).collect()
    }
}
