//! Background repair: rebuilding a failed member and scrubbing
//! redundancy.
//!
//! Both run as sequential background scans on the simulated clock —
//! each step's member commands issue when the previous step's finished —
//! and report progress through the [`traxtent::obs`] registry so the
//! same observability surface that watches the server watches repair.

use crate::layout::VolumeKind;
use crate::volume::Volume;
use crate::FleetError;
use sim_disk::request::Request;
use sim_disk::SimTime;
use traxtent::obs::Registry;

/// What a completed [`Volume::rebuild_member`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildReport {
    /// The member that was rebuilt.
    pub member: usize,
    /// Stripe units reconstructed onto it.
    pub units: u64,
    /// Sectors written to it.
    pub sectors: u64,
    /// When the first reconstruction read was issued.
    pub started: SimTime,
    /// When the last rebuild write completed.
    pub finished: SimTime,
}

/// What a [`Volume::scrub_repair`] pass fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    /// Sectors whose redundancy was cross-checked.
    pub checked_sectors: u64,
    /// Sectors found violating the redundancy invariant (divergent
    /// mirror copies, parity not matching its data columns).
    pub mismatched_sectors: u64,
    /// Sectors rewritten to restore the invariant.
    pub repaired_sectors: u64,
    /// When the first verify read was issued.
    pub started: SimTime,
    /// When the last repair write completed.
    pub finished: SimTime,
}

/// What a [`Volume::scrub`] pass verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Members in the order the scrub prioritized them (most suspect
    /// first, by fault-layer statistics).
    pub order: Vec<usize>,
    /// Sectors whose redundancy was checked.
    pub checked_sectors: u64,
    /// Sectors whose mirror copies or parity disagreed.
    pub mismatches: u64,
}

/// A member's scrub priority: drives that have been throwing media
/// errors, growing defects, or surfacing transient faults get verified
/// first.
fn suspicion(v: &Volume, m: usize) -> u64 {
    let s = v.members[m].disk.fault_stats();
    s.media_errors + 2 * s.grown_defects + 2 * s.grown_defects_unspared + s.transient_surfaced
}

impl Volume {
    /// Reconstructs the failed member `i` in place: a sequential
    /// background scan that, per stripe unit, reads the surviving
    /// members' columns (timed member commands), recomputes the lost
    /// contents (XOR for RAID-5, a copy for mirrors), and writes them
    /// back to member `i`. On return the member is healthy again and its
    /// store holds bit-exact reconstructed data.
    ///
    /// Progress and totals are exported into `reg` as
    /// `fleet.rebuild.units`, `fleet.rebuild.sectors`,
    /// `fleet.rebuild.progress_pct`, and `fleet.rebuild.completed`.
    ///
    /// Fails with [`FleetError::NotFailed`] if the member is healthy,
    /// [`FleetError::DegradedPeer`] if any *other* member is down, and
    /// [`FleetError::Unrecoverable`] on a RAID-0 volume.
    pub fn rebuild_member(
        &mut self,
        i: usize,
        reg: &Registry,
        at: SimTime,
    ) -> Result<RebuildReport, FleetError> {
        if i >= self.members.len() || !self.layout.kind().redundant() {
            return Err(FleetError::Unrecoverable { member: i });
        }
        if self.members[i].healthy {
            return Err(FleetError::NotFailed { member: i });
        }
        // RAID-5 reconstruction needs every surviving column; a mirror
        // only needs one healthy copy to read from.
        if self.layout.kind() == VolumeKind::Raid5 {
            if let Some(peer) =
                (0..self.members.len()).find(|&m| m != i && !self.members[m].healthy)
            {
                return Err(FleetError::DegradedPeer { member: peer });
            }
        }

        let mut t = at;
        let mut units = 0u64;
        let mut sectors = 0u64;
        match self.layout.kind() {
            VolumeKind::Striped => unreachable!("checked redundant above"),
            VolumeKind::Mirrored => {
                let source = (0..self.members.len())
                    .find(|&m| m != i && self.members[m].healthy)
                    .ok_or(FleetError::Unrecoverable { member: i })?;
                let steps: Vec<(u64, u64)> = self
                    .layout
                    .units()
                    .iter()
                    .map(|u| (u.pstart, u.len))
                    .collect();
                let total = steps.len() as u64;
                for (pstart, len) in steps {
                    let r = self.members[source]
                        .issue(Request::read(pstart, len), t)
                        .map_err(|_| FleetError::Unrecoverable { member: i })?;
                    let w = self.members[i]
                        .issue(Request::write(pstart, len), r.completion)
                        .map_err(|_| FleetError::Unrecoverable { member: i })?;
                    let mut words = Vec::with_capacity(len as usize);
                    self.members[source]
                        .store
                        .read_into(pstart, len, &mut words);
                    self.members[i].note_words(&words);
                    self.members[i].store.write(pstart, &words);
                    t = w.completion;
                    units += 1;
                    sectors += len;
                    self.stats.member_cmds += 2;
                    reg.set_gauge("fleet.rebuild.progress_pct", units * 100 / total);
                }
            }
            VolumeKind::Raid5 => {
                let rounds = self.layout.rounds().to_vec();
                let total = rounds.len() as u64;
                for info in &rounds {
                    let dst = info.pstarts[i];
                    let mut words = vec![0u64; info.len as usize];
                    let mut reads_done = t;
                    for m in 0..self.members.len() {
                        if m == i {
                            continue;
                        }
                        let src = info.pstarts[m];
                        let c = self.members[m]
                            .issue(Request::read(src, info.len), t)
                            .map_err(|_| FleetError::Unrecoverable { member: i })?;
                        reads_done = reads_done.max(c.completion);
                        for (o, w) in words.iter_mut().enumerate() {
                            *w ^= self.members[m].store.word(src + o as u64);
                        }
                        self.stats.member_cmds += 1;
                    }
                    let w = self.members[i]
                        .issue(Request::write(dst, info.len), reads_done)
                        .map_err(|_| FleetError::Unrecoverable { member: i })?;
                    self.members[i].note_words(&words);
                    self.members[i].store.write(dst, &words);
                    t = w.completion;
                    units += 1;
                    sectors += info.len;
                    self.stats.member_cmds += 1;
                    reg.set_gauge("fleet.rebuild.progress_pct", units * 100 / total);
                }
            }
        }
        self.members[i].healthy = true;
        self.stats.reconstructed_sectors += sectors;
        reg.add("fleet.rebuild.units", units);
        reg.add("fleet.rebuild.sectors", sectors);
        reg.add("fleet.rebuild.completed", 1);
        Ok(RebuildReport {
            member: i,
            units,
            sectors,
            started: at,
            finished: t,
        })
    }

    /// Verifies the redundancy invariant across the data plane: parity
    /// equals the XOR of its data columns (RAID-5), every healthy mirror
    /// copy agrees (RAID-1). Members are prioritized by their fault-layer
    /// statistics — drives that have been throwing errors get their
    /// stripes checked first — which is the scheduling signal a
    /// background scrubber keys on. RAID-0 has nothing to cross-check.
    ///
    /// Totals land in `reg` as `fleet.scrub.passes`,
    /// `fleet.scrub.checked_sectors`, and `fleet.scrub.mismatches`.
    pub fn scrub(&mut self, reg: &Registry) -> ScrubReport {
        let mut order: Vec<usize> = (0..self.members.len()).collect();
        order.sort_by_key(|&m| std::cmp::Reverse(suspicion(self, m)));
        let mut checked = 0u64;
        let mut mismatches = 0u64;
        match self.layout.kind() {
            VolumeKind::Striped => {}
            VolumeKind::Mirrored => {
                // Walk copies most-suspect-first against a healthy
                // reference copy.
                if let Some(&reference) = order.iter().rev().find(|&&m| self.members[m].healthy) {
                    for &m in &order {
                        if m == reference || !self.members[m].healthy {
                            continue;
                        }
                        for lbn in 0..self.layout.capacity() {
                            checked += 1;
                            if self.members[m].store.word(lbn)
                                != self.members[reference].store.word(lbn)
                            {
                                mismatches += 1;
                            }
                        }
                    }
                }
            }
            VolumeKind::Raid5 => {
                if self.failed_members().is_empty() {
                    // Rounds whose parity lives on the most suspect
                    // member are verified first.
                    let mut rounds: Vec<usize> = (0..self.layout.rounds().len()).collect();
                    let rank: Vec<usize> = {
                        let mut rank = vec![0; self.members.len()];
                        for (pos, &m) in order.iter().enumerate() {
                            rank[m] = pos;
                        }
                        rank
                    };
                    rounds.sort_by_key(|&r| rank[self.layout.rounds()[r].parity]);
                    for r in rounds {
                        let info = self.layout.rounds()[r].clone();
                        for o in 0..info.len {
                            let mut x = 0u64;
                            for m in 0..self.members.len() {
                                x ^= self.members[m].store.word(info.pstarts[m] + o);
                            }
                            checked += 1;
                            if x != 0 {
                                mismatches += 1;
                            }
                        }
                    }
                }
            }
        }
        reg.add("fleet.scrub.passes", 1);
        reg.add("fleet.scrub.checked_sectors", checked);
        reg.add("fleet.scrub.mismatches", mismatches);
        ScrubReport {
            order,
            checked_sectors: checked,
            mismatches,
        }
    }

    /// The write-hole closer: a timed background scan that verifies the
    /// redundancy invariant with real member reads and *repairs* every
    /// violation it finds — the pass a RAID controller runs after a
    /// power cut, when a logical write may have updated some copies (or
    /// the data column) without the others (or the parity column).
    ///
    /// * **RAID-5** — per stripe round, read every column and XOR them;
    ///   a nonzero syndrome means the parity no longer covers its data,
    ///   so the parity unit is recomputed from the data columns and
    ///   rewritten. Data columns are never touched: whichever of the old
    ///   and new data survived the cut is durable, the parity must
    ///   follow it.
    /// * **RAID-1** — copies are compared against the lowest-index
    ///   healthy member and divergent copies are rewritten from it (the
    ///   classic md-style resync: one copy is designated authoritative;
    ///   both sides of a torn write are durable states, the repair just
    ///   has to pick one deterministically).
    /// * **RAID-0** — nothing to cross-check.
    ///
    /// Totals land in `reg` as `fleet.scrub.repair_passes`,
    /// `fleet.scrub.mismatched_sectors`, and
    /// `fleet.scrub.repaired_sectors`.
    ///
    /// # Errors
    ///
    /// [`FleetError::DegradedPeer`] if any member is failed (rebuild it
    /// first — repair needs every column), and
    /// [`FleetError::RetriesExhausted`] if a member will not take a
    /// verify read or repair write within the retry budget.
    pub fn scrub_repair(
        &mut self,
        reg: &Registry,
        at: SimTime,
    ) -> Result<RepairReport, FleetError> {
        if let Some(peer) = self.failed_members().first().copied() {
            return Err(FleetError::DegradedPeer { member: peer });
        }
        let exhausted = |member: usize| FleetError::RetriesExhausted {
            member,
            attempts: crate::volume::FAULT_RETRIES,
        };
        let mut t = at;
        let mut checked = 0u64;
        let mut mismatched = 0u64;
        let mut repaired = 0u64;
        match self.layout.kind() {
            VolumeKind::Striped => {}
            VolumeKind::Mirrored => {
                let reference = 0;
                let steps: Vec<(u64, u64)> = self
                    .layout
                    .units()
                    .iter()
                    .map(|u| (u.pstart, u.len))
                    .collect();
                for (pstart, len) in steps {
                    let r = self.members[reference]
                        .issue(Request::read(pstart, len), t)
                        .map_err(|_| exhausted(reference))?;
                    t = t.max(r.completion);
                    self.stats.member_cmds += 1;
                    let mut words = Vec::with_capacity(len as usize);
                    self.members[reference]
                        .store
                        .read_into(pstart, len, &mut words);
                    for m in 1..self.members.len() {
                        let r = self.members[m]
                            .issue(Request::read(pstart, len), t)
                            .map_err(|_| exhausted(m))?;
                        t = t.max(r.completion);
                        self.stats.member_cmds += 1;
                        checked += len;
                        let diverged = (0..len)
                            .filter(|&o| {
                                self.members[m].store.word(pstart + o) != words[o as usize]
                            })
                            .count() as u64;
                        if diverged == 0 {
                            continue;
                        }
                        mismatched += diverged;
                        let w = self.members[m]
                            .issue(Request::write(pstart, len), t)
                            .map_err(|_| exhausted(m))?;
                        self.members[m].note_words(&words);
                        self.members[m].store.write(pstart, &words);
                        t = t.max(w.completion);
                        self.stats.member_cmds += 1;
                        repaired += len;
                    }
                }
            }
            VolumeKind::Raid5 => {
                let rounds = self.layout.rounds().to_vec();
                for info in &rounds {
                    let mut syndrome = vec![0u64; info.len as usize];
                    let mut reads_done = t;
                    for m in 0..self.members.len() {
                        let src = info.pstarts[m];
                        let c = self.members[m]
                            .issue(Request::read(src, info.len), t)
                            .map_err(|_| exhausted(m))?;
                        reads_done = reads_done.max(c.completion);
                        self.stats.member_cmds += 1;
                        for (o, w) in syndrome.iter_mut().enumerate() {
                            *w ^= self.members[m].store.word(src + o as u64);
                        }
                    }
                    t = reads_done;
                    checked += info.len;
                    let bad = syndrome.iter().filter(|&&w| w != 0).count() as u64;
                    if bad == 0 {
                        continue;
                    }
                    mismatched += bad;
                    // Recompute the parity column from the data columns
                    // (equivalently: old parity XOR syndrome).
                    let p = info.parity;
                    let pdst = info.pstarts[p];
                    let words: Vec<u64> = (0..info.len as usize)
                        .map(|o| self.members[p].store.word(pdst + o as u64) ^ syndrome[o])
                        .collect();
                    let w = self.members[p]
                        .issue(Request::write(pdst, info.len), t)
                        .map_err(|_| exhausted(p))?;
                    self.members[p].note_words(&words);
                    self.members[p].store.write(pdst, &words);
                    t = t.max(w.completion);
                    self.stats.member_cmds += 1;
                    repaired += info.len;
                }
            }
        }
        reg.add("fleet.scrub.repair_passes", 1);
        reg.add("fleet.scrub.mismatched_sectors", mismatched);
        reg.add("fleet.scrub.repaired_sectors", repaired);
        Ok(RepairReport {
            checked_sectors: checked,
            mismatched_sectors: mismatched,
            repaired_sectors: repaired,
            started: at,
            finished: t,
        })
    }
}
