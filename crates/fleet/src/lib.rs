//! Multi-disk volumes with track-aligned stripe units.
//!
//! Everything below this crate simulates one drive at a time. This layer
//! composes heterogeneous [`sim_disk`] drives into first-class *volumes* —
//! [`Volume::striped`] (RAID-0), [`Volume::mirrored`] (RAID-1), and
//! [`Volume::raid5`] (rotating parity) — and lifts the paper's traxtent
//! idea one level up: **stripe units snap to each member drive's physical
//! track boundaries**, using the per-member
//! [`traxtent::ConfidentBoundaries`] that dixtrac extraction produces.
//!
//! * [`stripe_units`] carves one member's boundary map into stripe units:
//!   trusted tracks become whole-track units; runs of low-confidence
//!   tracks degrade to fixed-size units (the same graceful degradation
//!   the allocator and the scheduler apply, now at placement granularity).
//! * [`VolumeLayout`] interleaves the members' unit lists into one
//!   logical LBN space (round-robin rounds; RAID-5 rotates a parity unit
//!   through the members) and publishes a **volume-wide boundary map**
//!   ([`VolumeLayout::logical_boundaries`]) whose "tracks" are the stripe
//!   units — so the PR 7 server's traxtent-aware scheduler batches
//!   against *volume* geometry exactly the way it batches against a
//!   single drive's.
//! * [`Volume`] owns the member drives plus a word-per-sector data plane,
//!   so parity is real XOR arithmetic, degraded-mode reads reconstruct
//!   bit-exact data from mirror or parity when a member is failed (or
//!   its fault layer surfaces a [`sim_disk::fault::CommandFault`]), and
//!   rebuild/scrub verifiably restore redundancy
//!   ([`Volume::rebuild_member`], [`Volume::scrub`]) while reporting
//!   progress through the [`traxtent::obs`] registry.
//! * [`Volume`] implements [`server::Backend`], so the open-loop server
//!   loop ([`server::serve`]) runs unchanged on top of a fleet.
//!
//! Determinism: the volume never spawns threads, member command issue
//! times are clamped per member (FCFS at each drive), and the data plane
//! is pure integer arithmetic — a volume run is bit-identical on any
//! host at any thread count, like every layer below it.
//!
//! # Example
//!
//! ```
//! use fleet::{member_boundaries, StripePolicy, Volume};
//! use sim_disk::disk::Disk;
//! use sim_disk::models::small_test_disk;
//! use sim_disk::SimTime;
//!
//! let members: Vec<_> = (0..3)
//!     .map(|_| {
//!         let d = Disk::new(small_test_disk());
//!         let b = member_boundaries(&d);
//!         (d, b)
//!     })
//!     .collect();
//! let mut v = Volume::raid5(members, StripePolicy::aligned()).unwrap();
//! v.format(42);
//!
//! // A healthy read and the same read reconstructed from parity after a
//! // member failure return bit-identical data.
//! let healthy = v.read(1000, 64, SimTime::ZERO).unwrap().1;
//! v.fail_member(0).unwrap();
//! let degraded = v.read(1000, 64, SimTime::ZERO).unwrap().1;
//! assert_eq!(healthy, degraded);
//! ```

#![warn(missing_docs)]

pub mod crash;
pub mod data;
pub mod layout;
pub mod rebuild;
pub mod volume;

pub use crash::PowerCutReport;
pub use data::{fill_stores, pattern_word, reconstruct_unit, SectorStore};
pub use layout::{
    stripe_units, Chunk, LogicalUnit, RoundInfo, StripePolicy, StripeUnit, VolumeKind, VolumeLayout,
};
pub use rebuild::{RebuildReport, RepairReport, ScrubReport};
pub use volume::{member_boundaries, Volume, VolumeCompletion, VolumeStats, FAULT_RETRIES};

use std::error::Error;
use std::fmt;

/// Why a fleet operation refused to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The volume kind needs more members than were supplied.
    TooFewMembers {
        /// The volume kind ("striped", "mirrored", "raid5").
        kind: &'static str,
        /// Members required.
        need: usize,
        /// Members supplied.
        got: usize,
    },
    /// A member's boundary map does not cover its drive's capacity.
    MemberMismatch {
        /// The offending member index.
        member: usize,
        /// Capacity the boundary map declares.
        boundaries: u64,
        /// Capacity the drive actually has.
        disk: u64,
    },
    /// The stripe policy is malformed (zero unit size, threshold out of
    /// `[0, 1]`).
    BadPolicy(&'static str),
    /// No complete stripe round fits the members' unit lists.
    NoRounds,
    /// The access runs past the volume's logical capacity.
    OutOfRange {
        /// First logical LBN of the access.
        lbn: u64,
        /// Sector count of the access.
        len: u64,
        /// Logical capacity of the volume.
        capacity: u64,
    },
    /// Data on the named member is unreachable and no redundancy can
    /// reconstruct it (a failed RAID-0 member, or a second failure in a
    /// RAID-5 stripe).
    Unrecoverable {
        /// The member whose data is lost.
        member: usize,
    },
    /// Rebuild was asked for a member that is not failed.
    NotFailed {
        /// The healthy member.
        member: usize,
    },
    /// Rebuild needs every *other* member healthy; the named peer is not.
    DegradedPeer {
        /// The unhealthy peer blocking the rebuild.
        member: usize,
    },
    /// A healthy member kept surfacing transient command faults until the
    /// volume's retry budget ran out. Write paths report this instead of
    /// committing a partial stripe.
    RetriesExhausted {
        /// The member that would not take the command.
        member: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::TooFewMembers { kind, need, got } => {
                write!(
                    f,
                    "a {kind} volume needs at least {need} members, got {got}"
                )
            }
            FleetError::MemberMismatch {
                member,
                boundaries,
                disk,
            } => write!(
                f,
                "member {member}: boundary map covers {boundaries} LBNs but the drive has {disk}"
            ),
            FleetError::BadPolicy(msg) => write!(f, "bad stripe policy: {msg}"),
            FleetError::NoRounds => write!(f, "no complete stripe round fits the members"),
            FleetError::OutOfRange { lbn, len, capacity } => {
                write!(
                    f,
                    "access [{lbn}, {}) exceeds capacity {capacity}",
                    lbn + len
                )
            }
            FleetError::Unrecoverable { member } => {
                write!(f, "data on failed member {member} cannot be reconstructed")
            }
            FleetError::NotFailed { member } => {
                write!(f, "member {member} is healthy; nothing to rebuild")
            }
            FleetError::DegradedPeer { member } => {
                write!(
                    f,
                    "rebuild needs every peer healthy; member {member} is not"
                )
            }
            FleetError::RetriesExhausted { member, attempts } => {
                write!(
                    f,
                    "member {member} kept faulting; gave up after {attempts} attempts"
                )
            }
        }
    }
}

impl Error for FleetError {}
