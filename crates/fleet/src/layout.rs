//! Stripe-unit carving and the volume-wide logical address map.
//!
//! This module is pure: it turns per-member boundary maps into a
//! [`VolumeLayout`] without touching any [`sim_disk::disk::Disk`], so the
//! mapping invariants (bijectivity, alignment) are property-testable on
//! random heterogeneous geometries.

use crate::FleetError;
use traxtent::boundaries::ConfidentBoundaries;

/// How stripe units are carved out of a member drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StripePolicy {
    /// Track-aligned stripe units: every track whose extraction confidence
    /// is at least `threshold` becomes one whole-track unit; contiguous
    /// runs of low-confidence tracks degrade to `fallback_sectors`-sized
    /// units. Aligned units never cross a trusted track boundary.
    Aligned {
        /// Minimum per-track confidence to trust a boundary.
        threshold: f64,
        /// Unit size (sectors) used inside low-confidence regions.
        fallback_sectors: u64,
    },
    /// Naive fixed-size stripe units of `sectors`, carved from LBN 0 with
    /// no regard for track boundaries — the baseline every striped-RAID
    /// implementation without drive knowledge uses.
    Fixed {
        /// Unit size in sectors.
        sectors: u64,
    },
}

impl StripePolicy {
    /// The default track-aligned policy: trust boundaries at confidence
    /// ≥ 0.9, degrade to 64-sector units elsewhere.
    pub fn aligned() -> Self {
        StripePolicy::Aligned {
            threshold: 0.9,
            fallback_sectors: 64,
        }
    }

    /// A fixed-size policy with `sectors`-sized units.
    pub fn fixed(sectors: u64) -> Self {
        StripePolicy::Fixed { sectors }
    }

    /// Short label for figure axes: `"aligned"` or `"fixed"`.
    pub fn label(&self) -> &'static str {
        match self {
            StripePolicy::Aligned { .. } => "aligned",
            StripePolicy::Fixed { .. } => "fixed",
        }
    }

    fn validate(&self) -> Result<(), FleetError> {
        match *self {
            StripePolicy::Aligned {
                threshold,
                fallback_sectors,
            } => {
                if !(0.0..=1.0).contains(&threshold) {
                    return Err(FleetError::BadPolicy("threshold must be in [0, 1]"));
                }
                if fallback_sectors == 0 {
                    return Err(FleetError::BadPolicy("fallback unit size must be nonzero"));
                }
                Ok(())
            }
            StripePolicy::Fixed { sectors } => {
                if sectors == 0 {
                    return Err(FleetError::BadPolicy("fixed unit size must be nonzero"));
                }
                Ok(())
            }
        }
    }
}

/// One stripe unit on one member: a contiguous physical extent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripeUnit {
    /// First physical LBN of the unit on its member.
    pub start: u64,
    /// Length in sectors (never zero).
    pub len: u64,
    /// Minimum extraction confidence over the tracks the unit touches.
    pub confidence: f64,
}

impl StripeUnit {
    /// One past the last physical LBN of the unit.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Carves one member's boundary map into stripe units under `policy`.
///
/// This is the alignment rule of the whole crate: under
/// [`StripePolicy::Aligned`], a unit either *is* a trusted track or lies
/// strictly inside a run of low-confidence tracks — it never straddles a
/// boundary the extractor is confident about, so a stripe-unit-sized
/// access costs no head switch on that member. [`StripePolicy::Fixed`]
/// ignores geometry entirely (the naive baseline).
///
/// ```
/// use fleet::{stripe_units, StripePolicy};
/// use traxtent::boundaries::ConfidentBoundaries;
///
/// // Two trusted 200/150-sector tracks, then an untrusted region.
/// let map = ConfidentBoundaries::from_unit_lengths([
///     (200, 1.0),
///     (150, 1.0),
///     (100, 0.3),
///     (100, 0.2),
/// ])
/// .unwrap();
///
/// let units = stripe_units(&map, &StripePolicy::aligned()).unwrap();
/// // Whole-track units for the trusted tracks...
/// assert_eq!((units[0].start, units[0].len), (0, 200));
/// assert_eq!((units[1].start, units[1].len), (200, 150));
/// // ...then 64-sector fallback units inside the 200-sector fuzzy run.
/// assert_eq!((units[2].start, units[2].len), (350, 64));
/// assert!(units.iter().all(|u| u.end() <= map.table().capacity()));
/// ```
pub fn stripe_units(
    map: &ConfidentBoundaries,
    policy: &StripePolicy,
) -> Result<Vec<StripeUnit>, FleetError> {
    policy.validate()?;
    let table = map.table();
    let mut units = Vec::new();
    match *policy {
        StripePolicy::Fixed { sectors } => {
            let mut at = 0;
            let capacity = table.capacity();
            while at < capacity {
                let len = sectors.min(capacity - at);
                // A fixed unit is still a contiguous physical extent, so
                // batching within it is safe; it just may straddle track
                // boundaries (that is the point of the baseline).
                units.push(StripeUnit {
                    start: at,
                    len,
                    confidence: 1.0,
                });
                at += len;
            }
        }
        StripePolicy::Aligned {
            threshold,
            fallback_sectors,
        } => {
            let mut fuzzy: Option<(u64, f64)> = None; // (region start, min confidence)
            let flush = |units: &mut Vec<StripeUnit>, fuzzy: &mut Option<(u64, f64)>, end: u64| {
                if let Some((start, confidence)) = fuzzy.take() {
                    let mut at = start;
                    while at < end {
                        let len = fallback_sectors.min(end - at);
                        units.push(StripeUnit {
                            start: at,
                            len,
                            confidence,
                        });
                        at += len;
                    }
                }
            };
            for i in 0..table.num_tracks() {
                let ext = table.track_extent(i);
                if map.is_confident(i, threshold) {
                    flush(&mut units, &mut fuzzy, ext.start);
                    units.push(StripeUnit {
                        start: ext.start,
                        len: ext.len,
                        confidence: map.track_confidence(i),
                    });
                } else {
                    let conf = map.track_confidence(i);
                    match &mut fuzzy {
                        Some((_, min_conf)) => *min_conf = min_conf.min(conf),
                        None => fuzzy = Some((ext.start, conf)),
                    }
                }
            }
            flush(&mut units, &mut fuzzy, table.capacity());
        }
    }
    Ok(units)
}

/// The volume kinds this crate lays out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeKind {
    /// RAID-0: units round-robin across members, no redundancy.
    Striped,
    /// RAID-1: every member holds a full copy; reads rotate across
    /// members, writes go everywhere.
    Mirrored,
    /// RAID-5: one unit per round holds XOR parity, rotating through the
    /// members so no single drive becomes the parity bottleneck.
    Raid5,
}

impl VolumeKind {
    /// Short label for figure axes: `"striped"`, `"mirrored"`, `"raid5"`.
    pub fn label(&self) -> &'static str {
        match self {
            VolumeKind::Striped => "striped",
            VolumeKind::Mirrored => "mirrored",
            VolumeKind::Raid5 => "raid5",
        }
    }

    /// True if the kind can survive (at least) one member failure.
    pub fn redundant(&self) -> bool {
        !matches!(self, VolumeKind::Striped)
    }
}

/// One logical stripe unit: a contiguous run of volume LBNs living on a
/// single member.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicalUnit {
    /// First logical LBN the unit serves.
    pub lstart: u64,
    /// Length in sectors.
    pub len: u64,
    /// Member that holds the data (for mirrors: the preferred read
    /// member; the data exists on every member).
    pub member: usize,
    /// First physical LBN on that member.
    pub pstart: u64,
    /// Stripe round the unit belongs to.
    pub round: usize,
    /// Confidence of the underlying stripe unit.
    pub confidence: f64,
}

/// Per-round RAID-5 geometry: where every member's round-`r` unit starts,
/// and which member holds the parity.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundInfo {
    /// Sectors of each member's unit that participate in the stripe (the
    /// minimum unit length across members this round).
    pub len: u64,
    /// Member holding the parity unit this round.
    pub parity: usize,
    /// Physical start of each member's round-`r` unit, indexed by member.
    pub pstarts: Vec<u64>,
}

/// One physical fragment of a logical access, produced by
/// [`VolumeLayout::split`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chunk {
    /// Index of the [`LogicalUnit`] the fragment falls in.
    pub unit: usize,
    /// Member that owns the fragment.
    pub member: usize,
    /// First physical LBN on the member.
    pub pstart: u64,
    /// First logical LBN of the fragment.
    pub lstart: u64,
    /// Length in sectors.
    pub len: u64,
    /// Stripe round of the owning unit.
    pub round: usize,
}

/// The complete logical↔physical map of a volume: member stripe-unit
/// lists interleaved into one logical LBN space.
#[derive(Debug, Clone)]
pub struct VolumeLayout {
    kind: VolumeKind,
    members: usize,
    units: Vec<LogicalUnit>,
    /// `units[i].lstart`, for `partition_point` lookup.
    lstarts: Vec<u64>,
    /// Logical-unit indices owned by each member, ascending in `pstart`.
    by_member: Vec<Vec<usize>>,
    capacity: u64,
    member_caps: Vec<u64>,
    /// RAID-5 only; empty otherwise.
    rounds: Vec<RoundInfo>,
    /// Member sectors that no logical LBN (and no parity) maps to.
    slack: u64,
}

impl VolumeLayout {
    /// Builds the layout for `kind` over the given per-member boundary
    /// maps. Pure — no drives involved; [`crate::Volume`] constructors
    /// call this after validating maps against real drive capacities.
    pub fn new(
        kind: VolumeKind,
        maps: &[ConfidentBoundaries],
        policy: &StripePolicy,
    ) -> Result<Self, FleetError> {
        let need = match kind {
            VolumeKind::Striped | VolumeKind::Mirrored => 2,
            VolumeKind::Raid5 => 3,
        };
        if maps.len() < need {
            return Err(FleetError::TooFewMembers {
                kind: kind.label(),
                need,
                got: maps.len(),
            });
        }
        let per_member: Vec<Vec<StripeUnit>> = maps
            .iter()
            .map(|m| stripe_units(m, policy))
            .collect::<Result<_, _>>()?;
        let member_caps: Vec<u64> = maps.iter().map(|m| m.table().capacity()).collect();
        let n = maps.len();

        let mut units = Vec::new();
        let mut rounds = Vec::new();
        let mut parity_sectors = 0u64;
        match kind {
            VolumeKind::Striped => {
                let nrounds = per_member.iter().map(Vec::len).min().unwrap_or(0);
                if nrounds == 0 {
                    return Err(FleetError::NoRounds);
                }
                let mut lbn = 0;
                for r in 0..nrounds {
                    for (m, mu) in per_member.iter().enumerate() {
                        let u = mu[r];
                        units.push(LogicalUnit {
                            lstart: lbn,
                            len: u.len,
                            member: m,
                            pstart: u.start,
                            round: r,
                            confidence: u.confidence,
                        });
                        lbn += u.len;
                    }
                }
            }
            VolumeKind::Mirrored => {
                // Logical space is member 0's carve, clipped to the
                // smallest member; logical == physical on every member.
                let clip = *member_caps.iter().min().expect("members checked nonempty");
                let mut lbn = 0;
                for (r, u) in per_member[0].iter().enumerate() {
                    if lbn >= clip {
                        break;
                    }
                    let len = u.len.min(clip - lbn);
                    units.push(LogicalUnit {
                        lstart: lbn,
                        len,
                        member: r % n,
                        pstart: lbn,
                        round: r,
                        confidence: u.confidence,
                    });
                    lbn += len;
                }
                if units.is_empty() {
                    return Err(FleetError::NoRounds);
                }
            }
            VolumeKind::Raid5 => {
                let nrounds = per_member.iter().map(Vec::len).min().unwrap_or(0);
                if nrounds == 0 {
                    return Err(FleetError::NoRounds);
                }
                let mut lbn = 0;
                for r in 0..nrounds {
                    let len = per_member
                        .iter()
                        .map(|mu| mu[r].len)
                        .min()
                        .expect("members checked nonempty");
                    // Rotate parity backwards from the last member, the
                    // classic left-symmetric placement.
                    let parity = n - 1 - (r % n);
                    let pstarts: Vec<u64> = per_member.iter().map(|mu| mu[r].start).collect();
                    for (m, mu) in per_member.iter().enumerate() {
                        if m == parity {
                            continue;
                        }
                        units.push(LogicalUnit {
                            lstart: lbn,
                            len,
                            member: m,
                            pstart: mu[r].start,
                            round: r,
                            confidence: mu[r].confidence,
                        });
                        lbn += len;
                    }
                    parity_sectors += len;
                    rounds.push(RoundInfo {
                        len,
                        parity,
                        pstarts,
                    });
                }
            }
        }

        let capacity = units.last().map(|u| u.lstart + u.len).unwrap_or(0);
        let lstarts = units.iter().map(|u| u.lstart).collect();
        let mut by_member = vec![Vec::new(); n];
        for (i, u) in units.iter().enumerate() {
            by_member[u.member].push(i);
        }
        let mapped: u64 = match kind {
            // Every mirror member carries a full copy of the logical space.
            VolumeKind::Mirrored => capacity * n as u64,
            _ => capacity + parity_sectors,
        };
        let slack = member_caps.iter().sum::<u64>() - mapped;
        Ok(VolumeLayout {
            kind,
            members: n,
            units,
            lstarts,
            by_member,
            capacity,
            member_caps,
            rounds,
            slack,
        })
    }

    /// The volume kind.
    pub fn kind(&self) -> VolumeKind {
        self.kind
    }

    /// Number of member drives.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Logical capacity in sectors.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Each member's physical capacity in sectors.
    pub fn member_caps(&self) -> &[u64] {
        &self.member_caps
    }

    /// Member sectors mapped to neither data nor parity (round slack and
    /// clipped tails).
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// The logical stripe units, ascending in `lstart` and contiguous
    /// from 0 to [`Self::capacity`].
    pub fn units(&self) -> &[LogicalUnit] {
        &self.units
    }

    /// RAID-5 per-round geometry; empty for other kinds.
    pub fn rounds(&self) -> &[RoundInfo] {
        &self.rounds
    }

    /// Indices into [`Self::units`] owned by `member`, ascending in
    /// physical start.
    pub fn member_units(&self, member: usize) -> &[usize] {
        &self.by_member[member]
    }

    /// Index of the logical unit containing `lbn`.
    ///
    /// # Panics
    ///
    /// Panics if `lbn` is at or past [`Self::capacity`].
    pub fn unit_index(&self, lbn: u64) -> usize {
        assert!(
            lbn < self.capacity,
            "lbn {lbn} >= capacity {}",
            self.capacity
        );
        self.lstarts.partition_point(|&s| s <= lbn) - 1
    }

    /// Maps a logical LBN to its unique `(member, physical LBN)` home.
    /// For mirrors this names the preferred read member; the same offset
    /// is valid on every member.
    pub fn to_physical(&self, lbn: u64) -> (usize, u64) {
        let u = &self.units[self.unit_index(lbn)];
        (u.member, u.pstart + (lbn - u.lstart))
    }

    /// Maps a member-physical LBN back to the logical LBN it serves, or
    /// `None` for parity and slack sectors. Inverse of
    /// [`Self::to_physical`] (for mirrors: of the identity map on any
    /// member).
    pub fn to_logical(&self, member: usize, pba: u64) -> Option<u64> {
        if self.kind == VolumeKind::Mirrored {
            return (member < self.members && pba < self.capacity).then_some(pba);
        }
        let list = &self.by_member[member];
        let i = list.partition_point(|&ui| self.units[ui].pstart <= pba);
        if i == 0 {
            return None;
        }
        let u = &self.units[list[i - 1]];
        (pba < u.pstart + u.len).then(|| u.lstart + (pba - u.pstart))
    }

    /// Splits a logical access into per-member physical fragments, in
    /// ascending logical order. Fragments never span units.
    pub fn split(&self, lbn: u64, len: u64) -> Result<Vec<Chunk>, FleetError> {
        if len == 0 || lbn + len > self.capacity {
            return Err(FleetError::OutOfRange {
                lbn,
                len,
                capacity: self.capacity,
            });
        }
        let mut chunks = Vec::new();
        let mut at = lbn;
        let end = lbn + len;
        let mut ui = self.unit_index(lbn);
        while at < end {
            let u = &self.units[ui];
            let take = (u.lstart + u.len - at).min(end - at);
            chunks.push(Chunk {
                unit: ui,
                member: u.member,
                pstart: u.pstart + (at - u.lstart),
                lstart: at,
                len: take,
                round: u.round,
            });
            at += take;
            ui += 1;
        }
        Ok(chunks)
    }

    /// The volume-wide boundary map: one "track" per logical stripe unit,
    /// carrying that unit's confidence. Feeding this to the PR 7 server's
    /// traxtent scheduler makes it batch whole stripe units — which, under
    /// [`StripePolicy::Aligned`], are whole member tracks.
    pub fn logical_boundaries(&self) -> ConfidentBoundaries {
        ConfidentBoundaries::from_unit_lengths(self.units.iter().map(|u| (u.len, u.confidence)))
            .expect("layout units are nonempty and nonzero-length")
    }
}
