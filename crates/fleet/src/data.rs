//! The volume data plane: one `u64` word per sector.
//!
//! Timing lives in the member [`sim_disk::disk::Disk`]s; *contents* live
//! here, so parity is real XOR arithmetic and "degraded reads return the
//! right bytes" is checkable bit-for-bit, not asserted. Like the layout,
//! this module is pure — reconstruction math is property-testable with no
//! drives in sight.

use crate::layout::{VolumeKind, VolumeLayout};

/// Per-member sector contents: one 64-bit word per physical LBN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectorStore {
    words: Vec<u64>,
}

impl SectorStore {
    /// A zero-filled store for a drive of `capacity` sectors.
    pub fn new(capacity: u64) -> Self {
        SectorStore {
            words: vec![0; capacity as usize],
        }
    }

    /// Capacity in sectors.
    pub fn capacity(&self) -> u64 {
        self.words.len() as u64
    }

    /// The word stored at physical LBN `pba`.
    pub fn word(&self, pba: u64) -> u64 {
        self.words[pba as usize]
    }

    /// Overwrites the word at physical LBN `pba`.
    pub fn set_word(&mut self, pba: u64, word: u64) {
        self.words[pba as usize] = word;
    }

    /// Appends the `len` words starting at `pba` to `out`.
    pub fn read_into(&self, pba: u64, len: u64, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.words[pba as usize..(pba + len) as usize]);
    }

    /// Writes `data` starting at physical LBN `pba`.
    pub fn write(&mut self, pba: u64, data: &[u64]) {
        self.words[pba as usize..pba as usize + data.len()].copy_from_slice(data);
    }

    /// Deterministically destroys the contents (models a dead drive's
    /// platters), so any test that "recovers" data from a failed member
    /// can only pass by real reconstruction.
    pub fn scramble(&mut self, salt: u64) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w = pattern_word(salt ^ 0xdead_beef_dead_beef, i as u64) ^ !0;
        }
    }
}

/// The canonical content of logical LBN `lbn` under fill seed `seed`: a
/// splitmix-style mix, so every sector of every volume is distinct and
/// any read can be verified against first principles.
pub fn pattern_word(seed: u64, lbn: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(lbn)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fills member stores with the canonical pattern for every logical LBN
/// and establishes the redundancy invariant: mirrors get full copies,
/// RAID-5 parity units get the XOR of their round's data columns.
pub fn fill_stores(layout: &VolumeLayout, stores: &mut [SectorStore], seed: u64) {
    assert_eq!(stores.len(), layout.members(), "one store per member");
    for u in layout.units() {
        for o in 0..u.len {
            let word = pattern_word(seed, u.lstart + o);
            match layout.kind() {
                VolumeKind::Mirrored => {
                    for store in stores.iter_mut() {
                        store.set_word(u.pstart + o, word);
                    }
                }
                _ => stores[u.member].set_word(u.pstart + o, word),
            }
        }
    }
    if layout.kind() == VolumeKind::Raid5 {
        for info in layout.rounds() {
            for o in 0..info.len {
                let mut parity = 0;
                for (m, store) in stores.iter().enumerate() {
                    if m != info.parity {
                        parity ^= store.word(info.pstarts[m] + o);
                    }
                }
                stores[info.parity].set_word(info.pstarts[info.parity] + o, parity);
            }
        }
    }
}

/// Reconstructs member `member`'s round-`round` unit from the surviving
/// columns: XOR of every other member's column for RAID-5 (data and
/// parity reconstruct identically), a copy from `source` for mirrors.
/// Returns the unit's words; pure, so the XOR algebra is testable
/// without drives.
///
/// # Panics
///
/// Panics for [`VolumeKind::Striped`] — RAID-0 has no redundancy.
pub fn reconstruct_unit(
    layout: &VolumeLayout,
    stores: &[SectorStore],
    round: usize,
    member: usize,
) -> Vec<u64> {
    match layout.kind() {
        VolumeKind::Striped => panic!("a striped volume cannot reconstruct anything"),
        VolumeKind::Mirrored => {
            let u = &layout.units()[round];
            let source = (member + 1) % layout.members();
            let mut out = Vec::with_capacity(u.len as usize);
            stores[source].read_into(u.pstart, u.len, &mut out);
            out
        }
        VolumeKind::Raid5 => {
            let info = &layout.rounds()[round];
            let mut out = vec![0u64; info.len as usize];
            for (m, store) in stores.iter().enumerate() {
                if m == member {
                    continue;
                }
                for (o, w) in out.iter_mut().enumerate() {
                    *w ^= store.word(info.pstarts[m] + o as u64);
                }
            }
            out
        }
    }
}
