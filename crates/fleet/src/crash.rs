//! Power-cut capture and resolution for a whole volume.
//!
//! A logical volume write fans out into several member commands — data
//! and parity for RAID-5, one command per copy for a mirror — and a
//! power cut can land between them (or tear any single command across
//! sectors). That is the classic RAID *write hole*: after the cut, some
//! columns hold the new write and others the old one, and the
//! redundancy invariant is silently broken until something reads the
//! stripe.
//!
//! [`Volume::arm_crash`] snapshots every member's data plane and arms
//! each member drive's [`sim_disk::crash`] log; from then on every
//! member write carries its byte payload and per-sector durability
//! instants. [`Volume::power_cut`] then resolves an arbitrary cut
//! instant to the exact durable state of every member — each store is
//! rebuilt from its replayed image — and reports how many commands were
//! torn or lost. The volume keeps serving from that state;
//! [`Volume::scrub_repair`] is the pass that finds and closes the
//! resulting write holes.

use crate::data::SectorStore;
use crate::volume::Volume;
use sim_disk::crash::{replay, CrashError, SectorImage};
use sim_disk::SimTime;

/// What a [`Volume::power_cut`] resolution found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerCutReport {
    /// The cut instant.
    pub cut: SimTime,
    /// Write commands each member had logged by the cut.
    pub member_writes: Vec<u64>,
    /// Commands with *some but not all* sectors durable at the cut —
    /// torn mid-transfer by the firmware.
    pub torn_writes: u64,
    /// Commands with no durable sector at all (issued, never reached
    /// media).
    pub lost_writes: u64,
}

impl Volume {
    /// Arms power-cut capture: snapshots every member's current data
    /// plane as the replay base and enables each member drive's crash
    /// log. Timing is unchanged — an armed run is bit-identical to an
    /// unarmed one. Idempotent.
    pub fn arm_crash(&mut self) {
        if self.crash_base.is_some() {
            return;
        }
        let mut base = Vec::with_capacity(self.members.len());
        for m in &mut self.members {
            let mut img = SectorImage::new();
            for pba in 0..m.store.capacity() {
                let w = m.store.word(pba);
                if w != 0 {
                    img.set_word(pba, w);
                }
            }
            m.disk.enable_crash_log();
            base.push(img);
        }
        self.crash_base = Some(base);
    }

    /// Whether power-cut capture is armed.
    pub fn crash_armed(&self) -> bool {
        self.crash_base.is_some()
    }

    /// Read-only view of member `m`'s crash log (`None` before
    /// [`Volume::arm_crash`]). Sweeps use the logged per-sector durable
    /// instants to aim cuts at interesting places — mid-transfer, between
    /// a data write and its parity write.
    pub fn member_crash_log(&self, m: usize) -> Option<&sim_disk::crash::CrashLog> {
        self.members[m].disk.crash_log()
    }

    /// The latest durable instant across all member crash logs: cutting
    /// at or after this loses nothing.
    pub fn crash_horizon(&self) -> SimTime {
        self.members
            .iter()
            .filter_map(|m| m.disk.crash_log())
            .map(|l| l.horizon())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Loses power at `cut`: every member's data plane is replaced by
    /// exactly what its media durably held at that instant (later and
    /// torn-away sectors revert to the armed snapshot), member drives
    /// power-cycle back to their reset state, and capture is disarmed.
    /// Failed members stay failed — a power cut does not resurrect dead
    /// platters.
    ///
    /// The redundancy invariant is NOT restored: a cut that lands inside
    /// a logical write leaves the write hole on media, which is the
    /// point. Run [`Volume::scrub_repair`] to close it.
    ///
    /// # Errors
    ///
    /// [`CrashError::MissingPayload`] if a logged write never had its
    /// bytes attached (an internal contract violation — every volume
    /// write path attaches payloads while armed).
    ///
    /// # Panics
    ///
    /// Panics if capture was never armed.
    pub fn power_cut(&mut self, cut: SimTime) -> Result<PowerCutReport, CrashError> {
        let base = self
            .crash_base
            .take()
            .expect("power_cut requires arm_crash");
        let mut member_writes = Vec::with_capacity(self.members.len());
        let mut torn = 0u64;
        let mut lost = 0u64;
        for (i, (m, base_img)) in self.members.iter_mut().zip(base).enumerate() {
            let log = m.disk.take_crash_log().expect("armed member logs writes");
            for rec in &log.records {
                let durable = rec.durable_count(cut);
                if durable == 0 {
                    lost += 1;
                } else if rec.torn_at(cut) {
                    torn += 1;
                }
            }
            member_writes.push(log.len() as u64);
            let img = replay(&base_img, &log, cut)?;
            let mut store = SectorStore::new(m.store.capacity());
            for (lbn, _) in img.iter() {
                store.set_word(lbn, img.word(lbn));
            }
            if !m.healthy {
                store.scramble(i as u64);
            }
            m.store = store;
            m.disk.reset();
        }
        Ok(PowerCutReport {
            cut,
            member_writes,
            torn_writes: torn,
            lost_writes: lost,
        })
    }
}
