//! Write-hole properties: random volume workloads, a power cut at a
//! random instant, then the repair scrub must restore the redundancy
//! invariant without ever touching data columns — reproducibly from
//! (seed, cut) alone.

use fleet::{member_boundaries, FleetError, StripePolicy, Volume, FAULT_RETRIES};
use proptest::prelude::*;
use sim_disk::crash::splitmix;
use sim_disk::disk::Disk;
use sim_disk::models;
use sim_disk::SimTime;
use traxtent::obs::Registry;

fn raid5(n: usize) -> Volume {
    let members: Vec<_> = (0..n)
        .map(|_| {
            let d = Disk::new(models::small_test_disk());
            let b = member_boundaries(&d);
            (d, b)
        })
        .collect();
    let mut v = Volume::raid5(members, StripePolicy::aligned()).unwrap();
    v.format(0x5eed);
    v
}

fn mirror(n: usize) -> Volume {
    let members: Vec<_> = (0..n)
        .map(|_| {
            let d = Disk::new(models::small_test_disk());
            let b = member_boundaries(&d);
            (d, b)
        })
        .collect();
    let mut v = Volume::mirrored(members, StripePolicy::aligned()).unwrap();
    v.format(0x5eed);
    v
}

/// Random writes (and a few reads to interleave member traffic), all
/// derived from `seed`.
fn workload(v: &mut Volume, seed: u64) {
    let mut h = seed;
    let mut next = move || {
        h = splitmix(h);
        h
    };
    let cap = v.capacity();
    let mut t = SimTime::ZERO;
    for _ in 0..25 {
        let len = 1 + next() % 256;
        let lbn = next() % (cap - len);
        if next() % 4 == 0 {
            let (c, _) = v.read(lbn, len, t).expect("healthy volume serves reads");
            t = c.completion;
        } else {
            let words: Vec<u64> = (0..len).map(|o| splitmix(seed ^ (lbn + o))).collect();
            let c = v
                .write(lbn, &words, t)
                .expect("healthy volume serves writes");
            t = c.completion;
        }
    }
}

/// Every logical word, read back through the volume (data columns only —
/// parity never appears in the logical space).
fn logical_contents(v: &mut Volume) -> Vec<u64> {
    let cap = v.capacity();
    let mut out = Vec::with_capacity(cap as usize);
    let mut lbn = 0;
    while lbn < cap {
        let len = 2048.min(cap - lbn);
        let (_, words) = v.read(lbn, len, SimTime::ZERO).expect("healthy read");
        out.extend(words);
        lbn += len;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// RAID-5: any cut leaves at most a write hole, never data loss the
    /// scrub cannot see. After `power_cut` + `scrub_repair`, a plain
    /// scrub finds zero mismatches, the repair touched only parity
    /// columns, and the whole pipeline reproduces from (seed, frac).
    #[test]
    fn raid5_repair_closes_every_write_hole(seed in 0u64..u64::MAX, frac in 0u64..=1000) {
        let mut v = raid5(3);
        v.arm_crash();
        workload(&mut v, seed);
        let cut = SimTime::from_ns(v.crash_horizon().as_ns() * frac / 1000);
        let report = v.power_cut(cut).expect("all write paths attach payloads");
        prop_assert_eq!(report.member_writes.len(), 3);

        // Data columns before repair: repair must recompute parity only,
        // never rewrite durable data.
        let reg = Registry::new();
        let before = v.scrub(&reg);
        let data_before = logical_contents(&mut v);

        let repair = v.scrub_repair(&reg, SimTime::ZERO).expect("all members healthy");
        prop_assert_eq!(
            repair.mismatched_sectors, before.mismatches,
            "repair must see exactly what the read-only scrub saw"
        );
        let after = v.scrub(&reg);
        prop_assert_eq!(after.mismatches, 0, "repair left holes: {:?}", repair);
        let data_after = logical_contents(&mut v);
        prop_assert_eq!(data_after, data_before, "repair rewrote a data column");

        // Reproducibility: identical run, identical cut → identical
        // repair outcome.
        let mut v2 = raid5(3);
        v2.arm_crash();
        workload(&mut v2, seed);
        let report2 = v2.power_cut(cut).expect("payloads attached");
        prop_assert_eq!(report2, report);
        let repair2 = v2.scrub_repair(&reg, SimTime::ZERO).expect("healthy");
        prop_assert_eq!(repair2.mismatched_sectors, repair.mismatched_sectors);
        prop_assert_eq!(repair2.repaired_sectors, repair.repaired_sectors);
    }

    /// RAID-1: after any cut, the repair scrub converges every copy onto
    /// the authoritative member — zero mismatches on re-scrub, and every
    /// logical read afterwards is identical no matter which copy serves
    /// it.
    #[test]
    fn mirror_repair_converges_all_copies(seed in 0u64..u64::MAX, frac in 0u64..=1000) {
        let mut v = mirror(2);
        v.arm_crash();
        workload(&mut v, seed);
        let cut = SimTime::from_ns(v.crash_horizon().as_ns() * frac / 1000);
        v.power_cut(cut).expect("all write paths attach payloads");

        let reg = Registry::new();
        let repair = v.scrub_repair(&reg, SimTime::ZERO).expect("all members healthy");
        let after = v.scrub(&reg);
        prop_assert_eq!(after.mismatches, 0, "copies still diverge: {:?}", repair);
    }
}

/// Satellite: the degraded RAID-1 write path under transient command
/// faults. A three-way mirror runs with one member failed (degraded) and
/// one member surfacing a transient fault on every command. A write must
/// exhaust the retry budget on the faulting copy and surface the typed
/// [`FleetError::RetriesExhausted`] — and even though the healthy copy's
/// command already succeeded, the two-phase commit must leave every data
/// plane untouched: no partial stripe, reads still return the pre-write
/// contents.
#[test]
fn degraded_mirror_write_retry_exhaustion_is_typed_and_atomic() {
    let mut always_faulting = models::small_test_disk();
    always_faulting.fault.transient_per_million = 1_000_000;
    let mut members = Vec::new();
    for cfg in [
        models::small_test_disk(),
        always_faulting,
        models::small_test_disk(),
    ] {
        let d = Disk::new(cfg);
        let b = member_boundaries(&d);
        members.push((d, b));
    }
    let mut v = Volume::mirrored(members, StripePolicy::aligned()).unwrap();
    v.format(7);
    v.fail_member(2).unwrap();
    assert!(v.is_degraded() && v.can_serve());

    // Reads fall past the faulting copy to the healthy one.
    let (_, before) = v
        .read(100, 64, SimTime::ZERO)
        .expect("a healthy copy serves");
    let words = vec![0xabcd_ef01_2345_6789u64; 64];
    let err = v.write(100, &words, SimTime::ZERO).unwrap_err();
    assert_eq!(
        err,
        FleetError::RetriesExhausted {
            member: 1,
            attempts: FAULT_RETRIES,
        }
    );

    // No partial stripe: member 0's write command succeeded before member
    // 1 exhausted its retries, but the store commit is all-or-nothing, so
    // the logical contents are exactly the pre-write data on every copy.
    let (_, after) = v
        .read(100, 64, SimTime::ZERO)
        .expect("a healthy copy serves");
    assert_eq!(after, before, "failed write must not leave partial data");
    assert_ne!(after, words, "the aborted write must not be visible");
}

/// A torn RAID-5 logical write is detectable: cut between the data and
/// parity member commands of one read-modify-write, and the parity
/// syndrome for that stripe must be nonzero until `scrub_repair` closes
/// it.
#[test]
fn cut_inside_rmw_opens_a_detectable_write_hole() {
    // Identical phase-locked members service the RMW's data and parity
    // writes in perfect lockstep — every cut tears both columns at the
    // same offsets and the syndrome stays zero. A heterogeneous fleet
    // (different spindle speeds, same geometry) makes the two writes'
    // per-sector durable instants diverge, so a cut between them leaves
    // a genuine hole.
    fn run() -> (Volume, SimTime, SimTime) {
        let members: Vec<_> = [10_000u32, 12_000, 15_000]
            .iter()
            .map(|&rpm| {
                let mut cfg = models::small_test_disk();
                cfg.spindle = sim_disk::mech::Spindle::new(rpm);
                let d = Disk::new(cfg);
                let b = member_boundaries(&d);
                (d, b)
            })
            .collect();
        let mut v = Volume::raid5(members, StripePolicy::aligned()).unwrap();
        v.format(0x5eed);
        v.arm_crash();
        let words = vec![0x1111_2222_3333_4444u64; 32];
        let done = v.write(10, &words, SimTime::ZERO).expect("healthy write");
        (v, SimTime::ZERO, done.completion)
    }
    let (_, start, end) = run();
    let span = end.as_ns() - start.as_ns();
    let mut holed = false;
    for frac in 1..400u64 {
        let cut = SimTime::from_ns(start.as_ns() + span * frac / 400);
        let (mut probe, _, _) = run();
        let rep = probe.power_cut(cut).expect("payloads attached");
        if rep.lost_writes + rep.torn_writes == 0 {
            continue;
        }
        let reg = Registry::new();
        let scrub = probe.scrub(&reg);
        let repair = probe.scrub_repair(&reg, SimTime::ZERO).expect("healthy");
        assert_eq!(repair.mismatched_sectors, scrub.mismatches);
        assert_eq!(
            probe.scrub(&reg).mismatches,
            0,
            "repair must close the hole"
        );
        if scrub.mismatches > 0 {
            holed = true;
            break;
        }
    }
    assert!(holed, "no cut instant opened a write hole across the RMW");
}
