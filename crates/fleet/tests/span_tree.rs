//! The PR's acceptance criterion, end to end: a request served through a
//! RAID-5 volume produces ONE connected span tree spanning server →
//! scheduler → volume → member → sim-disk phases, and the tree exports
//! cleanly to Chrome trace format.

use fleet::{member_boundaries, StripePolicy, Volume};
use server::{serve, DiskSpanBridge, SchedulerKind, ServerConfig};
use sim_disk::disk::Disk;
use sim_disk::models::small_test_disk;
use sim_disk::trace::Tracer;
use sim_disk::SimTime;
use traxtent::obs::span::{self, chrome_trace, Span, SpanRecorder};
use workloads::replay::{synthetic_trace, SyntheticSpec, TraceRecord};

/// A RAID-5 volume whose member drives all bridge their trace streams
/// into `rec`, plus the volume's own span hookup.
fn traced_raid5(members: usize, rec: &SpanRecorder) -> Volume {
    let disks: Vec<_> = (0..members)
        .map(|_| {
            let mut config = small_test_disk();
            config.tracer = Some(Tracer::from_sink(DiskSpanBridge::new(rec.clone())));
            let d = Disk::new(config);
            let b = member_boundaries(&d);
            (d, b)
        })
        .collect();
    let mut v = Volume::raid5(disks, StripePolicy::aligned()).unwrap();
    v.format(41);
    v.attach_spans(rec.clone());
    v
}

fn workload(count: usize, capacity: u64) -> Vec<TraceRecord> {
    synthetic_trace(&SyntheticSpec {
        count,
        interarrival_ms: 6.0,
        io_sectors: 64,
        read_fraction: 0.6,
        capacity_lbns: capacity,
        seed: 77,
    })
}

fn spanned_volume_run(
    volume: &mut Volume,
    rec: &SpanRecorder,
    records: &[TraceRecord],
) -> (server::ServerResult, Vec<Span>) {
    let cfg = ServerConfig::new(SchedulerKind::CLook).with_spans(rec.clone());
    let res = serve(volume, records, &cfg).unwrap();
    (res, rec.take_sorted())
}

#[test]
fn raid5_request_yields_one_connected_tree_to_the_media() {
    let rec = SpanRecorder::new();
    rec.set_salt(0xF1EE7);
    let mut volume = traced_raid5(3, &rec);
    let records = workload(60, volume.capacity());
    let (res, spans) = spanned_volume_run(&mut volume, &rec, &records);
    assert!(res.completed() > 0);

    let stats = span::validate(&spans).unwrap();
    // request → dispatch → vol_cmd → member_cmd → disk_cmd → phase.
    assert!(stats.max_depth >= 6, "depth {}", stats.max_depth);

    // Walk one completed request's tree: it must reach media spans
    // through every layer, and each layer's spans nest inside the tree.
    let by_id: std::collections::BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let chain_of = |mut id: u64| {
        let mut names = Vec::new();
        while id != 0 {
            let s = by_id[&id];
            names.push(s.name.as_str());
            id = s.parent;
        }
        names.reverse();
        names
    };
    let mut full_chains = 0;
    for s in spans.iter().filter(|s| s.name == "media") {
        let chain = chain_of(s.id);
        if chain
            == [
                "request",
                "dispatch",
                "vol_cmd",
                "member_cmd",
                "disk_cmd",
                "media",
            ]
        {
            full_chains += 1;
        }
    }
    assert!(
        full_chains > 0,
        "no media span chains through all five layers"
    );

    // Every vol_cmd sits under a dispatch, every member_cmd under a
    // vol_cmd (or a reconstruct grouping), every disk_cmd under a
    // member_cmd.
    for s in &spans {
        let parent_name = (s.parent != 0).then(|| by_id[&s.parent].name.as_str());
        match s.name.as_str() {
            "vol_cmd" => assert_eq!(parent_name, Some("dispatch")),
            "member_cmd" => assert!(
                matches!(parent_name, Some("vol_cmd") | Some("reconstruct")),
                "member_cmd under {parent_name:?}"
            ),
            "disk_cmd" => assert_eq!(parent_name, Some("member_cmd")),
            _ => {}
        }
    }

    // RAID-5 writes fan out: some vol_cmd carries the rmw mode attr and
    // at least four member commands.
    let rmw = spans
        .iter()
        .find(|s| s.name == "vol_cmd" && s.attr("mode") == Some("rmw"))
        .expect("an rmw write");
    let fanout = spans.iter().filter(|s| s.parent == rmw.id).count();
    assert!(fanout >= 4, "rmw fanned into {fanout} member cmds");

    // Member commands land on per-member tracks (1-based; track 0 is the
    // server/volume lane), so Chrome export gets one process per member.
    let tracks: std::collections::BTreeSet<u32> = spans
        .iter()
        .filter(|s| s.name == "member_cmd")
        .map(|s| s.track)
        .collect();
    assert_eq!(tracks, [1u32, 2, 3].into());
    let chrome = chrome_trace(&spans);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("\"process_name\""));
}

#[test]
fn degraded_raid5_reads_show_reconstruct_spans() {
    let rec = SpanRecorder::new();
    rec.set_salt(3);
    let mut volume = traced_raid5(3, &rec);
    volume.fail_member(1).unwrap();
    assert!(volume.can_serve());

    // Read the whole logical space directly; some chunks live on the
    // failed member and must reconstruct from the survivors.
    let cap = volume.capacity();
    let mut at = SimTime::ZERO;
    let mut lbn = 0;
    while lbn < cap {
        let len = 64.min(cap - lbn);
        let (c, _) = volume.read(lbn, len, at).unwrap();
        at = c.completion;
        lbn += len;
    }
    let spans = rec.take_sorted();
    span::validate(&spans).unwrap();

    let recon: Vec<&Span> = spans.iter().filter(|s| s.name == "reconstruct").collect();
    assert!(!recon.is_empty(), "degraded reads reconstruct");
    let by_id: std::collections::BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    for r in &recon {
        assert_eq!(by_id[&r.parent].name, "vol_cmd");
        let survivors = spans
            .iter()
            .filter(|s| s.parent == r.id && s.name == "member_cmd")
            .count();
        assert_eq!(survivors, 2, "both survivors read per reconstruction");
    }
    // Direct volume access (no server above): vol_cmds are roots with
    // the degraded mode recorded.
    assert!(spans.iter().any(|s| s.name == "vol_cmd"
        && s.parent == 0
        && s.attr("mode") == Some("reconstruct_read")));
}

#[test]
fn member_busy_reaches_the_server_timeline() {
    use server::{Backend, TimelineConfig};
    let rec = SpanRecorder::new();
    let mut volume = traced_raid5(3, &rec);
    let records = workload(120, volume.capacity());
    let cfg = ServerConfig::new(SchedulerKind::CLook).with_timeline(TimelineConfig::new(100.0));
    let res = serve(&mut volume, &records, &cfg).unwrap();
    assert_eq!(volume.member_busy_ns().len(), 3);
    let t = res.timeline.expect("timeline");
    // Three per-member busy columns, every member exercised.
    for b in &t.buckets {
        assert_eq!(b.busy_frac.len(), 3);
    }
    for m in 0..3 {
        assert!(
            t.buckets.iter().any(|b| b.busy_frac[m] > 0.0),
            "member {m} never busy"
        );
    }
}
