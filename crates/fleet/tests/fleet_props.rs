//! Property-based tests for the fleet layout and reconstruction math:
//! the logical↔physical map is a bijection, aligned stripe units respect
//! trusted member track boundaries, and RAID-5 reconstruction of any
//! single member is bit-exact — all over random heterogeneous member
//! geometries with mixed extraction confidence.

use fleet::{
    fill_stores, reconstruct_unit, stripe_units, SectorStore, StripePolicy, VolumeKind,
    VolumeLayout,
};
use proptest::prelude::*;
use traxtent::boundaries::ConfidentBoundaries;

/// A random member boundary map: 2–60 tracks of 1–400 sectors, each
/// track trusted (confidence 1.0) or fuzzy (below any sane threshold).
fn arb_member() -> impl Strategy<Value = ConfidentBoundaries> {
    prop::collection::vec((1u64..400, 0u32..2), 2..60).prop_map(|tracks| {
        ConfidentBoundaries::from_unit_lengths(
            tracks
                .into_iter()
                .map(|(len, trusted)| (len, if trusted == 1 { 1.0 } else { 0.35 })),
        )
        .expect("positive lengths are valid")
    })
}

fn arb_members(min: usize) -> impl Strategy<Value = Vec<ConfidentBoundaries>> {
    prop::collection::vec(arb_member(), min..6)
}

fn arb_policy() -> impl Strategy<Value = StripePolicy> {
    prop_oneof![
        (1u64..200).prop_map(StripePolicy::fixed),
        (1u64..200).prop_map(|fallback_sectors| StripePolicy::Aligned {
            threshold: 0.9,
            fallback_sectors,
        }),
    ]
}

fn arb_kind() -> impl Strategy<Value = VolumeKind> {
    prop_oneof![
        Just(VolumeKind::Striped),
        Just(VolumeKind::Mirrored),
        Just(VolumeKind::Raid5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// (a) Every logical LBN maps to exactly one (member, physical LBN)
    /// and round-trips back through `to_logical`; distinct logical LBNs
    /// never share a physical home.
    #[test]
    fn mapping_is_a_bijection(
        maps in arb_members(3),
        kind in arb_kind(),
        policy in arb_policy(),
        picks in prop::collection::vec(0u64..u64::MAX, 8..9),
    ) {
        let layout = match VolumeLayout::new(kind, &maps, &policy) {
            Ok(l) => l,
            Err(_) => return, // e.g. no complete round fits
        };
        prop_assert!(layout.capacity() > 0);
        // Spot-check round-tripping at random logical addresses...
        for pick in picks {
            let lbn = pick % layout.capacity();
            let (m, pba) = layout.to_physical(lbn);
            prop_assert!(m < layout.members());
            prop_assert!(pba < layout.member_caps()[m]);
            prop_assert_eq!(layout.to_logical(m, pba), Some(lbn));
        }
        // ...and check global injectivity + unit bookkeeping exactly.
        let mut expected_lstart = 0;
        let mut seen = std::collections::HashSet::new();
        for u in layout.units() {
            prop_assert_eq!(u.lstart, expected_lstart, "units tile the logical space");
            prop_assert!(u.len > 0);
            expected_lstart += u.len;
            for o in 0..u.len {
                prop_assert!(
                    seen.insert((u.member, u.pstart + o)),
                    "physical sector owned by two logical LBNs"
                );
            }
        }
        prop_assert_eq!(expected_lstart, layout.capacity());
    }

    /// (b) Under the aligned policy, no stripe unit crosses a *trusted*
    /// member track boundary: each unit either is exactly one trusted
    /// track or sits entirely inside low-confidence tracks.
    #[test]
    fn aligned_units_respect_trusted_boundaries(
        map in arb_member(),
        fallback in 1u64..200,
    ) {
        let policy = StripePolicy::Aligned { threshold: 0.9, fallback_sectors: fallback };
        let units = stripe_units(&map, &policy).expect("valid policy");
        let table = map.table();
        let mut at = 0;
        for u in units {
            prop_assert_eq!(u.start, at, "units tile the member");
            at = u.end();
            let first = table.track_index(u.start);
            let last = table.track_index(u.end() - 1);
            if map.is_confident(first, 0.9) {
                // A trusted track is carved as exactly itself.
                let ext = table.track_extent(first);
                prop_assert_eq!((u.start, u.len), (ext.start, ext.len));
            } else {
                // A fallback unit may span fuzzy tracks but must stop at
                // the first trusted boundary.
                for t in first..=last {
                    prop_assert!(
                        !map.is_confident(t, 0.9),
                        "fallback unit [{}, {}) crosses trusted track {}",
                        u.start, u.end(), t
                    );
                }
            }
        }
        prop_assert_eq!(at, table.capacity());
    }

    /// (c) RAID-5 reconstruction of any single member — data or parity
    /// column — is bit-exact against what the member actually held.
    #[test]
    fn raid5_reconstruction_is_bit_exact(
        maps in arb_members(3),
        policy in arb_policy(),
        seed in 0u64..u64::MAX,
        victim_pick in 0usize..16,
    ) {
        let layout = match VolumeLayout::new(VolumeKind::Raid5, &maps, &policy) {
            Ok(l) => l,
            Err(_) => return,
        };
        let mut stores: Vec<SectorStore> =
            layout.member_caps().iter().map(|&c| SectorStore::new(c)).collect();
        fill_stores(&layout, &mut stores, seed);
        let victim = victim_pick % layout.members();
        for (r, info) in layout.rounds().iter().enumerate() {
            let rebuilt = reconstruct_unit(&layout, &stores, r, victim);
            prop_assert_eq!(rebuilt.len() as u64, info.len);
            for (o, &w) in rebuilt.iter().enumerate() {
                prop_assert_eq!(
                    w,
                    stores[victim].word(info.pstarts[victim] + o as u64),
                    "round {} offset {} of member {}", r, o, victim
                );
            }
        }
    }

    /// The volume-wide boundary map published to the scheduler has one
    /// "track" per logical unit and exactly the volume's capacity.
    #[test]
    fn logical_boundaries_mirror_units(
        maps in arb_members(2),
        kind in arb_kind(),
        policy in arb_policy(),
    ) {
        let layout = match VolumeLayout::new(kind, &maps, &policy) {
            Ok(l) => l,
            Err(_) => return,
        };
        let lb = layout.logical_boundaries();
        prop_assert_eq!(lb.table().capacity(), layout.capacity());
        prop_assert_eq!(lb.table().num_tracks(), layout.units().len());
        for (i, u) in layout.units().iter().enumerate() {
            let ext = lb.table().track_extent(i);
            prop_assert_eq!((ext.start, ext.len), (u.lstart, u.len));
        }
    }
}
