//! End-to-end volume behavior on real simulated drives: degraded-mode
//! reads return bit-exact data, writes maintain the redundancy
//! invariant, rebuild restores a failed member, and scrub verifies it.

use fleet::{member_boundaries, pattern_word, FleetError, StripePolicy, Volume};
use sim_disk::disk::Disk;
use sim_disk::models::small_test_disk;
use sim_disk::SimTime;
use traxtent::obs::Registry;

fn members(n: usize) -> Vec<(Disk, traxtent::boundaries::ConfidentBoundaries)> {
    (0..n)
        .map(|_| {
            let d = Disk::new(small_test_disk());
            let b = member_boundaries(&d);
            (d, b)
        })
        .collect()
}

const SEED: u64 = 0x5eed;

fn expect_pattern(words: &[u64], lbn: u64) {
    for (o, &w) in words.iter().enumerate() {
        assert_eq!(
            w,
            pattern_word(SEED, lbn + o as u64),
            "lbn {}",
            lbn + o as u64
        );
    }
}

#[test]
fn striped_reads_whole_logical_space() {
    let mut v = Volume::striped(members(2), StripePolicy::aligned()).unwrap();
    v.format(SEED);
    let cap = v.capacity();
    for lbn in [0, 199, 200, cap / 2, cap - 64] {
        let (c, data) = v.read(lbn, 64, SimTime::ZERO).unwrap();
        assert!(c.completion > SimTime::ZERO);
        expect_pattern(&data, lbn);
    }
    v.fail_member(1).unwrap();
    assert!(!v.can_serve());
    // Anything striped onto the dead member is gone.
    let lost = v
        .layout()
        .units()
        .iter()
        .find(|u| u.member == 1)
        .expect("member 1 owns units")
        .lstart;
    assert!(matches!(
        v.read(lost, 8, SimTime::ZERO),
        Err(FleetError::Unrecoverable { member: 1 })
    ));
}

#[test]
fn mirror_survives_failure_and_rebuilds() {
    let mut v = Volume::mirrored(members(3), StripePolicy::aligned()).unwrap();
    v.format(SEED);
    let cap = v.capacity();

    // A write lands on every copy; a read after failing two members
    // still returns it.
    let payload: Vec<u64> = (0..32).map(|o| pattern_word(SEED, 5000 + o)).collect();
    v.write(5000, &payload, SimTime::ZERO).unwrap();
    v.fail_member(0).unwrap();
    v.fail_member(2).unwrap();
    assert!(v.can_serve());
    let (c, data) = v.read(5000, 32, SimTime::from_ns(1)).unwrap();
    assert!(c.reconstructed || c.member_cmds == 1);
    assert_eq!(data, payload);
    let (_, tail) = v.read(cap - 100, 100, SimTime::from_ns(2)).unwrap();
    expect_pattern(&tail, cap - 100);

    // Rebuild both copies back from the one survivor.
    let reg = Registry::new();
    let r2 = v.rebuild_member(2, &reg, SimTime::from_ns(3)).unwrap();
    assert!(r2.finished > r2.started && r2.sectors == cap);
    let r0 = v.rebuild_member(0, &reg, r2.finished).unwrap();
    assert_eq!(r0.sectors, cap);
    assert!(!v.is_degraded());

    // Every copy agrees again.
    let scrub = v.scrub(&reg);
    assert_eq!(scrub.mismatches, 0);
    assert_eq!(scrub.checked_sectors, 2 * cap);
    assert_eq!(reg.snapshot().get("fleet.rebuild.completed"), Some(2));
}

#[test]
fn raid5_degraded_reads_and_writes_are_exact() {
    let mut v = Volume::raid5(members(4), StripePolicy::aligned()).unwrap();
    v.format(SEED);
    let cap = v.capacity();
    let probes: Vec<u64> = (0..16).map(|i| i * (cap - 128) / 15).collect();

    // Healthy baseline.
    let mut healthy = Vec::new();
    for &lbn in &probes {
        healthy.push(v.read(lbn, 128, SimTime::ZERO).unwrap().1);
        expect_pattern(healthy.last().unwrap(), lbn);
    }

    // Healthy RMW write keeps parity consistent.
    let payload: Vec<u64> = (0..200).map(|o| !pattern_word(SEED, o)).collect();
    let w = v.write(1000, &payload, SimTime::ZERO).unwrap();
    assert!(w.member_cmds >= 4, "RMW reads and writes data + parity");

    // Fail a member: every probe still reads bit-exact data, including
    // the overwritten range.
    v.fail_member(2).unwrap();
    assert!(v.can_serve() && v.is_degraded());
    for (i, &lbn) in probes.iter().enumerate() {
        let (c, data) = v.read(lbn, 128, SimTime::from_ns(1)).unwrap();
        assert_eq!(data, healthy[i], "probe at lbn {lbn}");
        let owners: Vec<usize> = v
            .layout()
            .split(lbn, 128)
            .unwrap()
            .iter()
            .map(|ch| ch.member)
            .collect();
        assert_eq!(c.reconstructed, owners.contains(&2));
    }
    let (_, got) = v.read(1000, 200, SimTime::from_ns(2)).unwrap();
    assert_eq!(got, payload);

    // Degraded writes (reconstruct-write / parity-skip) still land.
    let payload2: Vec<u64> = (0..300).map(|o| pattern_word(!SEED, o)).collect();
    let wd = v.write(2000, &payload2, SimTime::from_ns(3)).unwrap();
    assert!(wd.completion > wd.issue);
    let (_, got2) = v.read(2000, 300, SimTime::from_ns(4)).unwrap();
    assert_eq!(got2, payload2);

    // Rebuild writes the member back bit-exactly; scrub finds a clean
    // parity invariant over every round.
    let reg = Registry::new();
    let report = v.rebuild_member(2, &reg, SimTime::from_ns(5)).unwrap();
    assert!(report.units > 0 && report.finished > report.started);
    assert!(!v.is_degraded());
    let scrub = v.scrub(&reg);
    assert_eq!(scrub.mismatches, 0);
    assert!(scrub.checked_sectors > 0);
    for (i, &lbn) in probes.iter().enumerate() {
        let (c, data) = v.read(lbn, 128, SimTime::from_ns(6)).unwrap();
        assert_eq!(data, healthy[i]);
        assert!(!c.reconstructed);
    }

    // A second simultaneous failure is fatal: RAID-5 tolerates one.
    v.fail_member(0).unwrap();
    v.fail_member(2).unwrap();
    assert!(!v.can_serve());
    let lost = v
        .layout()
        .units()
        .iter()
        .find(|u| u.member == 2)
        .expect("member 2 owns units")
        .lstart;
    assert!(matches!(
        v.read(lost, 8, SimTime::from_ns(7)),
        Err(FleetError::Unrecoverable { .. })
    ));
    // And RAID-5 rebuild refuses to run while a peer is down.
    let reg = Registry::new();
    assert!(matches!(
        v.rebuild_member(2, &reg, SimTime::from_ns(8)),
        Err(FleetError::DegradedPeer { member: 0 })
    ));
}
