//! End-to-end determinism of the fleet figure: `fleet_sweep` prints
//! byte-identical stdout and records identical manifest headline values
//! at `--threads 1`, `2`, and `8` for the same seed — volume service,
//! degraded-mode reconstruction, rebuild, and scrub all run on the
//! simulated clock and owe nothing to the host thread count.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use traxtent_bench::manifest::Manifest;

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("traxtent-fleet-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_sweep(manifest_dir: &Path, threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fleet_sweep"))
        .args([
            "--quick",
            "--seed",
            "42",
            "--threads",
            threads,
            "--manifest",
            manifest_dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn fleet_sweep")
}

#[test]
fn fleet_sweep_is_thread_count_invariant() {
    let base = scratch("threads");
    let mut seen: Option<(String, Manifest)> = None;
    for threads in ["1", "2", "8"] {
        let dir = base.join(format!("t{threads}"));
        fs::create_dir_all(&dir).unwrap();
        let out = run_sweep(&dir, threads);
        assert!(out.status.success(), "fleet_sweep --threads {threads}");
        let text = String::from_utf8(out.stdout).unwrap();
        let manifest = Manifest::load(&dir.join("fleet_sweep.json")).unwrap();
        assert_eq!(manifest.threads, threads.parse::<usize>().unwrap());
        match &seen {
            None => seen = Some((text, manifest)),
            Some((text1, m1)) => {
                assert_eq!(text1, &text, "stdout differs at --threads {threads}");
                assert_eq!(
                    m1.headline, manifest.headline,
                    "headline values differ at --threads {threads}"
                );
            }
        }
    }
    // The acceptance headlines are present and hold: aligned stripe
    // units beat fixed on the healthy path of every shape, and every
    // degraded redundant cell served bit-exact data.
    let (_, m) = seen.unwrap();
    for shape in ["stripedx2", "stripedx4", "mirroredx2", "raid5x3", "raid5x5"] {
        let gain = m
            .headline
            .get(&format!("aligned_gain_{shape}"))
            .unwrap_or_else(|| panic!("aligned_gain_{shape} headline present"));
        assert!(*gain > 1.0, "{shape}: aligned must beat fixed, got {gain}x");
    }
    assert_eq!(
        m.headline.get("degraded_scrub_mismatches"),
        Some(&0.0),
        "rebuilt redundancy scrubs clean"
    );
    fs::remove_dir_all(&base).unwrap();
}
