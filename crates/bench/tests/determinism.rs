//! Regression test for the executor's core guarantee: fanning a config
//! matrix across threads yields exactly the results (and exactly the
//! merged output) of a sequential run.

use sim_disk::bus::BusConfig;
use sim_disk::disk::{Disk, DiskConfig, Op};
use sim_disk::models;
use traxtent_bench::exec::Executor;
use traxtent_bench::row_string;
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoResult, RandomIoSpec};

/// A small but representative config matrix: sizes × alignment × queue
/// depth × op × bus, the dimensions the figure binaries sweep.
fn matrix() -> Vec<RandomIoSpec> {
    let mut specs = Vec::new();
    for &io_sectors in &[64u64, 528] {
        for &alignment in &[Alignment::TrackAligned, Alignment::Unaligned] {
            for &queue in &[QueueDepth::One, QueueDepth::Two] {
                for &op in &[Op::Read, Op::Write] {
                    let mut spec = RandomIoSpec::reads(io_sectors, alignment, queue);
                    spec.count = 40;
                    spec.seed = 0x5eed;
                    spec.op = op;
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

fn run_matrix(threads: usize, bus: BusConfig) -> Vec<RandomIoResult> {
    let cfg = DiskConfig {
        bus,
        ..models::quantum_atlas_10k_ii()
    };
    Executor::new(threads).run(matrix(), |_, spec| {
        let mut disk = Disk::new(cfg.clone());
        run_random_io(&mut disk, &spec)
    })
}

#[test]
fn parallel_results_match_sequential_exactly() {
    for bus in [BusConfig::in_order(160.0), BusConfig::infinite()] {
        let seq = run_matrix(1, bus);
        let par = run_matrix(8, bus);
        assert_eq!(seq.len(), par.len());
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(s.ideal_media, p.ideal_media, "config {i}");
            assert_eq!(s.completions, p.completions, "config {i}");
        }
    }
}

#[test]
fn merged_row_output_is_byte_identical() {
    // The binaries' pattern: jobs format row strings, the caller joins
    // them. The joined text must not depend on the thread count.
    let render = |threads: usize| -> String {
        let cfg = models::quantum_atlas_10k_ii();
        let rows = Executor::new(threads).run(matrix(), |idx, spec| {
            let mut disk = Disk::new(cfg.clone());
            let r = run_random_io(&mut disk, &spec);
            row_string([
                idx.to_string(),
                format!("{:.3}", r.mean_response().as_millis_f64()),
                format!("{:.3}", r.mean_head_time(spec.queue).as_millis_f64()),
                format!("{:.4}", r.efficiency(spec.queue)),
            ])
        });
        rows.join("\n")
    };
    let seq = render(1);
    for threads in [2, 8] {
        assert_eq!(seq, render(threads), "threads={threads}");
    }
}
