//! End-to-end tests of the observability binaries: a figure run emitting a
//! manifest, `bench_diff` passing on an unchanged run and failing on a
//! perturbed headline, and `trace_report` degrading gracefully on empty or
//! truncated traces.
//!
//! `table1` stands in for the figure binaries because it is the cheapest
//! (geometry construction only, ~0.1 s in a debug build) while exercising
//! the whole `Cli` → executor → `Recorder` path the others share.

use sim_disk::disk::Op;
use sim_disk::trace::TraceEvent;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use traxtent_bench::manifest::Manifest;

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("traxtent-bin-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn `{bin}`: {e}"))
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// One syntactically valid trace line, as a figure run would emit it.
fn valid_trace_line() -> String {
    TraceEvent::Issue {
        req: 1,
        t: 0,
        op: Op::Read,
        lbn: 100,
        len: 8,
    }
    .to_json()
}

#[test]
fn trace_report_reports_empty_trace_and_exits_zero() {
    let dir = scratch("trace-empty");
    let path = dir.join("empty.jsonl");
    fs::write(&path, "").unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_trace_report"),
        &[path.to_str().unwrap()],
    );
    assert!(out.status.success(), "exit: {:?}", out.status);
    assert!(
        stdout(&out).contains("is empty: nothing to report"),
        "stdout: {}",
        stdout(&out)
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_report_reports_truncated_trace_and_exits_zero() {
    let dir = scratch("trace-trunc");

    // A file holding nothing parseable: report the truncation, exit 0.
    let garbage = dir.join("garbage.jsonl");
    fs::write(&garbage, "{\"ev\": \"iss").unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_trace_report"),
        &[garbage.to_str().unwrap()],
    );
    assert!(out.status.success(), "exit: {:?}", out.status);
    assert!(
        stdout(&out).contains("no usable events (truncated at line 1)"),
        "stdout: {}",
        stdout(&out)
    );

    // A valid prefix followed by a torn tail: census the prefix, note the
    // truncation point, exit 0.
    let torn = dir.join("torn.jsonl");
    fs::write(
        &torn,
        format!("{}\n{}", valid_trace_line(), "{\"ev\": \"se"),
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_trace_report"),
        &[torn.to_str().unwrap()],
    );
    assert!(out.status.success(), "exit: {:?}", out.status);
    let text = stdout(&out);
    assert!(text.contains("trace truncated at line 2"), "stdout: {text}");
    assert!(text.contains("issue"), "census missing from: {text}");

    fs::remove_dir_all(&dir).unwrap();
}

/// Runs `table1 --quick --manifest <dir>` and returns its stdout.
fn run_table1(manifest_dir: &Path, extra: &[&str]) -> String {
    let mut args = vec!["--quick", "--manifest", manifest_dir.to_str().unwrap()];
    args.extend_from_slice(extra);
    let out = run(env!("CARGO_BIN_EXE_table1"), &args);
    assert!(out.status.success(), "table1 failed: {:?}", out.status);
    stdout(&out)
}

#[test]
fn manifest_pipeline_passes_unchanged_and_fails_when_perturbed() {
    let dir = scratch("diff");
    let baseline = dir.join("baseline");
    let current = dir.join("current");
    let text_a = run_table1(&baseline, &[]);
    let text_b = run_table1(&current, &[]);
    assert_eq!(text_a, text_b, "reruns must be byte-identical");

    // A run without --manifest prints exactly the same report.
    let plain = run(env!("CARGO_BIN_EXE_table1"), &["--quick"]);
    assert_eq!(text_a, stdout(&plain), "--manifest must not change stdout");

    // Unchanged runs pass the diff.
    let bench_diff = env!("CARGO_BIN_EXE_bench_diff");
    let out = run(
        bench_diff,
        &[baseline.to_str().unwrap(), current.to_str().unwrap()],
    );
    assert!(out.status.success(), "diff of identical runs must pass");
    assert!(stdout(&out).contains("PASS"), "stdout: {}", stdout(&out));

    // Perturb one headline beyond the default ±2 % tolerance: exit 1.
    let path = current.join("table1.json");
    let mut m = Manifest::load(&path).expect("manifest parses");
    let (key, value) = {
        let (k, v) = m.headline.iter().next().expect("has a headline");
        (k.clone(), *v)
    };
    m.headline.insert(key.clone(), value * 1.10);
    m.write_to(&current).unwrap();
    let out = run(
        bench_diff,
        &[baseline.to_str().unwrap(), current.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(1), "perturbed run must fail");
    let text = stdout(&out);
    assert!(text.contains("FAIL"), "stdout: {text}");
    assert!(text.contains(&key), "regression must name `{key}`: {text}");

    // A loose tolerance forgives the same perturbation.
    let out = run(
        bench_diff,
        &[
            baseline.to_str().unwrap(),
            current.to_str().unwrap(),
            "--tol",
            "0.5",
        ],
    );
    assert!(out.status.success(), "10% change is within --tol 0.5");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifests_are_identical_across_thread_counts() {
    let dir = scratch("threads");
    let one = dir.join("t1");
    let four = dir.join("t4");
    let text_one = run_table1(&one, &["--threads", "1"]);
    let text_four = run_table1(&four, &["--threads", "4"]);
    assert_eq!(text_one, text_four, "stdout must not depend on threads");

    let a = Manifest::load(&one.join("table1.json")).unwrap();
    let b = Manifest::load(&four.join("table1.json")).unwrap();
    assert_eq!(a.headline, b.headline);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(b.threads, 4);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn trace_report_counts_unknown_kinds_without_truncating() {
    use traxtent::obs::span::Span;
    let dir = scratch("trace-unknown");
    let path = dir.join("mixed.jsonl");
    // Recognized events surrounding a future event kind and a span
    // record: both are well-formed JSONL, so the report counts and skips
    // them instead of treating the file as truncated.
    let mut text = valid_trace_line() + "\n";
    text += "{\"ev\": \"warp_drive\", \"req\": 9, \"t\": 5}\n";
    text += &(Span::new(0x2a, 0, "request", 0, 10, 20).to_json() + "\n");
    text += &(valid_trace_line() + "\n");
    fs::write(&path, text).unwrap();

    let out = run(
        env!("CARGO_BIN_EXE_trace_report"),
        &[path.to_str().unwrap()],
    );
    assert!(out.status.success(), "exit: {:?}", out.status);
    let text = stdout(&out);
    assert!(text.contains("issue"), "census keeps known events: {text}");
    assert!(
        text.contains("Unrecognized event kinds"),
        "unknown section: {text}"
    );
    assert!(text.contains("warp_drive"), "stdout: {text}");
    assert!(text.contains("span:request"), "stdout: {text}");
    assert!(!text.contains("truncated"), "no truncation note: {text}");

    // A malformed line still truncates — after the events before it.
    fs::write(&path, valid_trace_line() + "\n{\"ev\": \"se").unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_trace_report"),
        &[path.to_str().unwrap()],
    );
    assert!(out.status.success(), "exit: {:?}", out.status);
    assert!(
        stdout(&out).contains("truncated at line 2"),
        "stdout: {}",
        stdout(&out)
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_trace_exports_chain_into_trace_timeline() {
    let dir = scratch("span-export");
    let trace = dir.join("sweep.jsonl");
    let manifests = dir.join("m");

    // The acceptance chain: a traced+timed sweep writes the span export,
    // the Chrome export, and the timeline manifest...
    let out = run(
        env!("CARGO_BIN_EXE_server_sweep"),
        &[
            "--quick",
            "--seed",
            "42",
            "--timeline",
            "--trace",
            trace.to_str().unwrap(),
            "--manifest",
            manifests.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "exit: {:?}", out.status);
    assert!(
        stdout(&out).contains("## timeline s6_"),
        "timeline sections on stdout"
    );
    let spans = dir.join("sweep.spans.jsonl");
    let chrome = dir.join("sweep.chrome.json");
    let timeline_manifest = manifests.join("server_timeline.json");
    assert!(spans.exists() && chrome.exists() && timeline_manifest.exists());
    let m = Manifest::load(&timeline_manifest).unwrap();
    assert!(!m.timeline.is_empty(), "timeline rows recorded");

    // ...and trace_timeline validates all three together.
    let out = run(
        env!("CARGO_BIN_EXE_trace_timeline"),
        &[
            spans.to_str().unwrap(),
            "--chrome",
            chrome.to_str().unwrap(),
            "--manifest",
            timeline_manifest.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "exit: {:?}", out.status);
    let text = stdout(&out);
    assert!(text.contains("trees, max depth"), "validation line: {text}");
    assert!(text.contains("queue_wait"), "layer breakdown: {text}");
    assert!(text.contains("— ok"), "chrome check: {text}");
    assert!(
        text.contains("Manifest timeline"),
        "manifest tables: {text}"
    );

    // A corrupted span line is a hard error, unlike trace_report's
    // tolerant event stream: span exports are written atomically by the
    // sweep binaries, so damage means the file cannot be trusted.
    let mut lines = fs::read_to_string(&spans).unwrap();
    lines.insert_str(0, "{\"span\": \"req");
    fs::write(&spans, lines).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_trace_timeline"),
        &[spans.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(1), "malformed span must fail");

    fs::remove_dir_all(&dir).unwrap();
}
