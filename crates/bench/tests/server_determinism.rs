//! End-to-end determinism of the open-loop server figure:
//!
//! * `server_sweep` prints byte-identical stdout and records identical
//!   manifest headline values at `--threads 1`, `2`, and `8` for the same
//!   seed — simulated time owes nothing to the host thread count;
//! * replaying the committed `traces/sample.trc` through the server
//!   matches the hand-computed completion count for every scheduler.

use server::{drive_boundaries, serve, SchedulerKind, ServerConfig};
use sim_disk::disk::Disk;
use sim_disk::models;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use traxtent::ConfidentBoundaries;
use traxtent_bench::manifest::Manifest;
use workloads::replay::parse_trace;

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("traxtent-srv-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_sweep(manifest_dir: &Path, threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_server_sweep"))
        .args([
            "--quick",
            "--seed",
            "42",
            "--threads",
            threads,
            "--manifest",
            manifest_dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn server_sweep")
}

#[test]
fn server_sweep_is_thread_count_invariant() {
    let base = scratch("threads");
    let mut seen: Option<(String, Manifest)> = None;
    for threads in ["1", "2", "8"] {
        let dir = base.join(format!("t{threads}"));
        fs::create_dir_all(&dir).unwrap();
        let out = run_sweep(&dir, threads);
        assert!(out.status.success(), "server_sweep --threads {threads}");
        let text = String::from_utf8(out.stdout).unwrap();
        let manifest = Manifest::load(&dir.join("server_sweep.json")).unwrap();
        assert_eq!(manifest.threads, threads.parse::<usize>().unwrap());
        match &seen {
            None => seen = Some((text, manifest)),
            Some((text1, m1)) => {
                assert_eq!(text1, &text, "stdout differs at --threads {threads}");
                assert_eq!(
                    m1.headline, manifest.headline,
                    "headline values differ at --threads {threads}"
                );
            }
        }
    }
    let (_, m) = seen.unwrap();
    assert!(
        m.headline.contains_key("traxtent_p99_gain_hiload"),
        "summary headline present"
    );
    fs::remove_dir_all(&base).unwrap();
}

#[test]
fn sample_trace_replay_matches_hand_computed_completions() {
    // traces/sample.trc holds 2000 requests arriving roughly every 30 ms
    // (~33 req/s) against a ~13 ms random track-sized service time —
    // utilization ~0.45, so the 128-deep admission queue can never fill:
    // by hand, completions = 2000 and rejections = 0, for every policy.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../traces/sample.trc");
    let text = fs::read_to_string(path).expect("committed trace exists");
    let records = parse_trace(&text).expect("committed trace parses");
    assert_eq!(records.len(), 2000, "trace length is part of the contract");

    for kind in SchedulerKind::ALL {
        let mut disk = Disk::new(models::quantum_atlas_10k_ii());
        let mut cfg = ServerConfig::new(kind);
        if kind == SchedulerKind::Traxtent {
            cfg.boundaries = Some(ConfidentBoundaries::certain(drive_boundaries(&disk)));
        }
        let res = serve(&mut disk, &records, &cfg).unwrap();
        assert_eq!(res.completed(), 2000, "{kind:?} completes every request");
        assert_eq!(res.rejected(), 0, "{kind:?} rejects nothing at this load");
        // Sanity: the server preserved request identity end to end.
        assert_eq!(res.completions.len(), records.len());
        for (c, r) in res.completions.iter().zip(&records) {
            assert_eq!(c.arrival, r.arrival);
            assert!(c.completion > c.arrival);
        }
    }
}
