//! Criterion micro-benchmarks for the library's hot paths: LBN↔physical
//! translation, drive request servicing, boundary-table queries, and the
//! traxtent allocator. These guard the performance of the building blocks
//! that every figure harness leans on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sim_disk::disk::{Disk, Request};
use sim_disk::models;
use sim_disk::SimTime;
use std::hint::black_box;
use traxtent::{Extent, TrackBoundaries, TraxtentAllocator};

fn bench_geometry(c: &mut Criterion) {
    let cfg = models::quantum_atlas_10k_ii();
    let geom = cfg.geometry;
    let cap = geom.capacity_lbns();
    c.bench_function("geometry/lbn_to_pba", |b| {
        let mut lbn = 0u64;
        b.iter(|| {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(1)) % cap;
            black_box(geom.lbn_to_pba(black_box(lbn)).unwrap())
        })
    });
    // Streaming translation: the last-track hint should make this nearly
    // free compared to the random case above.
    c.bench_function("geometry/lbn_to_pba_sequential", |b| {
        let mut lbn = 0u64;
        b.iter(|| {
            lbn = (lbn + 1) % cap;
            black_box(geom.lbn_to_pba(black_box(lbn)).unwrap())
        })
    });
    c.bench_function("geometry/track_of_lbn_random", |b| {
        let mut lbn = 0u64;
        b.iter(|| {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(1)) % cap;
            black_box(geom.track_of_lbn(black_box(lbn)).unwrap())
        })
    });
    c.bench_function("geometry/track_of_lbn_sequential", |b| {
        let mut lbn = 0u64;
        b.iter(|| {
            lbn = (lbn + 1) % cap;
            black_box(geom.track_of_lbn(black_box(lbn)).unwrap())
        })
    });
    c.bench_function("geometry/track_bounds", |b| {
        let mut lbn = 0u64;
        b.iter(|| {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(1)) % cap;
            black_box(geom.track_bounds(black_box(lbn)).unwrap())
        })
    });
}

fn bench_disk_service(c: &mut Criterion) {
    c.bench_function("disk/track_read", |b| {
        let mut disk = Disk::new(models::quantum_atlas_10k_ii());
        let mut t = SimTime::ZERO;
        let mut lbn = 0u64;
        b.iter(|| {
            lbn = (lbn + 52800) % 4_000_000;
            let done = disk.service(Request::read(lbn, 528), t);
            t = done.completion;
            black_box(done.completion)
        })
    });
    // The zero-latency access-on-arrival scan dominates full-track reads:
    // an infinite bus isolates it from bus-delivery chaining, and the
    // random stride defeats the firmware cache.
    c.bench_function("disk/zero_latency_scan", |b| {
        let cfg = sim_disk::disk::DiskConfig {
            bus: sim_disk::bus::BusConfig::infinite(),
            ..models::quantum_atlas_10k_ii()
        };
        let mut disk = Disk::new(cfg);
        let mut t = SimTime::ZERO;
        let mut lbn = 1u64;
        b.iter(|| {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(1)) % 4_000_000;
            let done = disk.service(Request::read(lbn, 528), t);
            t = done.completion;
            black_box(done.completion)
        })
    });
}

/// The zero-latency window kernel, old vs new: the per-sector reference
/// scan ([`sim_disk::rotation::window_scan`], what the service path ran
/// before the event-driven rework) against its closed-form replacement
/// ([`sim_disk::rotation::window_closed`]). Both produce bit-identical
/// results; only the cost differs — this pair pins the gap.
fn bench_rotation(c: &mut Criterion) {
    let cfg = models::quantum_atlas_10k_ii();
    let geom = cfg.geometry;
    let track = geom.track(0);
    let spt = track.spt();
    c.bench_function("rotation/window_scan_ref", |b| {
        let mut angle = 0.1234_f64;
        b.iter(|| {
            angle += 0.000_37;
            if angle >= 1.0 {
                angle -= 1.0;
            }
            black_box(sim_disk::rotation::window_scan(
                track,
                black_box(angle),
                0,
                spt,
            ))
        })
    });
    c.bench_function("rotation/window_closed", |b| {
        let mut angle = 0.1234_f64;
        b.iter(|| {
            angle += 0.000_37;
            if angle >= 1.0 {
                angle -= 1.0;
            }
            black_box(sim_disk::rotation::window_closed(
                track,
                black_box(angle),
                0,
                spt,
            ))
        })
    });
}

fn bench_boundaries(c: &mut Criterion) {
    let tb = TrackBoundaries::uniform(52_014, 440);
    c.bench_function("boundaries/clip_to_track", |b| {
        let mut lbn = 0u64;
        b.iter(|| {
            lbn = (lbn.wrapping_mul(2862933555777941757).wrapping_add(3)) % tb.capacity();
            black_box(tb.clip_to_track(black_box(lbn), 528))
        })
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("alloc/traxtent_alloc_free", |b| {
        let tb = TrackBoundaries::uniform(4096, 440);
        b.iter_batched(
            || TraxtentAllocator::new(tb.clone()),
            |mut a| {
                let mut got: Vec<Extent> = Vec::new();
                for i in 0..64 {
                    if let Some(e) = a.alloc_traxtent(i * 8111) {
                        got.push(e);
                    }
                }
                for e in got {
                    a.free(e);
                }
                black_box(a.free_sectors())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_geometry,
    bench_disk_service,
    bench_rotation,
    bench_boundaries,
    bench_allocator
);
criterion_main!(benches);
