//! Run manifests: the machine-readable record a figure binary leaves behind.
//!
//! With `--manifest <dir>`, every figure binary writes `<dir>/<figure>.json`
//! capturing how the run was configured (quick mode, seed, thread count,
//! git revision), how long it took, the figure's *headline* result values
//! (the handful of numbers a reader would quote from the figure), and a
//! snapshot of the [`traxtent::obs`] metrics the upper stack exported.
//!
//! Manifests are the durable per-PR artifact behind the regression workflow:
//! `results/baseline/` holds a committed reference run, and the `bench_diff`
//! binary (see [`crate::diff`]) compares a fresh `results/manifest/` tree
//! against it with configurable tolerances.
//!
//! The workspace vendors only a stub `serde`, so JSON is written and parsed
//! by hand here, the same way `sim_disk::trace` does for trace events. The
//! format is a fixed-shape object:
//!
//! ```json
//! {
//!   "figure": "fig1",
//!   "quick": true,
//!   "seed": 24301,
//!   "threads": 4,
//!   "git_rev": "ade8bdc",
//!   "wall_secs": 1.52,
//!   "headline": {"aligned_eff_at_track": 0.73},
//!   "metrics": {"workloads.requests": 40000}
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;
use traxtent::obs::{Registry, Snapshot};

/// One run's manifest: configuration, cost, headline results, and metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Figure name, e.g. `fig6` or `fig6_writes` — also the file stem.
    pub figure: String,
    /// Whether the run used `--quick` sample counts.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads used.
    pub threads: usize,
    /// `git rev-parse --short HEAD` at run time, or `unknown`.
    pub git_rev: String,
    /// Wall-clock duration of the run, seconds.
    pub wall_secs: f64,
    /// The figure's headline result values, keyed by a stable name.
    pub headline: BTreeMap<String, f64>,
    /// Counter/gauge snapshot exported by the layers the run exercised.
    pub metrics: BTreeMap<String, u64>,
    /// Named time-series: one row of named values per sampling window
    /// (see `server::timeline`). Serialized only when non-empty, so
    /// manifests without telemetry keep their historical byte shape.
    pub timeline: BTreeMap<String, Vec<BTreeMap<String, f64>>>,
}

impl Manifest {
    /// An empty manifest for `figure` with the given run configuration.
    pub fn new(figure: &str, quick: bool, seed: u64, threads: usize) -> Self {
        Manifest {
            figure: figure.to_string(),
            quick,
            seed,
            threads,
            git_rev: "unknown".to_string(),
            wall_secs: 0.0,
            headline: BTreeMap::new(),
            metrics: BTreeMap::new(),
            timeline: BTreeMap::new(),
        }
    }

    /// Serializes the manifest as pretty-printed JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"figure\": {},", json_string(&self.figure));
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"git_rev\": {},", json_string(&self.git_rev));
        let _ = writeln!(out, "  \"wall_secs\": {},", json_f64(self.wall_secs));
        let _ = writeln!(out, "  \"headline\": {},", {
            let mut obj = String::from("{");
            for (i, (k, v)) in self.headline.iter().enumerate() {
                if i > 0 {
                    obj.push_str(", ");
                }
                let _ = write!(obj, "{}: {}", json_string(k), json_f64(*v));
            }
            obj.push('}');
            obj
        });
        let _ = writeln!(
            out,
            "  \"metrics\": {}{}",
            {
                let mut obj = String::from("{");
                for (i, (k, v)) in self.metrics.iter().enumerate() {
                    if i > 0 {
                        obj.push_str(", ");
                    }
                    let _ = write!(obj, "{}: {}", json_string(k), v);
                }
                obj.push('}');
                obj
            },
            if self.timeline.is_empty() { "" } else { "," }
        );
        if !self.timeline.is_empty() {
            out.push_str("  \"timeline\": {\n");
            for (i, (name, rows)) in self.timeline.iter().enumerate() {
                let _ = writeln!(out, "    {}: [", json_string(name),);
                for (j, row) in rows.iter().enumerate() {
                    let mut obj = String::from("{");
                    for (k, (key, v)) in row.iter().enumerate() {
                        if k > 0 {
                            obj.push_str(", ");
                        }
                        let _ = write!(obj, "{}: {}", json_string(key), json_f64(*v));
                    }
                    obj.push('}');
                    let _ = writeln!(
                        out,
                        "      {obj}{}",
                        if j + 1 < rows.len() { "," } else { "" }
                    );
                }
                let _ = writeln!(
                    out,
                    "    ]{}",
                    if i + 1 < self.timeline.len() { "," } else { "" }
                );
            }
            out.push_str("  }\n");
        }
        out.push_str("}\n");
        out
    }

    /// Parses a manifest serialized by [`Manifest::to_json`]. Unknown keys
    /// are ignored so the format can grow; missing keys keep their
    /// [`Manifest::new`] defaults except `figure`, which is required.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("manifest is not a JSON object")?;
        let mut m = Manifest::new("", false, 0, 1);
        for (key, v) in obj {
            match key.as_str() {
                "figure" => m.figure = v.as_str().ok_or("figure must be a string")?.to_string(),
                "quick" => m.quick = v.as_bool().ok_or("quick must be a bool")?,
                "seed" => m.seed = v.as_u64().ok_or("seed must be an integer")?,
                "threads" => {
                    m.threads = v.as_u64().ok_or("threads must be an integer")? as usize;
                }
                "git_rev" => {
                    m.git_rev = v.as_str().ok_or("git_rev must be a string")?.to_string();
                }
                "wall_secs" => m.wall_secs = v.as_f64().ok_or("wall_secs must be a number")?,
                "headline" => {
                    let h = v.as_object().ok_or("headline must be an object")?;
                    for (k, hv) in h {
                        let num = hv.as_f64().ok_or("headline values must be numbers")?;
                        m.headline.insert(k.clone(), num);
                    }
                }
                "metrics" => {
                    let mm = v.as_object().ok_or("metrics must be an object")?;
                    for (k, mv) in mm {
                        let num = mv.as_u64().ok_or("metric values must be integers")?;
                        m.metrics.insert(k.clone(), num);
                    }
                }
                "timeline" => {
                    let tl = v.as_object().ok_or("timeline must be an object")?;
                    for (name, series) in tl {
                        let rows = series.as_array().ok_or("timeline series must be arrays")?;
                        let mut parsed = Vec::with_capacity(rows.len());
                        for row in rows {
                            let obj = row.as_object().ok_or("timeline rows must be objects")?;
                            let mut map = BTreeMap::new();
                            for (k, rv) in obj {
                                let num = rv.as_f64().ok_or("timeline values must be numbers")?;
                                map.insert(k.clone(), num);
                            }
                            parsed.push(map);
                        }
                        m.timeline.insert(name.clone(), parsed);
                    }
                }
                _ => {}
            }
        }
        if m.figure.is_empty() {
            return Err("manifest has no figure name".into());
        }
        Ok(m)
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        Self::parse_json(&text).map_err(|e| format!("`{}`: {e}", path.display()))
    }

    /// Loads every `*.json` manifest under `dir`, keyed by figure name.
    pub fn load_dir(dir: &Path) -> Result<BTreeMap<String, Manifest>, String> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read directory `{}`: {e}", dir.display()))?;
        let mut out = BTreeMap::new();
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.extension().is_some_and(|e| e == "json") {
                let m = Manifest::load(&path)?;
                out.insert(m.figure.clone(), m);
            }
        }
        Ok(out)
    }

    /// Writes the manifest to `<dir>/<figure>.json`, creating `dir` first.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.figure));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Records one figure binary's run and writes the manifest at the end.
///
/// Binaries construct a recorder unconditionally (recording headline values
/// costs nothing), and [`Recorder::finish`] only touches the file system
/// when `--manifest <dir>` was given — so a run without the flag is
/// byte-for-byte the run it always was.
pub struct Recorder {
    manifest: Manifest,
    dir: Option<PathBuf>,
    start: Instant,
}

impl Recorder {
    /// A recorder for `figure`, writing into `dir` at the end if given.
    pub fn new(figure: &str, quick: bool, seed: u64, threads: usize, dir: Option<&str>) -> Self {
        Recorder {
            manifest: Manifest::new(figure, quick, seed, threads),
            dir: dir.map(PathBuf::from),
            start: Instant::now(),
        }
    }

    /// Records one headline result value.
    pub fn headline(&mut self, key: &str, value: f64) {
        self.manifest.headline.insert(key.to_string(), value);
    }

    /// Records one named time-series (one row of named values per window).
    pub fn timeline(&mut self, name: &str, rows: Vec<BTreeMap<String, f64>>) {
        self.manifest.timeline.insert(name.to_string(), rows);
    }

    /// Stamps wall time and the registry snapshot, then writes the manifest
    /// if a directory was requested. Returns the path written, if any.
    ///
    /// # Panics
    ///
    /// Panics if the manifest file cannot be written.
    pub fn finish(mut self, registry: &Registry) -> Option<PathBuf> {
        let dir = self.dir.take()?;
        self.manifest.wall_secs = self.start.elapsed().as_secs_f64();
        self.manifest.git_rev = git_rev();
        self.manifest.metrics = snapshot_map(&registry.snapshot());
        let path = self
            .manifest
            .write_to(&dir)
            .unwrap_or_else(|e| panic!("cannot write manifest into `{}`: {e}", dir.display()));
        Some(path)
    }
}

/// A [`Snapshot`]'s entries as an owned map.
fn snapshot_map(snap: &Snapshot) -> BTreeMap<String, u64> {
    snap.entries().iter().cloned().collect()
}

/// The working tree's short revision, or `unknown` outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Quotes and escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` so it round-trips through [`json::parse`].
///
/// # Panics
///
/// Panics on NaN or infinity — headline values are always finite.
fn json_f64(v: f64) -> String {
    assert!(v.is_finite(), "manifest values must be finite, got {v}");
    let s = format!("{v}");
    // `Display` omits the decimal point for integral values; keep it so the
    // value reads back as the number it is in any JSON tooling.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// A minimal JSON reader for the manifest's fixed shape: objects, arrays
/// (the `timeline` section), strings, numbers, and booleans (`null` is
/// rejected — manifests never contain it). Public so report binaries can
/// validate other machine-readable artifacts (the Chrome trace export)
/// without a JSON dependency.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `true` / `false`.
        Bool(bool),
        /// A number, kept as its source text so integers round-trip exactly.
        Num(String),
        /// A string literal, unescaped.
        Str(String),
        /// An object; insertion order is irrelevant to manifests.
        Obj(BTreeMap<String, Value>),
        /// An array — only the `timeline` section carries them.
        Arr(Vec<Value>),
    }

    impl Value {
        /// The boolean payload, if this is a [`Value::Bool`].
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The string payload, if this is a [`Value::Str`].
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The number parsed as `u64`, if this is an integral [`Value::Num`].
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        /// The number parsed as `f64`, if this is a [`Value::Num`].
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        /// The key/value map, if this is a [`Value::Obj`].
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }

        /// The element slice, if this is a [`Value::Arr`].
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Parses `text` as one JSON value followed only by whitespace.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        at: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.at)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.at += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.at).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.at += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.at))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') | Some(b'f') => self.boolean(),
                Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
                Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.at)),
                None => Err("unexpected end of input".into()),
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.at += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.at += 1,
                    Some(b']') => {
                        self.at += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.at += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let v = self.value()?;
                map.insert(key, v);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.at += 1,
                    Some(b'}') => {
                        self.at += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.at += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.at += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.at + 1..self.at + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(
                                    char::from_u32(code).ok_or("invalid \\u escape codepoint")?,
                                );
                                self.at += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.at)),
                        }
                        self.at += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar, not one byte. Decode
                        // from a 4-byte window — validating the whole tail
                        // here would make parsing quadratic in input size.
                        let end = (self.at + 4).min(self.bytes.len());
                        let chunk = &self.bytes[self.at..end];
                        let c = match std::str::from_utf8(chunk) {
                            Ok(s) => s.chars().next().ok_or("unterminated string")?,
                            Err(e) if e.valid_up_to() > 0 => {
                                std::str::from_utf8(&chunk[..e.valid_up_to()])
                                    .expect("validated prefix")
                                    .chars()
                                    .next()
                                    .ok_or("unterminated string")?
                            }
                            Err(e) => return Err(e.to_string()),
                        };
                        out.push(c);
                        self.at += c.len_utf8();
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn boolean(&mut self) -> Result<Value, String> {
            if self.bytes[self.at..].starts_with(b"true") {
                self.at += 4;
                Ok(Value::Bool(true))
            } else if self.bytes[self.at..].starts_with(b"false") {
                self.at += 5;
                Ok(Value::Bool(false))
            } else {
                Err(format!("expected boolean at byte {}", self.at))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.at;
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.at += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.at])
                .map_err(|e| e.to_string())?
                .to_string();
            // Validate it parses as a number at all.
            text.parse::<f64>()
                .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
            Ok(Value::Num(text))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new("fig1", true, 0x5eed, 4);
        m.git_rev = "abc1234".into();
        m.wall_secs = 1.5;
        m.headline.insert("aligned_eff".into(), 0.7312);
        m.headline.insert("unaligned_eff".into(), 0.51);
        m.metrics.insert("workloads.requests".into(), 40000);
        m
    }

    #[test]
    fn json_round_trips() {
        let m = sample();
        let back = Manifest::parse_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn round_trips_awkward_values() {
        let mut m = sample();
        m.figure = "fig\"6_writes\\".into();
        m.seed = u64::MAX;
        m.wall_secs = 0.1 + 0.2; // not exactly representable
        m.headline.insert("tiny".into(), 1e-12);
        m.headline.insert("whole".into(), 3.0);
        m.metrics.insert("big".into(), u64::MAX);
        let back = Manifest::parse_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn timeline_round_trips_and_stays_out_of_plain_manifests() {
        let plain = sample();
        assert!(
            !plain.to_json().contains("timeline"),
            "no timeline key without telemetry"
        );
        let mut m = sample();
        let row = |start: f64, done: f64| {
            let mut r = BTreeMap::new();
            r.insert("start_ms".to_string(), start);
            r.insert("completed".to_string(), done);
            r.insert("p99_ms".to_string(), 17.25);
            r
        };
        m.timeline
            .insert("clook_s6".into(), vec![row(0.0, 41.0), row(200.0, 38.0)]);
        m.timeline.insert("empty_series".into(), Vec::new());
        let back = Manifest::parse_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Manifest::parse_json("").is_err());
        assert!(Manifest::parse_json("[1, 2]").is_err());
        assert!(Manifest::parse_json("{\"figure\": \"x\"} trailing").is_err());
        assert!(
            Manifest::parse_json("{\"quick\": true}").is_err(),
            "no figure"
        );
        let truncated = &sample().to_json()[..40];
        assert!(Manifest::parse_json(truncated).is_err());
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let m = Manifest::parse_json("{\"figure\": \"f\", \"future_field\": 1.25}").unwrap();
        assert_eq!(m.figure, "f");
    }

    #[test]
    fn write_load_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("traxtent-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = sample();
        let path = m.write_to(&dir).unwrap();
        assert_eq!(path, dir.join("fig1.json"));
        let loaded = Manifest::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded["fig1"], m);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recorder_writes_only_when_asked() {
        let reg = Registry::new();
        reg.add("a.count", 3);
        let silent = Recorder::new("figX", true, 1, 1, None);
        assert_eq!(silent.finish(&reg), None);

        let dir = std::env::temp_dir().join(format!("traxtent-recorder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rec = Recorder::new("figX", true, 1, 2, dir.to_str());
        rec.headline("value", 42.0);
        let path = rec.finish(&reg).expect("manifest written");
        let m = Manifest::load(&path).unwrap();
        assert_eq!(m.figure, "figX");
        assert_eq!(m.threads, 2);
        assert_eq!(m.headline["value"], 42.0);
        assert_eq!(m.metrics["a.count"], 3);
        assert!(m.wall_secs >= 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
