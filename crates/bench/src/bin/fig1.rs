//! Figure 1: measured disk efficiency vs I/O size for random track-aligned
//! and unaligned reads within the Quantum Atlas 10K II's first zone
//! (264 KB per track), with the analytic model and the maximum streaming
//! efficiency as references.
//!
//! Points A and B of the paper: track-aligned efficiency ≈ 0.73 at one
//! track (≈ 82 % of the streaming maximum), while unaligned access needs
//! ≈ 1 MB to catch up.

use sim_disk::disk::Disk;
use sim_disk::models;
use traxtent::model::DiskParams;
use traxtent_bench::{header, row, row_string, Cli};
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("fig1");
    let count = if cli.quick { 300 } else { 2000 };
    let cfg = probe.wrap(models::quantum_atlas_10k_ii());
    let track = cfg.geometry.track(0).lbn_count() as u64; // 528 sectors
    let params = DiskParams {
        rev_ms: cfg.spindle.revolution().as_millis_f64(),
        avg_seek_ms: 2.2,
        head_switch_ms: cfg.head_switch.as_millis_f64(),
        spt: track as u32,
        zero_latency: true,
    };

    header("Figure 1: disk efficiency vs I/O size (Atlas 10K II, zone 0)");
    println!(
        "max streaming efficiency: {:.3}",
        params.max_streaming_efficiency()
    );
    row([
        "KB".into(),
        "aligned".into(),
        "unaligned".into(),
        "model_aligned".into(),
        "model_unaligned".into(),
    ]);

    // Sweep: fractions of a track up to 8 tracks (≈ 2 MB), plus the
    // paper's Point A as a final job.
    let sizes: Vec<u64> = (1..=4)
        .map(|k| k * track / 4)
        .chain((2..=8).map(|k| k * track))
        .collect();
    let measure = |io, alignment| {
        let spec = RandomIoSpec {
            count,
            seed: cli.seed,
            ..RandomIoSpec::reads(io, alignment, QueueDepth::Two)
        };
        let r = run_random_io(&mut Disk::new(cfg.clone()), &spec);
        r.export_metrics(&reg, QueueDepth::Two);
        r.efficiency(QueueDepth::Two)
    };

    let mut jobs: Vec<Option<u64>> = sizes.into_iter().map(Some).collect();
    jobs.push(None); // Point A
    let results = cli.executor().run(jobs, |_, job| match job {
        Some(io) => {
            let aligned = measure(io, Alignment::TrackAligned);
            let unaligned = measure(io, Alignment::Unaligned);
            let line = row_string([
                format!("{}", io * 512 / 1024),
                format!("{aligned:.3}"),
                format!("{unaligned:.3}"),
                format!("{:.3}", params.aligned_efficiency(io)),
                format!("{:.3}", params.unaligned_efficiency(io)),
            ]);
            (line, (io == track).then_some((aligned, unaligned)))
        }
        None => {
            let a = measure(track, Alignment::TrackAligned);
            let line = format!(
                "Point A: track-aligned @ 1 track = {:.3} ({:.0}% of max; paper: 0.73, 82%)",
                a,
                100.0 * a / params.max_streaming_efficiency()
            );
            (line, None)
        }
    });
    rec.headline("max_streaming_eff", params.max_streaming_efficiency());
    for (line, at_track) in results {
        if let Some((aligned, unaligned)) = at_track {
            rec.headline("aligned_eff_at_track", aligned);
            rec.headline("unaligned_eff_at_track", unaligned);
        }
        println!("{line}");
    }
    probe.finish();
    rec.finish(&reg);
}
