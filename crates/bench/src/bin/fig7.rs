//! Figure 7: breakdown of measured response time for a track-sized read on
//! a zero-latency disk — normal (unaligned) access vs track-aligned access
//! vs the hypothetical out-of-order bus delivery.

use sim_disk::bus::BusConfig;
use sim_disk::disk::{Disk, DiskConfig};
use sim_disk::models;
use traxtent_bench::{header, row, Cli};
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

fn main() {
    let cli = Cli::parse();
    let count = if cli.quick { 300 } else { 2000 };
    let cfg = models::quantum_atlas_10k_ii();
    let track = cfg.geometry.track(0).lbn_count() as u64;

    header("Figure 7: response-time breakdown, track-sized reads (ms)");
    row([
        "access".into(),
        "seek".into(),
        "rot_latency+switch+media".into(),
        "bus_tail".into(),
        "total_response".into(),
    ]);

    let show = |label: &str, disk: &mut Disk, alignment| {
        let spec = RandomIoSpec {
            count,
            seed: cli.seed,
            ..RandomIoSpec::reads(track, alignment, QueueDepth::One)
        };
        let r = run_random_io(disk, &spec);
        let seek = r.mean_component_ms(|c| c.breakdown.seek);
        let mid = r.mean_component_ms(|c| c.breakdown.rot_latency)
            + r.mean_component_ms(|c| c.breakdown.head_switch)
            + r.mean_component_ms(|c| c.breakdown.media);
        let bus = r.mean_component_ms(|c| c.breakdown.bus);
        row([
            label.to_string(),
            format!("{seek:.2}"),
            format!("{mid:.2}"),
            format!("{bus:.2}"),
            format!("{:.2}", r.mean_response().as_millis_f64()),
        ]);
    };

    let mut normal = Disk::new(cfg.clone());
    show("normal (unaligned)", &mut normal, Alignment::Unaligned);
    let mut aligned = Disk::new(cfg.clone());
    show("track-aligned", &mut aligned, Alignment::TrackAligned);
    let mut ooo = Disk::new(DiskConfig { bus: BusConfig::out_of_order(160.0), ..cfg });
    show("aligned + out-of-order bus", &mut ooo, Alignment::TrackAligned);

    println!("paper: normal ≈ 12.0 ms; aligned ≈ 9.2 ms; out-of-order delivery overlaps the bus tail");
}
