//! Figure 7: breakdown of measured response time for a track-sized read on
//! a zero-latency disk — normal (unaligned) access vs track-aligned access
//! vs the hypothetical out-of-order bus delivery.

use sim_disk::bus::BusConfig;
use sim_disk::disk::{Disk, DiskConfig};
use sim_disk::models;
use traxtent_bench::{header, row, row_string, Cli};
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("fig7");
    let count = if cli.quick { 300 } else { 2000 };
    let cfg = probe.wrap(models::quantum_atlas_10k_ii());
    let track = cfg.geometry.track(0).lbn_count() as u64;

    header("Figure 7: response-time breakdown, track-sized reads (ms)");
    row([
        "access".into(),
        "seek".into(),
        "rot_latency+switch+media".into(),
        "bus_tail".into(),
        "total_response".into(),
    ]);

    let accesses: Vec<(&str, &str, bool, Alignment)> = vec![
        (
            "normal (unaligned)",
            "normal_ms",
            false,
            Alignment::Unaligned,
        ),
        (
            "track-aligned",
            "aligned_ms",
            false,
            Alignment::TrackAligned,
        ),
        (
            "aligned + out-of-order bus",
            "ooo_bus_ms",
            true,
            Alignment::TrackAligned,
        ),
    ];
    let results = cli
        .executor()
        .run(accesses, |_, (label, key, ooo_bus, alignment)| {
            let mut disk = if ooo_bus {
                Disk::new(DiskConfig {
                    bus: BusConfig::out_of_order(160.0),
                    ..cfg.clone()
                })
            } else {
                Disk::new(cfg.clone())
            };
            let spec = RandomIoSpec {
                count,
                seed: cli.seed,
                ..RandomIoSpec::reads(track, alignment, QueueDepth::One)
            };
            let r = run_random_io(&mut disk, &spec);
            r.export_metrics(&reg, QueueDepth::One);
            let seek = r.mean_component_ms(|c| c.breakdown.seek);
            let mid = r.mean_component_ms(|c| c.breakdown.rot_latency)
                + r.mean_component_ms(|c| c.breakdown.head_switch)
                + r.mean_component_ms(|c| c.breakdown.media);
            let bus = r.mean_component_ms(|c| c.breakdown.bus);
            let response = r.mean_response().as_millis_f64();
            let line = row_string([
                label.to_string(),
                format!("{seek:.2}"),
                format!("{mid:.2}"),
                format!("{bus:.2}"),
                format!("{response:.2}"),
            ]);
            (line, key, response)
        });
    for (line, key, response) in results {
        rec.headline(key, response);
        println!("{line}");
    }

    println!(
        "paper: normal ≈ 12.0 ms; aligned ≈ 9.2 ms; out-of-order delivery overlaps the bus tail"
    );
    probe.finish();
    rec.finish(&reg);
}
