//! Table 2: FreeBSD FFS application results for the unmodified, fast-start,
//! and traxtent-aware personalities on the Quantum Atlas 10K.
//!
//! `--quick` scales the large-file sizes down 8× (ratios are preserved —
//! these workloads are streaming-dominated).

use ffs::{FileSystem, Personality};
use sim_disk::disk::Disk;
use sim_disk::models;
use traxtent_bench::{header, row, Cli};
use workloads::apps;

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

const APPS: usize = 6;
const PERSONALITIES: [Personality; 3] = [
    Personality::Unmodified,
    Personality::FastStart,
    Personality::Traxtent,
];

/// Manifest key stems for the six applications, in column order.
const APP_KEYS: [&str; APPS] = [
    "scan_s",
    "diff_s",
    "copy_s",
    "postmark_tps",
    "ssh_build_s",
    "head_star_s",
];

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("table2");
    let scale = if cli.quick { 8 } else { 1 };
    let (scan_bytes, diff_bytes, copy_bytes) = (4 * GB / scale, 512 * MB / scale, GB / scale);
    let (pm_files, pm_tx) = if cli.quick { (120, 400) } else { (500, 2000) };
    let head_files = if cli.quick { 200 } else { 1000 };

    header("Table 2: FFS application benchmarks (Quantum Atlas 10K)");
    row([
        "FFS".into(),
        format!("{}GB scan (s)", 4 / scale.min(4)),
        "diff (s)".into(),
        "copy (s)".into(),
        "Postmark (tr/s)".into(),
        "SSH-build (s)".into(),
        "head* (s)".into(),
    ]);

    // One job per (personality, application) cell; every application run
    // formats its own fresh file system, so cells are independent.
    let jobs: Vec<(Personality, usize)> = PERSONALITIES
        .iter()
        .flat_map(|&p| (0..APPS).map(move |a| (p, a)))
        .collect();
    let cells = cli.executor().run(jobs, |_, (p, app)| {
        let mut fs = FileSystem::format(Disk::new(probe.wrap(models::quantum_atlas_10k())), p);
        let name = APP_KEYS[app].rsplit_once('_').expect("stem_unit").0;
        let (text, value) = match app {
            0 => {
                let r = apps::scan(&mut fs, scan_bytes, 64 * 1024);
                r.export_metrics(&reg, name);
                let s = r.elapsed.as_secs_f64();
                (format!("{s:.1}"), s)
            }
            1 => {
                let r = apps::diff(&mut fs, diff_bytes, 64 * 1024);
                r.export_metrics(&reg, name);
                let s = r.elapsed.as_secs_f64();
                (format!("{s:.1}"), s)
            }
            2 => {
                let r = apps::copy(&mut fs, copy_bytes, 64 * 1024);
                r.export_metrics(&reg, name);
                let s = r.elapsed.as_secs_f64();
                (format!("{s:.1}"), s)
            }
            3 => {
                let (r, tps) = apps::postmark(&mut fs, pm_files, pm_tx, cli.seed);
                r.export_metrics(&reg, name);
                (format!("{tps:.0}"), tps)
            }
            4 => {
                let r = apps::ssh_build(&mut fs, cli.seed);
                r.export_metrics(&reg, name);
                let s = r.elapsed.as_secs_f64();
                (format!("{s:.1}"), s)
            }
            _ => {
                let r = apps::head_star(&mut fs, head_files, 200 * 1024);
                r.export_metrics(&reg, name);
                let s = r.elapsed.as_secs_f64();
                (format!("{s:.1}"), s)
            }
        };
        fs.export_metrics(&reg);
        (text, value)
    });

    for (i, p) in PERSONALITIES.iter().enumerate() {
        let r = &cells[i * APPS..(i + 1) * APPS];
        let mut cols = vec![format!("{p:?}")];
        cols.extend(r.iter().map(|(text, _)| text.clone()));
        row(cols);
        let personality = format!("{p:?}").to_lowercase();
        for (key, (_, value)) in APP_KEYS.iter().zip(r) {
            rec.headline(&format!("{key}_{personality}"), *value);
        }
    }
    println!(
        "paper (unmodified / fast start / traxtents): scan 189.6/188.9/199.8, diff 69.7/70.0/56.6, \
         copy 156.9/155.3/124.9, Postmark 53/53/55, SSH-build 72.0/71.5/71.5, head* 4.6/5.5/5.2"
    );
    probe.finish();
    rec.finish(&reg);
}
