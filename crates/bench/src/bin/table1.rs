//! Table 1: representative disk characteristics, printed from the model
//! presets alongside what the built geometries actually provide.

use sim_disk::models;
use traxtent_bench::{header, row};

fn main() {
    header("Table 1: representative disk characteristics");
    row([
        "Disk".into(),
        "Year".into(),
        "RPM".into(),
        "HeadSwitch".into(),
        "AvgSeek".into(),
        "SectorsPerTrack".into(),
        "Tracks".into(),
        "Capacity".into(),
        "BuiltCapacityGB".into(),
    ]);
    for sheet in models::table1_sheets() {
        let cfg = sheet.build();
        let built_gb = cfg.geometry.capacity_lbns() as f64 * 512.0 / 1e9;
        row([
            sheet.name.to_string(),
            sheet.year.to_string(),
            sheet.rpm.to_string(),
            format!("{:.1} ms", sheet.head_switch_ms),
            format!("{:.1} ms", sheet.avg_seek_ms),
            format!("{}–{}", sheet.spt_outer, sheet.spt_inner),
            cfg.geometry.num_tracks().to_string(),
            format!("{:.1} GB", sheet.capacity_gb),
            format!("{built_gb:.1}"),
        ]);
    }
}
