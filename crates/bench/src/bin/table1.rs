//! Table 1: representative disk characteristics, printed from the model
//! presets alongside what the built geometries actually provide.

use sim_disk::models;
use traxtent_bench::{header, row, row_string, Cli};

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("table1");
    header("Table 1: representative disk characteristics");
    row([
        "Disk".into(),
        "Year".into(),
        "RPM".into(),
        "HeadSwitch".into(),
        "AvgSeek".into(),
        "SectorsPerTrack".into(),
        "Tracks".into(),
        "Capacity".into(),
        "BuiltCapacityGB".into(),
    ]);
    // Building a full geometry is the expensive part; build each sheet's in
    // its own job.
    let results = cli.executor().run(models::table1_sheets(), |_, sheet| {
        let cfg = probe.wrap(sheet.build());
        let built_gb = cfg.geometry.capacity_lbns() as f64 * 512.0 / 1e9;
        reg.add("bench.table1.drives_built", 1);
        reg.add(
            "bench.table1.tracks_built",
            cfg.geometry.num_tracks() as u64,
        );
        let line = row_string([
            sheet.name.to_string(),
            sheet.year.to_string(),
            sheet.rpm.to_string(),
            format!("{:.1} ms", sheet.head_switch_ms),
            format!("{:.1} ms", sheet.avg_seek_ms),
            format!("{}–{}", sheet.spt_outer, sheet.spt_inner),
            cfg.geometry.num_tracks().to_string(),
            format!("{:.1} GB", sheet.capacity_gb),
            format!("{built_gb:.1}"),
        ]);
        (line, built_gb)
    });
    let mut total_gb = 0.0;
    for (line, built_gb) in results {
        total_gb += built_gb;
        println!("{line}");
    }
    rec.headline("total_built_gb", total_gb);
    probe.finish();
    rec.finish(&reg);
}
