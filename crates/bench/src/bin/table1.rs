//! Table 1: representative disk characteristics, printed from the model
//! presets alongside what the built geometries actually provide.

use sim_disk::models;
use traxtent_bench::{header, row, row_string, Cli};

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    header("Table 1: representative disk characteristics");
    row([
        "Disk".into(),
        "Year".into(),
        "RPM".into(),
        "HeadSwitch".into(),
        "AvgSeek".into(),
        "SectorsPerTrack".into(),
        "Tracks".into(),
        "Capacity".into(),
        "BuiltCapacityGB".into(),
    ]);
    // Building a full geometry is the expensive part; build each sheet's in
    // its own job.
    let lines = cli.executor().run(models::table1_sheets(), |_, sheet| {
        let cfg = probe.wrap(sheet.build());
        let built_gb = cfg.geometry.capacity_lbns() as f64 * 512.0 / 1e9;
        row_string([
            sheet.name.to_string(),
            sheet.year.to_string(),
            sheet.rpm.to_string(),
            format!("{:.1} ms", sheet.head_switch_ms),
            format!("{:.1} ms", sheet.avg_seek_ms),
            format!("{}–{}", sheet.spt_outer, sheet.spt_inner),
            cfg.geometry.num_tracks().to_string(),
            format!("{:.1} GB", sheet.capacity_gb),
            format!("{built_gb:.1}"),
        ])
    });
    for line in lines {
        println!("{line}");
    }
    probe.finish();
}
