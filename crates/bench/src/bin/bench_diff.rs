//! Compares two manifest directories and fails on regressions.
//!
//! ```text
//! bench_diff results/baseline results/manifest
//! bench_diff results/baseline results/manifest --tol 0.05 --wall-tol 2.0
//! bench_diff results/baseline results/manifest --only replay_synthetic --wall-tol 3.0
//! ```
//!
//! Every figure present in the baseline must appear in the current run with
//! each headline value within `--tol` (relative). Wall time is reported but
//! only judged when `--wall-tol` is given (relative increase). `--only`
//! (repeatable) restricts the comparison to the named figures, so a gate
//! with a different tolerance — e.g. the engine-throughput smoke — can run
//! beside the strict full-set diff. Exits 0 when everything is within
//! tolerance, 1 on any regression, 2 on usage errors.

use traxtent_bench::diff::{diff_dirs_only, Tolerances};

fn usage(name: &str) -> ! {
    eprintln!(
        "usage: {name} <baseline_dir> <current_dir> \
         [--tol <frac>] [--wall-tol <frac>] [--only <figure>]..."
    );
    std::process::exit(2);
}

fn main() {
    let name = std::env::args()
        .next()
        .unwrap_or_else(|| "bench_diff".into());
    let mut dirs: Vec<String> = Vec::new();
    let mut tol = Tolerances::default();
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--only" => {
                only.push(args.next().unwrap_or_else(|| usage(&name)));
            }
            "--tol" => {
                tol.headline_rel = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage(&name));
            }
            "--wall-tol" => {
                tol.wall_rel = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage(&name)),
                );
            }
            _ if !a.starts_with('-') && dirs.len() < 2 => dirs.push(a),
            _ => usage(&name),
        }
    }
    let [baseline, current] = dirs.as_slice() else {
        usage(&name);
    };

    match diff_dirs_only(baseline.as_ref(), current.as_ref(), &tol, &only) {
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(if report.passed() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
