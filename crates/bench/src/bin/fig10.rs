//! Figure 10: LFS overall write cost vs segment size, for track-aligned
//! and unaligned segments on the Atlas 10K II, with the Matthews et al.
//! `Tpos·BW/S + 1` model as the reference line.
//!
//! `WriteCost` comes from the cleaner simulator under the hot/cold update
//! stream; `TransferInefficiency` is measured on the simulated drive.

use lfs::cleaner::{LfsConfig, LfsSim};
use lfs::transfer_inefficiency;
use sim_disk::models;
use traxtent::model::matthews_transfer_inefficiency;
use traxtent_bench::{header, row, row_string, Cli};

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("fig10");
    let (ti_samples, updates, capacity) = if cli.quick {
        (120, 40_000, 1 << 16)
    } else {
        (400, 150_000, 1 << 18)
    };
    let cfg = probe.wrap(models::quantum_atlas_10k_ii());
    let track = cfg.geometry.track(0).lbn_count() as u64; // 528 sectors = 264 KB

    header("Figure 10: LFS overall write cost vs segment size (Atlas 10K II)");
    row([
        "segment_KB".into(),
        "write_cost".into(),
        "TI_aligned".into(),
        "TI_unaligned".into(),
        "OWC_aligned".into(),
        "OWC_unaligned".into(),
        "OWC_model(5.2ms*40MB/s)".into(),
    ]);

    // 32 KB … 4 MB, plus the exact track size.
    let mut sizes: Vec<u64> = (0..8).map(|k| 64u64 << k).collect(); // sectors
    sizes.push(track);
    sizes.sort_unstable();
    let results = cli.executor().run(sizes, |_, sectors| {
        let lfs_cfg = LfsConfig {
            seed: cli.seed,
            ..LfsConfig::default()
        };
        // Keep at least 32 segments regardless of segment size so the
        // cleaning reserve stays feasible, and scale the update count with
        // capacity so every point reaches cleaning steady state.
        let cap = capacity.max(sectors * 32);
        let upd = updates.max(cap * 2);
        let mut sim = LfsSim::fixed(cap, sectors, lfs_cfg);
        let wc = sim
            .run_updates(upd)
            .expect("steady-state workload never breaks segment accounting")
            .write_cost();
        sim.export_metrics(&reg);
        let ti_a = transfer_inefficiency(&cfg, sectors, true, ti_samples, cli.seed);
        let ti_u = transfer_inefficiency(&cfg, sectors, false, ti_samples, cli.seed);
        let model = matthews_transfer_inefficiency(5.2e-3, 40e6, sectors as f64 * 512.0);
        let line = row_string([
            format!("{}", sectors * 512 / 1024),
            format!("{wc:.2}"),
            format!("{ti_a:.2}"),
            format!("{ti_u:.2}"),
            format!("{:.2}", wc * ti_a),
            format!("{:.2}", wc * ti_u),
            format!("{:.2}", wc * model),
        ]);
        (sectors, line, (wc * ti_a, wc * ti_u))
    });

    let mut at_track = (0.0, 0.0);
    for (sectors, line, owc) in results {
        if sectors == track {
            at_track = owc;
        }
        println!("{line}");
    }
    println!(
        "at the track size: aligned OWC {:.2} vs unaligned {:.2} ({:.0}% lower; paper: 44% lower \
         overall write cost for track-sized segments)",
        at_track.0,
        at_track.1,
        100.0 * (1.0 - at_track.0 / at_track.1)
    );
    rec.headline("owc_aligned_at_track", at_track.0);
    rec.headline("owc_unaligned_at_track", at_track.1);
    probe.finish();
    rec.finish(&reg);
}
