//! Fleet sweep: multi-disk volumes, track-aligned vs fixed stripe units,
//! healthy vs one-member-degraded.
//!
//! ```text
//! fleet_sweep            # full grid
//! fleet_sweep --quick    # CI grid (fewer requests per cell)
//! ```
//!
//! Builds volumes — RAID-0 ×2/×4, RAID-1 ×2, RAID-5 ×3/×5 — out of
//! heterogeneous defect-laden small test drives, with each member's track
//! boundaries recovered by real `dixtrac` extraction, and serves the same
//! open-loop Poisson trace of *random whole-stripe-unit reads* — the
//! volume-level analogue of the paper's random track-sized access —
//! through the PR 7 server under two placement policies:
//!
//! * **aligned** — stripe units snapped to each member's extracted track
//!   boundaries ([`fleet::StripePolicy::aligned`]): a stripe-unit read is
//!   one whole-track member command, which the zero-latency firmware
//!   serves with no rotational latency and no head switch;
//! * **fixed** — naive 64-sector units carved with no drive knowledge:
//!   the same logical read fans out into several per-member commands,
//!   each paying command overhead, rotational latency, and possible
//!   head switches.
//!
//! The server runs the C-LOOK scheduler for every cell: the traxtent
//! batcher's one-track-per-round dispatch model is built for a single
//! serial drive, and on a multi-member volume it would idle n−1 members
//! each round; C-LOOK rounds of up to 32 commands keep every member busy,
//! so the comparison isolates stripe *geometry*, not dispatch policy.
//!
//! Every policy and health state of a given volume shape sees the
//! *identical* logical trace (the trace seed mixes in the shape only, and
//! requests are clipped to the smaller of the two layouts' capacities),
//! so latency differences are pure placement policy. Degraded cells fail
//! one member before serving: mirrors and RAID-5 reconstruct every read
//! bit-exactly (verified against the canonical fill pattern after the
//! run, and again after an in-place rebuild + scrub), while RAID-0 rows
//! report data loss. Each cell simulates independently and rows merge in
//! submission order, so stdout is byte-identical at any `--threads`.

use dixtrac::extract_auto;
use fleet::{pattern_word, StripePolicy, Volume, VolumeKind, VolumeLayout};
use scsi::ScsiDisk;
use server::{serve, DiskSpanBridge, SchedulerKind, ServerConfig, TimelineConfig};
use sim_disk::defects::{DefectPolicy, SpareScheme};
use sim_disk::disk::Disk;
use sim_disk::models;
use sim_disk::trace::{Fanout, SharedSink, Tracer};
use sim_disk::SimTime;
use std::sync::{Arc, Mutex};
use traxtent::boundaries::ConfidentBoundaries;
use traxtent::obs::span::{self, Span, SpanRecorder};
use workloads::arrivals::{poisson_trace, PoissonSpec};

/// The volume shapes on the sweep's outer axis.
const SHAPES: [(VolumeKind, usize); 5] = [
    (VolumeKind::Striped, 2),
    (VolumeKind::Striped, 4),
    (VolumeKind::Mirrored, 2),
    (VolumeKind::Raid5, 3),
    (VolumeKind::Raid5, 5),
];

/// Offered load scales with the member count: each member drive sees a
/// mean of this many stripe-unit reads per second. Sized so the aligned
/// volume cruises (a whole-track read costs one revolution plus a seek,
/// ~115 reads/s/member) while naive fixed striping — which fans each
/// stripe-unit read into ~3 partial-track commands, each paying its own
/// rotational window — runs past its knee (~43 reads/s/member).
const RATE_PER_MEMBER_RPS: f64 = 45.0;

/// The member failed in degraded cells.
const FAILED: usize = 1;

/// Post-run data verification: extents read back against the fill
/// pattern.
const VERIFY_EXTENTS: u64 = 32;
const VERIFY_SECTORS: u64 = 64;

/// Sampler window for `--timeline` cells (the fleet runs are shorter
/// than the server sweep's, so the windows are finer).
const TIMELINE_WINDOW_MS: f64 = 500.0;

/// SLO monitored on `--timeline` cells.
const SLO_THRESHOLD_MS: f64 = 60.0;
const SLO_BREACH_FRACTION: f64 = 0.05;

struct CellResult {
    line: String,
    served: bool,
    p99_ms: f64,
    verified: u64,
    scrub_mismatches: u64,
    timeline: Option<server::Timeline>,
    slo: Option<server::SloSummary>,
    spans: Vec<Span>,
}

/// Per-cell observability requests (RAID-5 aligned cells only): a
/// windowed timeline (`--timeline`) and a causal span tree (`--trace`).
#[derive(Clone, Copy)]
struct ObsOpts {
    timeline: bool,
    spans: bool,
}

fn fail_label(degraded: bool) -> &'static str {
    if degraded {
        "degraded"
    } else {
        "healthy"
    }
}

/// Builds the cell's member drives (heterogeneous defect slippage, so no
/// two members share exact track lengths) and their dixtrac-extracted
/// boundary maps.
fn build_members(
    probe: &traxtent_bench::Probe,
    n: usize,
    seed: u64,
    rec: Option<&SpanRecorder>,
) -> Vec<(Disk, ConfidentBoundaries)> {
    (0..n)
        .map(|m| {
            let mut cfg = probe.wrap(models::with_factory_defects(
                models::small_test_disk(),
                SpareScheme::SectorsPerCylinder(8),
                DefectPolicy::Slip,
                400 + 250 * m as u32,
                seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(m as u64 + 1),
            ));
            // The span bridge rides alongside any --trace/--metrics sink;
            // it only records while the volume holds a request context, so
            // the dixtrac extraction below stays invisible to it.
            if let Some(rec) = rec {
                let bridge: SharedSink = Arc::new(Mutex::new(DiskSpanBridge::new(rec.clone())));
                cfg.tracer = Some(match cfg.tracer.take() {
                    Some(t) => Tracer::from_sink(Fanout::new(vec![t.sink(), bridge])),
                    None => Tracer::new(bridge),
                });
            }
            let mut scsi = ScsiDisk::new(Disk::new(cfg.clone()));
            let map = extract_auto(&mut scsi, &dixtrac::GeneralConfig::default())
                .expect("the test drive answers diagnostics")
                .boundaries;
            (Disk::new(cfg), map)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    probe: &traxtent_bench::Probe,
    reg: &traxtent::obs::Registry,
    kind: VolumeKind,
    n: usize,
    aligned: bool,
    degraded: bool,
    requests: usize,
    seed: u64,
    cell_index: usize,
    obs: ObsOpts,
) -> CellResult {
    // A per-cell recorder with a per-cell salt, so merged span ids never
    // collide across cells and the export is identical at any --threads.
    let rec = obs.spans.then(|| {
        let rec = SpanRecorder::new();
        rec.set_salt(span::derive_id(seed, 0xF1EE, cell_index as u64, 0));
        rec
    });
    let members = build_members(probe, n, seed, rec.as_ref());
    let policy = if aligned {
        StripePolicy::aligned()
    } else {
        StripePolicy::fixed(64)
    };
    let maps: Vec<ConfidentBoundaries> = members.iter().map(|(_, m)| m.clone()).collect();
    // Both policies' layouts, so the shared trace fits either volume.
    let aligned_layout = VolumeLayout::new(kind, &maps, &StripePolicy::aligned())
        .expect("extracted maps build a layout");
    let fixed_layout = VolumeLayout::new(kind, &maps, &StripePolicy::fixed(64))
        .expect("extracted maps build a layout");
    let min_cap = aligned_layout.capacity().min(fixed_layout.capacity());

    let mut volume = match kind {
        VolumeKind::Striped => Volume::striped(members, policy),
        VolumeKind::Mirrored => Volume::mirrored(members, policy),
        VolumeKind::Raid5 => Volume::raid5(members, policy),
    }
    .expect("members validated by construction");
    let fill_seed = seed ^ 0xf1ee7;
    volume.format(fill_seed);
    if let Some(rec) = &rec {
        volume.attach_spans(rec.clone());
    }
    if degraded {
        volume.fail_member(FAILED).expect("member exists");
    }

    if !volume.can_serve() {
        // RAID-0 with a dead member: no redundancy, nothing to measure.
        let line = traxtent_bench::row_string([
            kind.label().into(),
            n.to_string(),
            policy.label().into(),
            fail_label(degraded).into(),
            "0".into(),
            "0".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "0".into(),
            "0".into(),
            "0".into(),
            "data-loss".into(),
        ]);
        return CellResult {
            line,
            served: false,
            p99_ms: 0.0,
            verified: 0,
            scrub_mismatches: 0,
            timeline: None,
            slo: None,
            spans: Vec::new(),
        };
    }

    // The identical logical trace for every policy and health state of
    // this shape: Poisson arrivals of *random whole stripe units* of the
    // aligned layout — the volume-level analogue of the paper's random
    // track-sized access, where alignment pays and no firmware cache can
    // help. Each raw arrival snaps to the aligned unit containing its
    // start; units past the smaller layout's capacity are dropped so the
    // trace fits both volumes.
    let spec = PoissonSpec {
        rate_per_sec: RATE_PER_MEMBER_RPS * n as f64,
        count: requests,
        capacity_lbns: min_cap,
        io_sectors: 1,
        read_fraction: 1.0,
        seed: seed ^ ((kind.label().len() as u64) << 16) ^ ((n as u64) << 8),
    };
    let mut trace = poisson_trace(&spec);
    for r in &mut trace {
        let u = &aligned_layout.units()[aligned_layout.unit_index(r.request.lbn)];
        r.request.lbn = u.lstart;
        r.request.len = u.len;
    }
    trace.retain(|r| r.request.end() <= min_cap);

    let mut server_cfg = ServerConfig::new(SchedulerKind::CLook);
    if obs.timeline {
        server_cfg = server_cfg.with_timeline(
            TimelineConfig::new(TIMELINE_WINDOW_MS).with_slo(SLO_THRESHOLD_MS, SLO_BREACH_FRACTION),
        );
    }
    if let Some(rec) = &rec {
        server_cfg = server_cfg.with_spans(rec.clone());
    }
    let res = serve(&mut volume, &trace, &server_cfg).expect("generated traces are valid");
    res.export_metrics(reg);
    // Capture the spans now: the verification reads and rebuild below run
    // outside the served workload and stay out of the export.
    let spans = rec.map(|r| r.take_sorted()).unwrap_or_default();
    let stats = *volume.stats();

    // Data verification: evenly spaced extents read back against the
    // canonical fill pattern (the trace is read-only, so every sector
    // still holds it). Degraded cells thus prove reconstruction returns
    // bit-exact data, not just plausible timing.
    let mut verified = 0;
    for i in 0..VERIFY_EXTENTS {
        let lbn = i * (min_cap - VERIFY_SECTORS) / (VERIFY_EXTENTS - 1);
        let (_, words) = volume
            .read(lbn, VERIFY_SECTORS, SimTime::ZERO)
            .expect("volume can serve");
        if words
            .iter()
            .enumerate()
            .all(|(o, &w)| w == pattern_word(fill_seed, lbn + o as u64))
        {
            verified += 1;
        }
    }

    // Degraded cells finish the story: rebuild the failed member in
    // place, then scrub the redundancy invariant.
    let (rebuild_ms, scrub_mismatches) = if degraded {
        let report = volume
            .rebuild_member(FAILED, reg, SimTime::ZERO)
            .expect("peers are healthy");
        let scrub = volume.scrub(reg);
        (
            report.finished.since(report.started).as_millis_f64(),
            scrub.mismatches,
        )
    } else {
        (0.0, 0)
    };
    volume.export_metrics(reg);

    let line = traxtent_bench::row_string([
        kind.label().into(),
        n.to_string(),
        policy.label().into(),
        fail_label(degraded).into(),
        res.completed().to_string(),
        res.rejected().to_string(),
        format!("{:.2}", res.percentile_ms(0.50)),
        format!("{:.2}", res.percentile_ms(0.99)),
        format!("{:.1}", res.throughput_rps()),
        format!("{:.0}", stats.member_cmds as f64),
        stats.degraded_reads.to_string(),
        format!("{verified}/{VERIFY_EXTENTS}"),
        format!("{rebuild_ms:.1}"),
        if degraded {
            format!("scrub:{scrub_mismatches}")
        } else {
            "-".into()
        },
    ]);
    CellResult {
        line,
        served: true,
        p99_ms: res.percentile_ms(0.99),
        verified,
        scrub_mismatches,
        timeline: res.timeline,
        slo: res.slo,
        spans,
    }
}

fn main() {
    let cli = traxtent_bench::Cli::parse_with(&["--timeline"]);
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("fleet_sweep");
    let timeline = cli.has("--timeline");
    let tracing = cli.trace.is_some();
    let requests = if cli.quick { 900 } else { 3600 };

    traxtent_bench::header(
        "fleet volumes: track-aligned vs fixed stripe units, healthy vs degraded",
    );
    traxtent_bench::row([
        "volume".into(),
        "members".into(),
        "policy".into(),
        "health".into(),
        "completed".into(),
        "rejected".into(),
        "p50_ms".into(),
        "p99_ms".into(),
        "thr_rps".into(),
        "member_cmds".into(),
        "deg_reads".into(),
        "verified".into(),
        "rebuild_ms".into(),
        "integrity".into(),
    ]);

    let cells: Vec<(VolumeKind, usize, bool, bool)> = SHAPES
        .iter()
        .flat_map(|&(kind, n)| {
            [true, false]
                .iter()
                .flat_map(move |&aligned| {
                    [false, true]
                        .iter()
                        .map(move |&degraded| (kind, n, aligned, degraded))
                })
                .collect::<Vec<_>>()
        })
        .collect();
    // RAID-5 aligned cells carry the extra observability: their service
    // path exercises every span kind (fan-out, parity, reconstruction).
    let results = cli
        .executor()
        .run(cells.clone(), |i, (kind, n, aligned, degraded)| {
            let interesting = kind == VolumeKind::Raid5 && aligned;
            let obs = ObsOpts {
                timeline: timeline && interesting,
                spans: tracing && interesting,
            };
            run_cell(
                &probe, &reg, kind, n, aligned, degraded, requests, cli.seed, i, obs,
            )
        });

    let mut degraded_verified = 0;
    let mut degraded_mismatches = 0;
    for ((kind, n, aligned, degraded), r) in cells.iter().zip(&results) {
        println!("{}", r.line);
        let tag = format!(
            "{}x{n}_{}_{}",
            kind.label(),
            if *aligned { "aligned" } else { "fixed" },
            fail_label(*degraded)
        );
        if r.served {
            rec.headline(&format!("{tag}_p99_ms"), r.p99_ms);
            rec.headline(&format!("{tag}_verified"), r.verified as f64);
            if *degraded {
                degraded_verified += r.verified;
                degraded_mismatches += r.scrub_mismatches;
            }
        } else {
            rec.headline(&format!("{tag}_unservable"), 1.0);
        }
    }

    // The acceptance headlines: aligned stripe units beat naive fixed
    // units on the healthy path of every shape, and every degraded
    // redundant cell served bit-exact data.
    for &(kind, n) in &SHAPES {
        let p99 = |aligned: bool| {
            cells
                .iter()
                .zip(&results)
                .find(|((k, nn, a, d), _)| *k == kind && *nn == n && *a == aligned && !*d)
                .map(|(_, r)| r.p99_ms)
                .expect("healthy cells always serve")
        };
        let gain = p99(false) / p99(true).max(1e-9);
        println!(
            "{}x{n}: aligned p99 {:.2} ms vs fixed {:.2} ms ({gain:.2}x)",
            kind.label(),
            p99(true),
            p99(false)
        );
        rec.headline(&format!("aligned_gain_{}x{n}", kind.label()), gain);
    }
    println!(
        "degraded service: {degraded_verified} extents verified bit-exact, \
         {degraded_mismatches} scrub mismatches after rebuild"
    );
    rec.headline("degraded_verified_extents", degraded_verified as f64);
    rec.headline("degraded_scrub_mismatches", degraded_mismatches as f64);

    if timeline {
        // Windowed telemetry for the instrumented cells; the rows ride in
        // this figure's own manifest (the timeline section serializes only
        // when present, so runs without --timeline are unchanged).
        for ((kind, n, aligned, degraded), r) in cells.iter().zip(&results) {
            let Some(t) = &r.timeline else { continue };
            let tag = format!(
                "{}x{n}_{}_{}",
                kind.label(),
                if *aligned { "aligned" } else { "fixed" },
                fail_label(*degraded)
            );
            println!(
                "## timeline {tag} (window {TIMELINE_WINDOW_MS:.0} ms, {} buckets)",
                t.buckets.len()
            );
            print!("{t}");
            if let Some(slo) = &r.slo {
                println!("{slo}");
            }
            rec.timeline(&tag, t.rows());
        }
    }

    if tracing {
        // Merge the per-cell span trees (distinct per-cell salts keep ids
        // unique) and export next to the --trace file. Status goes to
        // stderr so stdout stays byte-identical with an untraced run.
        let mut spans: Vec<Span> = results.iter().flat_map(|r| r.spans.clone()).collect();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let path = cli.trace.as_deref().expect("tracing implies --trace");
        let base = path.strip_suffix(".jsonl").unwrap_or(path);
        let jsonl: String = spans.iter().map(|s| s.to_json() + "\n").collect();
        std::fs::write(format!("{base}.spans.jsonl"), jsonl).expect("span export writable");
        std::fs::write(format!("{base}.chrome.json"), span::chrome_trace(&spans))
            .expect("chrome export writable");
        eprintln!(
            "fleet_sweep: {} spans -> {base}.spans.jsonl, {base}.chrome.json",
            spans.len()
        );
    }

    probe.finish();
    rec.finish(&reg);
}
