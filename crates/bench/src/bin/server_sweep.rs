//! Open-loop saturation sweep: response latency vs offered load, per
//! scheduler.
//!
//! ```text
//! server_sweep            # full grid
//! server_sweep --quick    # CI grid (fewer chunks per stream)
//! ```
//!
//! Runs the `server` crate's open-loop loop on the Atlas 10K II over a
//! grid of offered load (concurrent track-aligned video-style client
//! streams, half playback reads and half ingest writes) × scheduler
//! (FIFO, C-LOOK, traxtent-aware batching). Every scheduler at a given
//! load level sees the *identical* arrival trace — the trace seed mixes
//! the CLI seed with the level, not the scheduler — so latency
//! differences are pure policy. Each grid cell simulates independently
//! on its own drive and fans out across the worker pool; rows merge in
//! submission order, so stdout is byte-identical at any `--threads`.
//!
//! The headline comparison is p99 response time at the highest offered
//! load: the traxtent batcher coalesces queued same-track chunks into
//! single track-aligned commands (saving per-command overhead, write
//! settles, and rotational repositioning), which pushes its saturation
//! knee past C-LOOK's.

use server::{drive_boundaries, serve, SchedulerKind, ServerConfig};
use sim_disk::disk::Disk;
use sim_disk::models;
use traxtent::ConfidentBoundaries;
use workloads::arrivals::{stream_trace, StreamsSpec};

/// Concurrent streams per direction at each load level; total offered
/// chunk rate is `2 × streams × 1000 / CHUNK_PERIOD_MS` per second.
const LEVELS: [usize; 4] = [1, 2, 4, 6];

/// Per-stream chunk cadence (isochronous clients).
const CHUNK_PERIOD_MS: f64 = 40.0;

/// Nominal chunk length in sectors — a third-or-so of an Atlas track, so
/// a track's worth of chunks is coalescible when co-queued.
const CHUNK_SECTORS: u64 = 132;

struct CellResult {
    line: String,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    rejected: u64,
    throughput_rps: f64,
}

fn run_cell(
    probe: &traxtent_bench::Probe,
    reg: &traxtent::obs::Registry,
    streams: usize,
    sched: SchedulerKind,
    chunks_per_stream: usize,
    seed: u64,
) -> CellResult {
    let cfg = probe.wrap(models::quantum_atlas_10k_ii());
    let mut disk = Disk::new(cfg);
    let table = drive_boundaries(&disk);
    let spec = StreamsSpec {
        read_streams: streams,
        write_streams: streams,
        chunk_sectors: CHUNK_SECTORS,
        chunk_period_ms: CHUNK_PERIOD_MS,
        chunks_per_stream,
        // Same trace for every scheduler at this level: the seed mixes
        // in the load level only.
        seed: seed ^ ((streams as u64) << 8),
    };
    let trace = stream_trace(&spec, &table);
    let server_cfg = ServerConfig::new(sched).with_boundaries(ConfidentBoundaries::certain(table));
    let res = serve(&mut disk, &trace, &server_cfg).expect("generated traces are valid");
    res.export_metrics(reg);

    let offered_rps = 2.0 * streams as f64 * 1000.0 / CHUNK_PERIOD_MS;
    let line = traxtent_bench::row_string([
        format!("{offered_rps:.0}"),
        sched.label().into(),
        res.completed().to_string(),
        res.rejected().to_string(),
        format!("{:.2}", res.percentile_ms(0.50)),
        format!("{:.2}", res.percentile_ms(0.99)),
        format!("{:.2}", res.percentile_ms(0.999)),
        format!("{:.1}", res.mean_depth()),
        res.max_depth.to_string(),
        format!("{:.1}", res.throughput_rps()),
    ]);
    CellResult {
        line,
        p50_ms: res.percentile_ms(0.50),
        p99_ms: res.percentile_ms(0.99),
        p999_ms: res.percentile_ms(0.999),
        rejected: res.rejected(),
        throughput_rps: res.throughput_rps(),
    }
}

fn main() {
    let cli = traxtent_bench::Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("server_sweep");
    let chunks_per_stream = if cli.quick { 400 } else { 2000 };

    traxtent_bench::header(
        "open-loop server: response latency vs offered load (track-aligned streams)",
    );
    traxtent_bench::row([
        "offered_rps".into(),
        "scheduler".into(),
        "completed".into(),
        "rejected".into(),
        "p50_ms".into(),
        "p99_ms".into(),
        "p999_ms".into(),
        "mean_depth".into(),
        "max_depth".into(),
        "throughput_rps".into(),
    ]);

    let cells: Vec<(usize, SchedulerKind)> = LEVELS
        .iter()
        .flat_map(|&s| SchedulerKind::ALL.iter().map(move |&k| (s, k)))
        .collect();
    let results = cli.executor().run(cells.clone(), |_, (streams, sched)| {
        run_cell(&probe, &reg, streams, sched, chunks_per_stream, cli.seed)
    });

    let mut hi_clook_p99 = 0.0f64;
    let mut hi_traxtent_p99 = 0.0f64;
    for ((streams, sched), r) in cells.iter().zip(&results) {
        let tag = format!("s{streams}_{}", sched.label());
        rec.headline(&format!("{tag}_p50_ms"), r.p50_ms);
        rec.headline(&format!("{tag}_p99_ms"), r.p99_ms);
        rec.headline(&format!("{tag}_p999_ms"), r.p999_ms);
        rec.headline(&format!("{tag}_rejected"), r.rejected as f64);
        rec.headline(&format!("{tag}_throughput_rps"), r.throughput_rps);
        if *streams == LEVELS[LEVELS.len() - 1] {
            match sched {
                SchedulerKind::CLook => hi_clook_p99 = r.p99_ms,
                SchedulerKind::Traxtent => hi_traxtent_p99 = r.p99_ms,
                SchedulerKind::Fifo => {}
            }
        }
        println!("{}", r.line);
    }

    // The acceptance headline: how much p99 the traxtent batcher saves
    // over C-LOOK at the highest offered load.
    let gain = hi_clook_p99 / hi_traxtent_p99.max(1e-9);
    println!(
        "traxtent p99 at peak load: {hi_traxtent_p99:.2} ms vs C-LOOK {hi_clook_p99:.2} ms \
         ({gain:.2}x)"
    );
    rec.headline("traxtent_p99_gain_hiload", gain);
    probe.finish();
    rec.finish(&reg);
}
