//! Open-loop saturation sweep: response latency vs offered load, per
//! scheduler.
//!
//! ```text
//! server_sweep            # full grid
//! server_sweep --quick    # CI grid (fewer chunks per stream)
//! ```
//!
//! Runs the `server` crate's open-loop loop on the Atlas 10K II over a
//! grid of offered load (concurrent track-aligned video-style client
//! streams, half playback reads and half ingest writes) × scheduler
//! (FIFO, C-LOOK, traxtent-aware batching). Every scheduler at a given
//! load level sees the *identical* arrival trace — the trace seed mixes
//! the CLI seed with the level, not the scheduler — so latency
//! differences are pure policy. Each grid cell simulates independently
//! on its own drive and fans out across the worker pool; rows merge in
//! submission order, so stdout is byte-identical at any `--threads`.
//!
//! The headline comparison is p99 response time at the highest offered
//! load: the traxtent batcher coalesces queued same-track chunks into
//! single track-aligned commands (saving per-command overhead, write
//! settles, and rotational repositioning), which pushes its saturation
//! knee past C-LOOK's.

use server::{
    drive_boundaries, serve, DiskSpanBridge, SchedulerKind, ServerConfig, TimelineConfig,
};
use sim_disk::disk::Disk;
use sim_disk::models;
use sim_disk::trace::{Fanout, SharedSink, Tracer};
use std::sync::{Arc, Mutex};
use traxtent::obs::span::{self, Span, SpanRecorder};
use traxtent::ConfidentBoundaries;
use workloads::arrivals::{stream_trace, StreamsSpec};

/// Concurrent streams per direction at each load level; total offered
/// chunk rate is `2 × streams × 1000 / CHUNK_PERIOD_MS` per second.
const LEVELS: [usize; 4] = [1, 2, 4, 6];

/// Per-stream chunk cadence (isochronous clients).
const CHUNK_PERIOD_MS: f64 = 40.0;

/// Nominal chunk length in sectors — a third-or-so of an Atlas track, so
/// a track's worth of chunks is coalescible when co-queued.
const CHUNK_SECTORS: u64 = 132;

/// Sampler window for `--timeline` cells.
const TIMELINE_WINDOW_MS: f64 = 250.0;

/// SLO monitored on `--timeline` cells: at most 5% of a window's
/// responses over 40 ms before the window counts as breached.
const SLO_THRESHOLD_MS: f64 = 40.0;
const SLO_BREACH_FRACTION: f64 = 0.05;

struct CellResult {
    line: String,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    rejected: u64,
    throughput_rps: f64,
    completed: u64,
    timeline: Option<server::Timeline>,
    slo: Option<server::SloSummary>,
    spans: Vec<Span>,
}

/// Per-cell observability requests: the peak-load cells additionally
/// record a windowed timeline (`--timeline`) and a causal span tree
/// (`--trace`).
#[derive(Clone, Copy)]
struct ObsOpts {
    timeline: bool,
    spans: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    probe: &traxtent_bench::Probe,
    reg: &traxtent::obs::Registry,
    streams: usize,
    sched: SchedulerKind,
    chunks_per_stream: usize,
    seed: u64,
    cell_index: usize,
    obs: ObsOpts,
) -> CellResult {
    let mut cfg = probe.wrap(models::quantum_atlas_10k_ii());
    // A per-cell recorder with a per-cell salt, so merged span ids never
    // collide across cells and the export is identical at any --threads.
    let rec = obs.spans.then(|| {
        let rec = SpanRecorder::new();
        rec.set_salt(span::derive_id(seed, 0xCE11, cell_index as u64, 0));
        let bridge: SharedSink = Arc::new(Mutex::new(DiskSpanBridge::new(rec.clone())));
        cfg.tracer = Some(match cfg.tracer.take() {
            Some(t) => Tracer::from_sink(Fanout::new(vec![t.sink(), bridge])),
            None => Tracer::new(bridge),
        });
        rec
    });
    let mut disk = Disk::new(cfg);
    let table = drive_boundaries(&disk);
    let spec = StreamsSpec {
        read_streams: streams,
        write_streams: streams,
        chunk_sectors: CHUNK_SECTORS,
        chunk_period_ms: CHUNK_PERIOD_MS,
        chunks_per_stream,
        // Same trace for every scheduler at this level: the seed mixes
        // in the load level only.
        seed: seed ^ ((streams as u64) << 8),
    };
    let trace = stream_trace(&spec, &table);
    let mut server_cfg =
        ServerConfig::new(sched).with_boundaries(ConfidentBoundaries::certain(table));
    if obs.timeline {
        server_cfg = server_cfg.with_timeline(
            TimelineConfig::new(TIMELINE_WINDOW_MS).with_slo(SLO_THRESHOLD_MS, SLO_BREACH_FRACTION),
        );
    }
    if let Some(rec) = &rec {
        server_cfg = server_cfg.with_spans(rec.clone());
    }
    let res = serve(&mut disk, &trace, &server_cfg).expect("generated traces are valid");
    res.export_metrics(reg);

    let offered_rps = 2.0 * streams as f64 * 1000.0 / CHUNK_PERIOD_MS;
    let line = traxtent_bench::row_string([
        format!("{offered_rps:.0}"),
        sched.label().into(),
        res.completed().to_string(),
        res.rejected().to_string(),
        format!("{:.2}", res.percentile_ms(0.50)),
        format!("{:.2}", res.percentile_ms(0.99)),
        format!("{:.2}", res.percentile_ms(0.999)),
        format!("{:.1}", res.mean_depth()),
        res.max_depth.to_string(),
        format!("{:.1}", res.throughput_rps()),
    ]);
    CellResult {
        line,
        p50_ms: res.percentile_ms(0.50),
        p99_ms: res.percentile_ms(0.99),
        p999_ms: res.percentile_ms(0.999),
        rejected: res.rejected(),
        throughput_rps: res.throughput_rps(),
        completed: res.completed(),
        timeline: res.timeline,
        slo: res.slo,
        spans: rec.map(|r| r.take_sorted()).unwrap_or_default(),
    }
}

fn main() {
    let cli = traxtent_bench::Cli::parse_with(&["--timeline"]);
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("server_sweep");
    let timeline = cli.has("--timeline");
    let tracing = cli.trace.is_some();
    let chunks_per_stream = if cli.quick { 400 } else { 2000 };

    traxtent_bench::header(
        "open-loop server: response latency vs offered load (track-aligned streams)",
    );
    traxtent_bench::row([
        "offered_rps".into(),
        "scheduler".into(),
        "completed".into(),
        "rejected".into(),
        "p50_ms".into(),
        "p99_ms".into(),
        "p999_ms".into(),
        "mean_depth".into(),
        "max_depth".into(),
        "throughput_rps".into(),
    ]);

    let cells: Vec<(usize, SchedulerKind)> = LEVELS
        .iter()
        .flat_map(|&s| SchedulerKind::ALL.iter().map(move |&k| (s, k)))
        .collect();
    // Only the peak-load cells carry the extra observability: that is
    // where the SLO story lives, and it keeps the span export readable.
    let peak = LEVELS[LEVELS.len() - 1];
    let results = cli.executor().run(cells.clone(), |i, (streams, sched)| {
        let obs = ObsOpts {
            timeline: timeline && streams == peak,
            spans: tracing && streams == peak,
        };
        run_cell(
            &probe,
            &reg,
            streams,
            sched,
            chunks_per_stream,
            cli.seed,
            i,
            obs,
        )
    });

    let mut hi_clook_p99 = 0.0f64;
    let mut hi_traxtent_p99 = 0.0f64;
    for ((streams, sched), r) in cells.iter().zip(&results) {
        let tag = format!("s{streams}_{}", sched.label());
        rec.headline(&format!("{tag}_p50_ms"), r.p50_ms);
        rec.headline(&format!("{tag}_p99_ms"), r.p99_ms);
        rec.headline(&format!("{tag}_p999_ms"), r.p999_ms);
        rec.headline(&format!("{tag}_rejected"), r.rejected as f64);
        rec.headline(&format!("{tag}_throughput_rps"), r.throughput_rps);
        if *streams == LEVELS[LEVELS.len() - 1] {
            match sched {
                SchedulerKind::CLook => hi_clook_p99 = r.p99_ms,
                SchedulerKind::Traxtent => hi_traxtent_p99 = r.p99_ms,
                SchedulerKind::Fifo => {}
            }
        }
        println!("{}", r.line);
    }

    // The acceptance headline: how much p99 the traxtent batcher saves
    // over C-LOOK at the highest offered load.
    let gain = hi_clook_p99 / hi_traxtent_p99.max(1e-9);
    println!(
        "traxtent p99 at peak load: {hi_traxtent_p99:.2} ms vs C-LOOK {hi_clook_p99:.2} ms \
         ({gain:.2}x)"
    );
    rec.headline("traxtent_p99_gain_hiload", gain);

    if timeline {
        // The live-telemetry section: one windowed table per peak-load
        // cell, plus the SLO verdict, mirrored into its own manifest so
        // CI can diff the series run over run.
        let mut trec = cli.recorder("server_timeline");
        let treg = traxtent::obs::Registry::new();
        for ((streams, sched), r) in cells.iter().zip(&results) {
            let Some(t) = &r.timeline else { continue };
            let tag = format!("s{streams}_{}", sched.label());
            println!(
                "## timeline {tag} (window {TIMELINE_WINDOW_MS:.0} ms, {} buckets)",
                t.buckets.len()
            );
            print!("{t}");
            if let Some(slo) = &r.slo {
                println!("{slo}");
                trec.headline(&format!("{tag}_slo_breached"), slo.breached as f64);
                trec.headline(&format!("{tag}_slo_worst_burn"), slo.worst_burn_rate);
            }
            trec.headline(&format!("{tag}_completed"), r.completed as f64);
            trec.headline(&format!("{tag}_p99_ms"), r.p99_ms);
            trec.timeline(&tag, t.rows());
        }
        trec.finish(&treg);
    }

    if tracing {
        // Merge the per-cell span trees (distinct per-cell salts keep ids
        // unique) and export next to the --trace file. Status goes to
        // stderr so stdout stays byte-identical with an untraced run.
        let mut spans: Vec<Span> = results.iter().flat_map(|r| r.spans.clone()).collect();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let path = cli.trace.as_deref().expect("tracing implies --trace");
        let base = path.strip_suffix(".jsonl").unwrap_or(path);
        let jsonl: String = spans.iter().map(|s| s.to_json() + "\n").collect();
        std::fs::write(format!("{base}.spans.jsonl"), jsonl).expect("span export writable");
        std::fs::write(format!("{base}.chrome.json"), span::chrome_trace(&spans))
            .expect("chrome export writable");
        eprintln!(
            "server_sweep: {} spans -> {base}.spans.jsonl, {base}.chrome.json",
            spans.len()
        );
    }

    probe.finish();
    rec.finish(&reg);
}
