//! §4.1: track-boundary extraction — accuracy and cost of the general
//! timing-based algorithm and the SCSI-specific (DIXtrac-style) algorithm,
//! across spare-scheme and defect-policy variants.
//!
//! Without `--full`, the general algorithm runs on the small test disk and
//! the SCSI algorithm on the full Atlas 10K II; `--full` also runs the
//! general algorithm on the full drive (minutes of wall time).

use dixtrac::{extract_general, extract_scsi, GeneralConfig};
use scsi::ScsiDisk;
use sim_disk::defects::{DefectPolicy, SpareScheme};
use sim_disk::disk::{Disk, DiskConfig};
use sim_disk::models;
use traxtent::TrackBoundaries;
use traxtent_bench::{header, row, row_string, Cli};

fn ground_truth(disk: &Disk) -> TrackBoundaries {
    let starts: Vec<u64> = disk
        .geometry()
        .iter_tracks()
        .filter(|(_, t)| t.lbn_count() > 0)
        .map(|(_, t)| t.first_lbn())
        .collect();
    TrackBoundaries::new(starts, disk.geometry().capacity_lbns()).expect("valid")
}

/// Factory-defect variants of §4.1: `(name, Some((spares, policy,
/// rate_per_million, seed)))`, or `None` for the pristine drive.
type Variant = (&'static str, Option<(SpareScheme, DefectPolicy, u32, u64)>);

const VARIANTS: [Variant; 4] = [
    ("pristine", None),
    (
        "cyl-spares+slip",
        Some((
            SpareScheme::SectorsPerCylinder(8),
            DefectPolicy::Slip,
            500,
            17,
        )),
    ),
    (
        "track-spares+slip",
        Some((SpareScheme::SectorsPerTrack(2), DefectPolicy::Slip, 300, 23)),
    ),
    (
        "cyl-spares+remap",
        Some((
            SpareScheme::SectorsPerCylinder(8),
            DefectPolicy::Remap,
            500,
            31,
        )),
    ),
];

/// One extraction run: which drive, which variant, which algorithm.
enum Job {
    SmallGeneral(Variant),
    SmallScsi(Variant),
    AtlasScsi,
    AtlasGeneral,
}

/// Table row for an extraction run that reported an error (e.g. the drive
/// refuses diagnostics, or faults defeated every retry) instead of a table.
fn failed_row(disk: &str, variant: &str, algorithm: &str, err: &dixtrac::ExtractError) -> String {
    row_string([
        disk.into(),
        variant.into(),
        algorithm.into(),
        "false".into(),
        format!("failed: {err}"),
        "-".into(),
    ])
}

fn apply(variant: &Variant, cfg: DiskConfig) -> DiskConfig {
    match variant.1 {
        None => cfg,
        Some((spare, policy, rate, seed)) => {
            models::with_factory_defects(cfg, spare, policy, rate, seed)
        }
    }
}

fn main() {
    let cli = Cli::parse_with(&["--full"]);
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("extraction");

    header("§4.1: track-boundary extraction");
    row([
        "disk".into(),
        "variant".into(),
        "algorithm".into(),
        "exact".into(),
        "cost".into(),
        "sim_time".into(),
    ]);

    let mut jobs = Vec::new();
    for v in VARIANTS {
        jobs.push(Job::SmallGeneral(v));
        jobs.push(Job::SmallScsi(v));
    }
    jobs.push(Job::AtlasScsi);
    if cli.has("--full") {
        jobs.push(Job::AtlasGeneral);
    }

    let results = cli.executor().run(jobs, |_, job| match job {
        Job::SmallGeneral(v) => {
            let disk = Disk::new(probe.wrap(apply(&v, models::small_test_disk())));
            let truth = ground_truth(&disk);
            let mut s = ScsiDisk::new(disk);
            let gcfg = GeneralConfig {
                contexts: 24,
                ..GeneralConfig::default()
            };
            let g = match extract_general(&mut s, &gcfg) {
                Ok(g) => g,
                Err(e) => {
                    return (
                        failed_row("SimTest", v.0, "general (timing)", &e),
                        false,
                        None,
                    )
                }
            };
            g.export_metrics(&reg);
            let exact = g.boundaries == truth;
            let line = row_string([
                "SimTest".into(),
                v.0.into(),
                "general (timing)".into(),
                exact.to_string(),
                format!("{:.1} probes/track", g.probes_per_track),
                format!("{:.1} s", g.elapsed.as_secs_f64()),
            ]);
            (line, exact, None)
        }
        Job::SmallScsi(v) => {
            let disk = Disk::new(probe.wrap(apply(&v, models::small_test_disk())));
            let truth = ground_truth(&disk);
            let mut s = ScsiDisk::new(disk);
            let r = match extract_scsi(&mut s) {
                Ok(r) => r,
                Err(e) => return (failed_row("SimTest", v.0, "scsi", &e), false, None),
            };
            r.export_metrics(&reg);
            let exact = r.boundaries == truth;
            let line = row_string([
                "SimTest".into(),
                v.0.into(),
                format!("scsi ({:?}, {:?})", r.scheme, r.policy),
                exact.to_string(),
                format!("{:.2} translations/track", r.translations_per_track),
                format!("{:.1} s", s.elapsed().as_secs_f64()),
            ]);
            (line, exact, None)
        }
        Job::AtlasScsi => {
            // The full Atlas 10K II with the SCSI algorithm (paper: < 1
            // minute, ≈ 2.0–2.3 translations per track for the
            // expertise-free walk).
            let disk = Disk::new(probe.wrap(models::quantum_atlas_10k_ii()));
            let truth = ground_truth(&disk);
            let mut s = ScsiDisk::new(disk);
            let r = match extract_scsi(&mut s) {
                Ok(r) => r,
                Err(e) => {
                    return (
                        failed_row("Atlas 10K II", "pristine", "scsi", &e),
                        false,
                        None,
                    )
                }
            };
            r.export_metrics(&reg);
            let exact = r.boundaries == truth;
            let line = row_string([
                "Atlas 10K II".into(),
                "pristine".into(),
                "scsi".into(),
                exact.to_string(),
                format!(
                    "{:.2} translations/track ({} total)",
                    r.translations_per_track, r.translations
                ),
                format!("{:.1} s", s.elapsed().as_secs_f64()),
            ]);
            (line, exact, Some(r.translations_per_track))
        }
        Job::AtlasGeneral => {
            let disk = Disk::new(probe.wrap(models::quantum_atlas_10k_ii()));
            let truth = ground_truth(&disk);
            let mut s = ScsiDisk::new(disk);
            let g = match extract_general(&mut s, &GeneralConfig::default()) {
                Ok(g) => g,
                Err(e) => {
                    return (
                        failed_row("Atlas 10K II", "pristine", "general (timing)", &e),
                        false,
                        None,
                    )
                }
            };
            g.export_metrics(&reg);
            let exact = g.boundaries == truth;
            let line = row_string([
                "Atlas 10K II".into(),
                "pristine".into(),
                "general (timing)".into(),
                exact.to_string(),
                format!("{:.1} probes/track", g.probes_per_track),
                format!("{:.0} s (paper: hours)", g.elapsed.as_secs_f64()),
            ]);
            (line, exact, None)
        }
    });
    let mut exact_runs = 0usize;
    let total_runs = results.len();
    for (line, exact, atlas_tpt) in results {
        exact_runs += usize::from(exact);
        if let Some(tpt) = atlas_tpt {
            rec.headline("atlas_scsi_translations_per_track", tpt);
        }
        println!("{line}");
    }
    rec.headline("exact_runs", exact_runs as f64);
    rec.headline("total_runs", total_runs as f64);
    probe.finish();
    rec.finish(&reg);
}
