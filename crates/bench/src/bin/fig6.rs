//! Figure 6: average head time for track-aligned and unaligned reads on
//! the Atlas 10K II, for the `onereq` and `tworeq` workloads, plus the
//! zero-bus-transfer simulator configuration. With `--writes`, reproduces
//! the §5.2 write head times instead.

use sim_disk::bus::BusConfig;
use sim_disk::disk::{Disk, DiskConfig, Op};
use sim_disk::models;
use traxtent_bench::{header, row, Cli};
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

/// The five measurement columns of each row, in print order.
const CELLS: [(bool, Alignment, QueueDepth); 5] = [
    (false, Alignment::Unaligned, QueueDepth::One),
    (false, Alignment::TrackAligned, QueueDepth::One),
    (false, Alignment::Unaligned, QueueDepth::Two),
    (false, Alignment::TrackAligned, QueueDepth::Two),
    (true, Alignment::TrackAligned, QueueDepth::One),
];

const PCTS: [u64; 5] = [10, 25, 50, 75, 100];

fn main() {
    let cli = Cli::parse_with(&["--writes"]);
    let writes = cli.has("--writes");
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder(if writes { "fig6_writes" } else { "fig6" });
    let count = if cli.quick { 300 } else { 2000 };
    let cfg = probe.wrap(models::quantum_atlas_10k_ii());
    let track = cfg.geometry.track(0).lbn_count() as u64;
    let op = if writes { Op::Write } else { Op::Read };

    header(if writes {
        "§5.2 write head times (Atlas 10K II)"
    } else {
        "Figure 6: average head time vs I/O size (Atlas 10K II)"
    });
    row([
        "pct_of_track".into(),
        "onereq_unaligned_ms".into(),
        "onereq_aligned_ms".into(),
        "tworeq_unaligned_ms".into(),
        "tworeq_aligned_ms".into(),
        "zero_bus_onereq_aligned_ms".into(),
    ]);

    // One job per (row, column) cell; each builds its own disk, so cells
    // are independent and the pool can fan them out freely.
    let jobs: Vec<(u64, (bool, Alignment, QueueDepth))> = PCTS
        .iter()
        .flat_map(|&pct| CELLS.iter().map(move |&cell| (pct, cell)))
        .collect();
    let cells = cli
        .executor()
        .run(jobs, |_, (pct, (zero_bus, alignment, queue))| {
            let sectors = (track * pct / 100).max(1);
            let mut disk = if zero_bus {
                Disk::new(DiskConfig {
                    bus: BusConfig::infinite(),
                    ..cfg.clone()
                })
            } else {
                Disk::new(cfg.clone())
            };
            let spec = RandomIoSpec {
                count,
                op,
                seed: cli.seed,
                ..RandomIoSpec::reads(sectors, alignment, queue)
            };
            let r = run_random_io(&mut disk, &spec);
            r.export_metrics(&reg, queue);
            let ms = r.mean_head_time(queue).as_millis_f64();
            (format!("{ms:.2}"), ms)
        });

    for (i, pct) in PCTS.iter().enumerate() {
        let r = &cells[i * CELLS.len()..(i + 1) * CELLS.len()];
        row([
            pct.to_string(),
            r[0].0.clone(),
            r[1].0.clone(),
            r[2].0.clone(),
            r[3].0.clone(),
            r[4].0.clone(),
        ]);
    }
    // Headlines: the track-sized (100 %) row, the values the paper quotes.
    let track_row = &cells[(PCTS.len() - 1) * CELLS.len()..];
    rec.headline("onereq_unaligned_ms", track_row[0].1);
    rec.headline("onereq_aligned_ms", track_row[1].1);
    rec.headline("tworeq_unaligned_ms", track_row[2].1);
    rec.headline("tworeq_aligned_ms", track_row[3].1);
    rec.headline("zero_bus_onereq_aligned_ms", track_row[4].1);
    if !writes {
        println!(
            "paper: track-sized reads — onereq ≈ 9.2 ms aligned, tworeq ≈ 8.3 ms aligned \
             (18%/32% below unaligned)"
        );
    } else {
        println!("paper: track-sized writes — onereq 10.0 vs 13.9 ms, tworeq 10.2 vs 13.8 ms");
    }
    probe.finish();
    rec.finish(&reg);
}
