//! Figure 6: average head time for track-aligned and unaligned reads on
//! the Atlas 10K II, for the `onereq` and `tworeq` workloads, plus the
//! zero-bus-transfer simulator configuration. With `--writes`, reproduces
//! the §5.2 write head times instead.

use sim_disk::bus::BusConfig;
use sim_disk::disk::{Disk, Op};
use sim_disk::models;
use traxtent_bench::{header, row, Cli};
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

fn main() {
    let cli = Cli::parse();
    let writes = cli.has("--writes");
    let count = if cli.quick { 300 } else { 2000 };
    let cfg = models::quantum_atlas_10k_ii();
    let track = cfg.geometry.track(0).lbn_count() as u64;
    let mut disk = Disk::new(cfg.clone());
    let mut zero_bus = Disk::new(sim_disk::disk::DiskConfig {
        bus: BusConfig::infinite(),
        ..cfg
    });

    let op = if writes { Op::Write } else { Op::Read };
    header(if writes {
        "§5.2 write head times (Atlas 10K II)"
    } else {
        "Figure 6: average head time vs I/O size (Atlas 10K II)"
    });
    row([
        "pct_of_track".into(),
        "onereq_unaligned_ms".into(),
        "onereq_aligned_ms".into(),
        "tworeq_unaligned_ms".into(),
        "tworeq_aligned_ms".into(),
        "zero_bus_onereq_aligned_ms".into(),
    ]);
    for pct in [10u64, 25, 50, 75, 100] {
        let sectors = (track * pct / 100).max(1);
        let run = |disk: &mut Disk, alignment, queue| {
            let spec = RandomIoSpec {
                count,
                op,
                seed: cli.seed,
                ..RandomIoSpec::reads(sectors, alignment, queue)
            };
            run_random_io(disk, &spec).mean_head_time(queue).as_millis_f64()
        };
        row([
            pct.to_string(),
            format!("{:.2}", run(&mut disk, Alignment::Unaligned, QueueDepth::One)),
            format!("{:.2}", run(&mut disk, Alignment::TrackAligned, QueueDepth::One)),
            format!("{:.2}", run(&mut disk, Alignment::Unaligned, QueueDepth::Two)),
            format!("{:.2}", run(&mut disk, Alignment::TrackAligned, QueueDepth::Two)),
            format!("{:.2}", run(&mut zero_bus, Alignment::TrackAligned, QueueDepth::One)),
        ]);
    }
    if !writes {
        println!(
            "paper: track-sized reads — onereq ≈ 9.2 ms aligned, tworeq ≈ 8.3 ms aligned \
             (18%/32% below unaligned)"
        );
    } else {
        println!(
            "paper: track-sized writes — onereq 10.0 vs 13.9 ms, tworeq 10.2 vs 13.8 ms"
        );
    }
}
