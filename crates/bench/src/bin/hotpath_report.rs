//! Generates `BENCH_hotpaths.json`: wall-clock for every figure binary run
//! sequentially (`--threads 1`) versus at the default worker count, plus
//! in-process medians for the sim-disk hot paths the executor leans on.
//!
//! Every parallel run's stdout is byte-compared against the sequential
//! run's — the report fails loudly if the executor's determinism guarantee
//! is ever violated. On a 1-core runner the "parallel" run would be the
//! sequential run again, so the comparison is skipped and flagged as such
//! in the JSON rather than reported as a (meaningless) 1.0× speedup.
//! Child binaries run with `--quick` so the report stays cheap enough for
//! CI.

use sim_disk::bus::BusConfig;
use sim_disk::disk::{Disk, DiskConfig, Request};
use sim_disk::models;
use sim_disk::SimTime;
use std::hint::black_box;
use std::path::Path;
use std::process::Command;
use std::time::Instant;
use traxtent_bench::{default_threads, Cli};

const BINARIES: &[&str] = &[
    "table1",
    "fig1",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "table2",
    "fig9",
    "fig10",
    "extraction",
    "ablation",
];

/// Median ns/iter over 11 samples of a calibrated batch (≥2 ms per batch),
/// the same scheme the Criterion benches use.
fn median_ns(mut f: impl FnMut()) -> f64 {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t.elapsed().as_millis() >= 2 {
            break;
        }
        batch *= 4;
    }
    let mut samples: Vec<f64> = (0..11)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn hotpath_medians() -> Vec<(&'static str, f64)> {
    let cfg = models::quantum_atlas_10k_ii();
    let geom = cfg.geometry.clone();
    let cap = geom.capacity_lbns();
    let mut out = Vec::new();

    let mut lbn = 0u64;
    out.push((
        "geometry/lbn_to_pba_random",
        median_ns(|| {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(1)) % cap;
            black_box(geom.lbn_to_pba(black_box(lbn)).unwrap());
        }),
    ));
    let mut lbn = 0u64;
    out.push((
        "geometry/lbn_to_pba_sequential",
        median_ns(|| {
            lbn = (lbn + 1) % cap;
            black_box(geom.lbn_to_pba(black_box(lbn)).unwrap());
        }),
    ));
    let mut lbn = 0u64;
    out.push((
        "geometry/track_of_lbn_random",
        median_ns(|| {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(1)) % cap;
            black_box(geom.track_of_lbn(black_box(lbn)).unwrap());
        }),
    ));
    let mut lbn = 0u64;
    out.push((
        "geometry/track_of_lbn_sequential",
        median_ns(|| {
            lbn = (lbn + 1) % cap;
            black_box(geom.track_of_lbn(black_box(lbn)).unwrap());
        }),
    ));

    let zl_cfg = DiskConfig {
        bus: BusConfig::infinite(),
        ..models::quantum_atlas_10k_ii()
    };
    let mut disk = Disk::new(zl_cfg);
    let mut t = SimTime::ZERO;
    let mut lbn = 1u64;
    out.push((
        "disk/zero_latency_scan",
        median_ns(|| {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(1)) % 4_000_000;
            let done = disk.service(Request::read(lbn, 528), t);
            t = done.completion;
            black_box(done.completion);
        }),
    ));

    // The rotation kernel old vs new: the per-sector reference scan against
    // the closed-form replacement, on a full outer-zone track.
    let track = geom.track(0);
    let spt = track.spt();
    let mut angle = 0.1234_f64;
    out.push((
        "rotation/window_scan_ref",
        median_ns(|| {
            angle += 0.000_37;
            if angle >= 1.0 {
                angle -= 1.0;
            }
            black_box(sim_disk::rotation::window_scan(track, angle, 0, spt));
        }),
    ));
    let mut angle = 0.1234_f64;
    out.push((
        "rotation/window_closed",
        median_ns(|| {
            angle += 0.000_37;
            if angle >= 1.0 {
                angle -= 1.0;
            }
            black_box(sim_disk::rotation::window_closed(track, angle, 0, spt));
        }),
    ));

    // The observability layer off vs on: serve() with no spans or
    // timeline attached must cost what it did before the layer existed
    // (the disabled paths are a handful of `Option` checks); the enabled
    // variant prices the full instrumentation — span recording down to
    // drive phases plus the windowed sampler.
    use server::{serve, DiskSpanBridge, SchedulerKind, ServerConfig, TimelineConfig};
    use traxtent::obs::span::SpanRecorder;
    let base_cfg = models::small_test_disk();
    let trace = {
        let d = Disk::new(base_cfg.clone());
        let table = server::drive_boundaries(&d);
        workloads::arrivals::stream_trace(
            &workloads::arrivals::StreamsSpec {
                read_streams: 2,
                write_streams: 2,
                chunk_sectors: 64,
                chunk_period_ms: 10.0,
                chunks_per_stream: 50,
                seed: 99,
            },
            &table,
        )
    };
    out.push((
        "server/serve_obs_disabled",
        median_ns(|| {
            let mut disk = Disk::new(base_cfg.clone());
            let cfg = ServerConfig::new(SchedulerKind::CLook);
            black_box(serve(&mut disk, &trace, &cfg).expect("valid trace"));
        }),
    ));
    out.push((
        "server/serve_obs_enabled",
        median_ns(|| {
            let rec = SpanRecorder::new();
            let mut cfg_disk = base_cfg.clone();
            cfg_disk.tracer = Some(sim_disk::trace::Tracer::from_sink(DiskSpanBridge::new(
                rec.clone(),
            )));
            let mut disk = Disk::new(cfg_disk);
            let cfg = ServerConfig::new(SchedulerKind::CLook)
                .with_spans(rec.clone())
                .with_timeline(TimelineConfig::new(100.0));
            black_box(serve(&mut disk, &trace, &cfg).expect("valid trace"));
            black_box(rec.take_sorted());
        }),
    ));
    out
}

/// Runs `bin --quick [extra args]` and returns (stdout, wall-clock seconds).
fn timed_run(dir: &Path, bin: &str, extra: &[&str]) -> (Vec<u8>, f64) {
    let t = Instant::now();
    let out = Command::new(dir.join(bin))
        .arg("--quick")
        .args(extra)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
    let secs = t.elapsed().as_secs_f64();
    assert!(out.status.success(), "{bin} exited with {:?}", out.status);
    (out.stdout, secs)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let cli = Cli::parse_with(&["--stdout"]);
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("binary directory").to_path_buf();

    let threads = default_threads();
    let compare = threads > 1;
    if !compare {
        eprintln!("1-core runner: seq-vs-parallel comparison skipped");
    }
    let mut bin_entries = Vec::new();
    for &bin in BINARIES {
        let (seq_out, seq_s) = timed_run(&dir, bin, &["--threads", "1"]);
        if !compare {
            // A "parallel" run here would be the sequential run again;
            // timing it would fabricate a 1.0× speedup out of noise.
            eprintln!("{bin:<12} seq {seq_s:>7.3}s  (parallel run skipped)");
            bin_entries.push(format!(
                "    {{\"binary\": \"{}\", \"seq_s\": {:.4}}}",
                json_escape(bin),
                seq_s
            ));
            continue;
        }
        let (par_out, par_s) = timed_run(&dir, bin, &["--threads", &threads.to_string()]);
        let identical = seq_out == par_out;
        assert!(
            identical,
            "{bin}: parallel stdout differs from sequential — determinism broken"
        );
        eprintln!(
            "{bin:<12} seq {seq_s:>7.3}s  par({threads}) {par_s:>7.3}s  identical: {identical}"
        );
        bin_entries.push(format!(
            "    {{\"binary\": \"{}\", \"seq_s\": {:.4}, \"parallel_s\": {:.4}, \
             \"speedup\": {:.3}, \"stdout_identical\": {}}}",
            json_escape(bin),
            seq_s,
            par_s,
            seq_s / par_s,
            identical
        ));
    }

    eprintln!("measuring hot-path medians...");
    let medians = hotpath_medians();
    let median_entries: Vec<String> = medians
        .iter()
        .map(|(name, ns)| {
            eprintln!("{name:<36} {ns:>10.1} ns/iter");
            format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}}}",
                json_escape(name),
                ns
            )
        })
        .collect();

    let comparison = if compare {
        "ok".to_string()
    } else {
        "skipped: 1-core runner".to_string()
    };
    let json = format!(
        "{{\n  \"available_parallelism\": {threads},\n  \"threads_used\": {threads},\n  \
         \"speedup_comparison\": \"{}\",\n  \
         \"quick_mode\": true,\n  \"binaries\": [\n{}\n  ],\n  \"hot_paths\": [\n{}\n  ]\n}}\n",
        json_escape(&comparison),
        bin_entries.join(",\n"),
        median_entries.join(",\n")
    );
    if cli.has("--stdout") {
        print!("{json}");
    } else {
        std::fs::write("BENCH_hotpaths.json", &json).expect("write BENCH_hotpaths.json");
        eprintln!("wrote BENCH_hotpaths.json");
    }
}
