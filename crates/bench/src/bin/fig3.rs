//! Figure 3: average rotational latency for ordinary and zero-latency
//! disks as a function of track-aligned request size — the analytic curves
//! plus simulated confirmation on the Atlas 10K II (zero-latency) and on
//! the same drive with zero-latency support disabled (ordinary).

use sim_disk::disk::{Disk, DiskConfig};
use sim_disk::models;
use traxtent::model;
use traxtent_bench::{header, row, row_string, Cli};
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("fig3");
    let count = if cli.quick { 200 } else { 1500 };
    let cfg = probe.wrap(models::quantum_atlas_10k_ii());
    let rev_ms = cfg.spindle.revolution().as_millis_f64();
    let spt = cfg.geometry.track(0).lbn_count();

    header("Figure 3: average rotational latency vs request size (10K RPM)");
    row([
        "pct_of_track".into(),
        "zero_latency_model_ms".into(),
        "zero_latency_sim_ms".into(),
        "ordinary_model_ms".into(),
        "ordinary_sim_ms".into(),
    ]);
    let results = cli
        .executor()
        .run(vec![5u32, 10, 25, 50, 75, 90, 100], |_, pct| {
            let sectors = (u64::from(spt) * u64::from(pct) / 100).max(1);
            let f = sectors as f64 / f64::from(spt);
            // Effective rotational latency = (positioning wait + media sweep)
            // minus the ideal transfer time, which matches the model's
            // definition for both firmware types (a zero-latency arc that wraps
            // hides its waiting inside the media sweep).
            let sim = |zero_latency: bool| {
                let mut disk = Disk::new(DiskConfig {
                    zero_latency,
                    ..cfg.clone()
                });
                let spec = RandomIoSpec {
                    count,
                    seed: cli.seed,
                    ..RandomIoSpec::reads(sectors, Alignment::TrackAligned, QueueDepth::One)
                };
                let r = run_random_io(&mut disk, &spec);
                r.export_metrics(&reg, QueueDepth::One);
                r.mean_component_ms(|c| c.breakdown.rot_latency)
                    + r.mean_component_ms(|c| c.breakdown.media)
                    - f * rev_ms
            };
            let zl = sim(true);
            let ordinary = sim(false);
            let line = row_string([
                pct.to_string(),
                format!("{:.2}", model::zero_latency_rot_latency_revs(f) * rev_ms),
                format!("{zl:.2}"),
                format!("{:.2}", model::ordinary_rot_latency_revs(spt) * rev_ms),
                format!("{ordinary:.2}"),
            ]);
            (line, (pct == 100).then_some((zl, ordinary)))
        });
    for (line, at_track) in results {
        if let Some((zl, ordinary)) = at_track {
            rec.headline("zero_latency_ms_at_track", zl);
            rec.headline("ordinary_ms_at_track", ordinary);
        }
        println!("{line}");
    }
    probe.finish();
    rec.finish(&reg);
}
