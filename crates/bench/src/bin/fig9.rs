//! Figure 9: worst-case startup latency of a video stream vs number of
//! concurrent streams on a 10-disk Atlas 10K II array, for track-aligned
//! and unaligned access. With `--hard`, prints the §5.4.2 hard-real-time
//! admission numbers instead.

use sim_disk::models;
use sim_disk::SimDur;
use traxtent_bench::{header, row, row_string, Cli};
use videoserver::{hard, soft, ServerConfig};

fn main() {
    let cli = Cli::parse_with(&["--hard"]);
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let cfg = probe.wrap(models::quantum_atlas_10k_ii());
    let track = cfg.geometry.track(0).lbn_count() as u64;

    if cli.has("--hard") {
        let mut rec = cli.recorder("fig9_hard");
        header("§5.4.2: hard real-time streams per disk (4 Mb/s)");
        row(["io_size".into(), "unaligned".into(), "track-aligned".into()]);
        let results = cli.executor().run(
            vec![("264 KB", "264kb", track), ("528 KB", "528kb", 2 * track)],
            |_, (label, key, io)| {
                let unaligned = hard::max_streams(&cfg, 4.0, io, false);
                let aligned = hard::max_streams(&cfg, 4.0, io, true);
                let line = row_string([label.into(), unaligned.to_string(), aligned.to_string()]);
                (line, key, unaligned, aligned)
            },
        );
        for (line, key, unaligned, aligned) in results {
            rec.headline(&format!("unaligned_streams_{key}"), unaligned as f64);
            rec.headline(&format!("aligned_streams_{key}"), aligned as f64);
            println!("{line}");
        }
        println!("paper: 264 KB → 36 vs 67; 528 KB → 52 vs 75");
        probe.finish();
        rec.finish(&reg);
        return;
    }
    let mut rec = cli.recorder("fig9");

    let (rounds, quantile) = if cli.quick { (60, 0.98) } else { (400, 0.9999) };
    header("Figure 9: startup latency vs concurrent streams (10-disk array)");
    row([
        "streams_total".into(),
        "aligned_io_KB".into(),
        "aligned_latency_s".into(),
        "unaligned_io_KB".into(),
        "unaligned_latency_s".into(),
    ]);
    let per_disk: Vec<usize> = if cli.quick {
        vec![20, 40, 55, 65]
    } else {
        vec![10, 20, 30, 40, 45, 55, 60, 65, 70, 75]
    };

    // One job per (streams, alignment) cell; the server simulation is the
    // dominant cost, so fan the whole grid out.
    let jobs: Vec<(usize, bool)> = per_disk
        .iter()
        .flat_map(|&v| [true, false].map(move |a| (v, a)))
        .collect();
    let cells = cli.executor().run(jobs, |_, (v, aligned)| {
        let server = ServerConfig {
            aligned,
            rounds,
            quantile,
            seed: cli.seed,
            ..Default::default()
        };
        match soft::operating_point(&cfg, &server, v) {
            Some(p) => {
                p.measurement.export_metrics(&reg);
                (
                    format!("{}", p.io_sectors * 512 / 1024),
                    format!("{:.2}", p.startup_latency.as_secs_f64()),
                )
            }
            None => ("-".into(), "unsupportable".into()),
        }
    });
    for (i, &v) in per_disk.iter().enumerate() {
        let (aio, alat) = cells[2 * i].clone();
        let (uio, ulat) = cells[2 * i + 1].clone();
        row([format!("{}", v * 10), aio, alat, uio, ulat]);
    }

    // The 0.5 s round-time comparison.
    let cap = SimDur::from_secs_f64(0.5);
    let counts = cli.executor().run(vec![true, false], |_, aligned| {
        let server = ServerConfig {
            aligned,
            rounds,
            quantile,
            seed: cli.seed,
            ..Default::default()
        };
        soft::max_streams_at_round(&cfg, &server, track, cap)
    });
    println!(
        "at a 0.5 s round with track-sized I/Os: aligned {} vs unaligned {} streams/disk (paper: 70 vs 45)",
        counts[0], counts[1]
    );
    rec.headline("aligned_streams_at_half_s_round", counts[0] as f64);
    rec.headline("unaligned_streams_at_half_s_round", counts[1] as f64);
    probe.finish();
    rec.finish(&reg);
}
