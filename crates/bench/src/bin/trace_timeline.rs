//! Offline analyzer for causal span exports (`--trace` on the sweep
//! binaries): validates the span trees, prints a per-layer breakdown of
//! where request time went — the Figure-3 view rebuilt from spans rather
//! than from drive phase events — and renders the slowest request trees.
//! Optionally cross-checks the sibling Chrome export and prints the
//! time-series tables from a `--timeline` manifest.
//!
//! ```text
//! server_sweep --quick --trace /tmp/sweep.jsonl --timeline --manifest /tmp/m
//! trace_timeline /tmp/sweep.spans.jsonl --chrome /tmp/sweep.chrome.json \
//!     --manifest /tmp/m/server_timeline.json
//! ```

use std::collections::BTreeMap;
use std::io::BufRead;
use traxtent::obs::span::{self, Span};
use traxtent_bench::manifest::{json, Manifest};

/// The worst request trees printed by default; override with `--top <n>`.
const DEFAULT_TOP: usize = 3;

fn usage(name: &str) -> ! {
    eprintln!("usage: {name} <spans.jsonl> [--top <n>] [--chrome <file>] [--manifest <file>]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let name = std::env::args()
        .next()
        .unwrap_or_else(|| "trace_timeline".into());
    let mut path = None;
    let mut top = DEFAULT_TOP;
    let mut chrome = None;
    let mut manifest = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => {
                top = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage(&name));
            }
            "--chrome" => chrome = Some(args.next().unwrap_or_else(|| usage(&name))),
            "--manifest" => manifest = Some(args.next().unwrap_or_else(|| usage(&name))),
            _ if path.is_none() && !a.starts_with('-') => path = Some(a),
            _ => usage(&name),
        }
    }
    let path = path.unwrap_or_else(|| usage(&name));

    let file =
        std::fs::File::open(&path).unwrap_or_else(|e| fail(&format!("cannot open `{path}`: {e}")));
    let mut spans: Vec<Span> = Vec::new();
    for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_else(|e| fail(&format!("read failure at line {}: {e}", i + 1)));
        if line.trim().is_empty() {
            continue;
        }
        let span = Span::parse_json(&line)
            .unwrap_or_else(|e| fail(&format!("malformed span at line {}: {e}", i + 1)));
        spans.push(span);
    }
    if spans.is_empty() {
        println!("span export `{path}` is empty: nothing to report");
        return;
    }
    let stats =
        span::validate(&spans).unwrap_or_else(|e| fail(&format!("invalid span trees: {e}")));

    println!("# Span report: {path}");
    println!(
        "{} spans in {} trees, max depth {}",
        stats.spans, stats.roots, stats.max_depth
    );

    // Census: count and total simulated time per span kind.
    let mut census: BTreeMap<&str, (u64, u128)> = BTreeMap::new();
    for s in &spans {
        let e = census.entry(s.name.as_str()).or_insert((0, 0));
        e.0 += 1;
        e.1 += u128::from(s.duration_ns());
    }
    println!("## Span census");
    println!("{:<12} {:>8} {:>12}", "span", "count", "total_ms");
    for (name, (count, total)) in &census {
        println!("{name:<12} {count:>8} {:>12.3}", *total as f64 / 1e6);
    }

    // Figure-3-style layer breakdown: mean time per *request* spent in
    // each span kind, as a share of the mean request response. Fan-out
    // layers (member commands running in parallel) can exceed 100% — the
    // share is of wall time, summed across members.
    let requests: Vec<&Span> = spans.iter().filter(|s| s.name == "request").collect();
    if !requests.is_empty() {
        let n = requests.len() as f64;
        let mean_ms = |name: &str| {
            census
                .get(name)
                .map_or(0.0, |(_, total)| *total as f64 / n / 1e6)
        };
        let response_ms = mean_ms("request");
        println!(
            "## Mean per-request layer breakdown ({} requests)",
            requests.len()
        );
        println!("{:<12} {:>9} {:>7}", "layer", "mean_ms", "share");
        for layer in [
            "queue_wait",
            "dispatch",
            "vol_cmd",
            "reconstruct",
            "member_cmd",
            "disk_cmd",
            "seek",
            "rot_wait",
            "media",
            "bus",
        ] {
            if census.contains_key(layer) {
                println!(
                    "{layer:<12} {:>9.4} {:>6.1}%",
                    mean_ms(layer),
                    100.0 * mean_ms(layer) / response_ms.max(1e-12)
                );
            }
        }
        println!("{:<12} {response_ms:>9.4} {:>6.1}%", "request", 100.0);

        // The slowest request trees, rendered as indented outlines.
        let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
        for s in &spans {
            children.entry(s.parent).or_default().push(s);
        }
        let mut worst = requests.clone();
        worst.sort_by_key(|s| std::cmp::Reverse(s.duration_ns()));
        println!("## Slowest {} request trees", top.min(worst.len()));
        for root in worst.iter().take(top) {
            render(root, &children, 0);
        }
    }

    if let Some(chrome_path) = chrome {
        check_chrome(&chrome_path, stats.spans);
    }
    if let Some(manifest_path) = manifest {
        print_manifest_timelines(&manifest_path);
    }
}

/// Prints one span subtree as an indented outline.
fn render(s: &Span, children: &BTreeMap<u64, Vec<&Span>>, depth: usize) {
    println!(
        "{:indent$}{} {:.3} ms @ {:.3} ms{}{}",
        "",
        s.name,
        s.duration_ns() as f64 / 1e6,
        s.start_ns as f64 / 1e6,
        if s.track > 0 {
            format!(" [m{}]", s.track - 1)
        } else {
            String::new()
        },
        if s.attrs.is_empty() {
            String::new()
        } else {
            format!(" ({})", s.attrs)
        },
        indent = depth * 2
    );
    for c in children.get(&s.id).into_iter().flatten() {
        render(c, children, depth + 1);
    }
}

/// Validates the sibling Chrome `trace_event` export: well-formed JSON
/// with a `traceEvents` array of objects, one complete event per span.
fn check_chrome(path: &str, spans: usize) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read `{path}`: {e}")));
    let value = json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("chrome export `{path}` is not valid JSON: {e}")));
    let events = value
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| fail(&format!("chrome export `{path}` lacks a traceEvents array")));
    let complete = events
        .iter()
        .filter_map(|e| e.as_object())
        .filter(|o| o.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    if complete != spans {
        fail(&format!(
            "chrome export `{path}` holds {complete} complete events for {spans} spans"
        ));
    }
    println!(
        "chrome export `{path}`: {} events ({complete} complete) — ok",
        events.len()
    );
}

/// Prints every time-series recorded in a `--timeline` manifest.
fn print_manifest_timelines(path: &str) {
    let m = Manifest::load(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(&format!("cannot load manifest `{path}`: {e}")));
    if m.timeline.is_empty() {
        println!("manifest `{path}` records no timelines");
        return;
    }
    for (name, rows) in &m.timeline {
        println!("## Manifest timeline {name} ({} windows)", rows.len());
        let cols: Vec<&String> = rows.first().map(|r| r.keys().collect()).unwrap_or_default();
        println!(
            "{}",
            cols.iter()
                .map(|c| format!("{c:>10}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for row in rows {
            println!(
                "{}",
                cols.iter()
                    .map(|c| format!("{:>10.3}", row.get(*c).copied().unwrap_or(f64::NAN)))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
    }
}
