//! Trace replay: engine-throughput measurement for the event-driven
//! service path.
//!
//! ```text
//! replay                              # synthetic trace (figure `replay_synthetic`)
//! replay --input traces/sample.trc   # a committed/external trace (figure `replay`)
//! replay --count 200000              # synthetic trace of a given length
//! replay --count 500 --emit out.trc  # write the synthetic trace, don't replay
//! ```
//!
//! Reads a timestamped block trace (see [`workloads::replay`] for the line
//! format) or generates a deterministic synthetic one, replays it through
//! [`sim_disk::Disk::service_batch_into`] on the Atlas 10K II, and prints
//! the simulation outcome. Stdout is a deterministic function of the trace
//! and seed; the replay *rate* (simulated requests per wall-clock second)
//! is inherently machine-dependent, so it goes to stderr and into the
//! manifest — wall time is judged by `bench_diff` only under an explicit
//! `--wall-tol`.

use sim_disk::disk::Disk;
use sim_disk::models;
use traxtent_bench::{header, row, Cli};
use workloads::replay::{parse_trace, render_trace, replay, synthetic_trace, SyntheticSpec};

fn main() {
    let cli = Cli::parse_with_values(&[], &["--input", "--count", "--emit"]);
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();

    let cfg = probe.wrap(models::quantum_atlas_10k_ii());
    let capacity = cfg.geometry.capacity_lbns();

    let default_count = if cli.quick { 20_000 } else { 200_000 };
    let count: usize = match cli.value("--count") {
        None => default_count,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: --count requires an integer, got `{raw}`");
            std::process::exit(2);
        }),
    };

    let (figure, records) = match cli.value("--input") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read trace `{path}`: {e}");
                std::process::exit(2);
            });
            let records = parse_trace(&text).unwrap_or_else(|e| {
                eprintln!("error: `{path}`: {e}");
                std::process::exit(2);
            });
            ("replay", records)
        }
        None => {
            let spec = SyntheticSpec::default_for(capacity, count, cli.seed);
            ("replay_synthetic", synthetic_trace(&spec))
        }
    };
    if records.is_empty() {
        eprintln!("error: trace contains no requests");
        std::process::exit(2);
    }

    if let Some(path) = cli.value("--emit") {
        std::fs::write(path, render_trace(&records)).unwrap_or_else(|e| {
            eprintln!("error: cannot write trace `{path}`: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {} requests to {path}", records.len());
        return;
    }

    let mut rec = cli.recorder(figure);
    let mut disk = Disk::new(cfg);
    let wall_start = std::time::Instant::now();
    let result = replay(&mut disk, &records);
    let wall = wall_start.elapsed().as_secs_f64();
    result.export_metrics(&reg);

    let span_s = result.sim_span().as_secs_f64();
    let mean_ms = result.mean_response_ms();
    let max_ms = result.max_response_ms();
    let hit_frac = result.cache_hit_fraction();

    header(&format!(
        "Trace replay: {} requests on the Atlas 10K II",
        result.requests()
    ));
    row(["metric".into(), "value".into()]);
    row(["requests".into(), result.requests().to_string()]);
    row(["sim_span_s".into(), format!("{span_s:.3}")]);
    row(["mean_response_ms".into(), format!("{mean_ms:.3}")]);
    row(["max_response_ms".into(), format!("{max_ms:.3}")]);
    row(["cache_hit_fraction".into(), format!("{hit_frac:.4}")]);

    // Wall-dependent numbers stay off stdout so the figure output is
    // byte-reproducible across machines and thread counts.
    let req_per_sec = result.requests() as f64 / wall.max(1e-9);
    eprintln!(
        "replayed {} requests in {:.3}s wall ({:.0} simulated requests/sec)",
        result.requests(),
        wall,
        req_per_sec
    );
    reg.set_gauge("replay.requests_per_sec", req_per_sec as u64);

    rec.headline("sim_span_s", span_s);
    rec.headline("mean_response_ms", mean_ms);
    rec.headline("max_response_ms", max_ms);
    rec.headline("cache_hit_fraction", hit_frac);
    probe.finish();
    rec.finish(&reg);
}
