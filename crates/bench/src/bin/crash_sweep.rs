//! Crash sweep: a cut-point grid × {ffs, lfs, RAID-5} × recovery on/off.
//!
//! For each cut fraction of the run's durability horizon, the sweep
//! resolves the exact durable media state (torn writes and all) and then
//! measures each subsystem twice:
//!
//! * **ffs** — is the raw post-cut image mountable without repair, how
//!   many repairs does fsck make, and does the repaired image mount;
//! * **lfs** — how much does trusting only the checkpoint lose (no
//!   recovery) versus rolling the log forward past it;
//! * **RAID-5** — how many parity mismatches (write holes) does the cut
//!   leave, and does `scrub_repair` close every one.
//!
//! Every number is a pure function of (seed, cut): the grid is
//! bit-reproducible at any `--threads`, and the committed baseline
//! manifest turns any drift into a `bench_diff` failure.

use ffs::fsck::{check, fsck};
use ffs::image::is_meta_block;
use ffs::{FileId, FileSystem, Personality, BLOCK_SECTORS};
use fleet::{member_boundaries, StripePolicy, Volume};
use lfs::recovery::{recover, LogDisk};
use sim_disk::crash::{pattern_payload, replay, splitmix, CrashLog, SectorImage, SECTOR_USIZE};
use sim_disk::disk::Disk;
use sim_disk::{models, SimTime};
use traxtent::obs::Registry;

const MB: u64 = 1 << 20;
const LFS_CAPACITY: u64 = 4096;

/// Deterministic ffs workload (creates, appends, deletes, syncs), kept
/// well inside the small test disk.
fn ffs_workload(fs: &mut FileSystem, seed: u64) {
    let mut h = seed;
    let mut next = move || {
        h = splitmix(h);
        h
    };
    let mut live: Vec<FileId> = Vec::new();
    for _ in 0..30 {
        match next() % 10 {
            0..=2 => {
                if live.len() < 10 {
                    live.push(fs.create());
                }
            }
            3..=7 => {
                if live.is_empty() {
                    continue;
                }
                let f = live[(next() % live.len() as u64) as usize];
                let size = fs.size_of(f).expect("file is live");
                if size < 2 * MB {
                    let len = 64 * 1024 + next() % (MB / 2);
                    fs.write(f, size, len).expect("disk has room");
                }
            }
            8 => {
                if live.len() > 1 {
                    let f = live.swap_remove((next() % live.len() as u64) as usize);
                    fs.delete(f).expect("file is live");
                }
            }
            _ => {
                if next() % 2 == 0 {
                    fs.sync();
                } else {
                    fs.checkpoint_metadata();
                }
            }
        }
    }
}

/// One ffs run: the mkfs image, the write log, and the layout needed to
/// fsck any cut of it.
struct FfsRun {
    initial: SectorImage,
    log: CrashLog,
    layout: ffs::Layout,
}

fn build_ffs(seed: u64) -> FfsRun {
    let mut fs = FileSystem::format(Disk::new(models::small_test_disk()), Personality::Traxtent);
    fs.enable_crash_shadow(seed ^ 0x0ff5_cafe);
    let initial = fs.format_image();
    ffs_workload(&mut fs, seed);
    assert!(
        fs.shadow_error().is_none(),
        "crash shadow must track every write: {:?}",
        fs.shadow_error()
    );
    let layout = fs.layout().clone();
    let log = fs.disk_mut().take_crash_log().expect("shadow arms the log");
    FfsRun {
        initial,
        log,
        layout,
    }
}

/// One lfs run: the append/checkpoint write log (the log disk starts
/// blank, so the replay base is the empty image).
fn build_lfs(seed: u64) -> CrashLog {
    let mut log = LogDisk::new(Disk::new(models::small_test_disk()), LFS_CAPACITY);
    let mut h = seed;
    let mut next = move || {
        h = splitmix(h);
        h
    };
    for i in 0..40u64 {
        if next() % 5 == 0 {
            log.checkpoint();
        } else {
            let sectors = 1 + next() % 16;
            let data = pattern_payload(seed ^ (i + 1), log.head() + 1, sectors);
            log.append(&data).expect("40 small batches fit");
        }
    }
    log.disk_mut()
        .take_crash_log()
        .expect("LogDisk arms the log")
}

/// Builds a RAID-5 volume, arms capture, and runs a deterministic mixed
/// workload whose multi-chunk writes fan out asymmetrically enough to
/// open real write holes under a cut.
fn build_raid5(seed: u64) -> Volume {
    // Heterogeneous spindles: identical phase-locked members would tear
    // data and parity writes in lockstep, hiding the write hole.
    let members: Vec<_> = [10_000u32, 12_000, 15_000]
        .iter()
        .map(|&rpm| {
            let mut cfg = models::small_test_disk();
            cfg.spindle = sim_disk::mech::Spindle::new(rpm);
            let d = Disk::new(cfg);
            let b = member_boundaries(&d);
            (d, b)
        })
        .collect();
    let mut v = Volume::raid5(members, StripePolicy::aligned()).unwrap();
    v.format(seed);
    v.arm_crash();
    let mut h = seed;
    let mut next = move || {
        h = splitmix(h);
        h
    };
    let cap = v.capacity();
    let mut t = SimTime::ZERO;
    for _ in 0..20 {
        let len = 1 + next() % 256;
        let lbn = next() % (cap - len);
        let words: Vec<u64> = (0..len).map(|o| splitmix(seed ^ (lbn + o))).collect();
        let c = v
            .write(lbn, &words, t)
            .expect("healthy volume serves writes");
        t = c.completion;
    }
    v
}

/// Mid-record durable instants: for every logged write of at least two
/// sectors, the instant its middle sector hit media. Cutting exactly
/// there tears the write (earlier sectors durable, later ones not), so
/// snapping a grid point to the nearest candidate guarantees the cut
/// lands somewhere recovery has real work to do.
fn mid_record_instants(log: &CrashLog, out: &mut Vec<SimTime>) {
    for rec in &log.records {
        if rec.durable.len() >= 2 {
            out.push(rec.durable[rec.durable.len() / 2]);
        }
    }
}

/// Like [`mid_record_instants`], but only for metadata writes whose torn
/// tail would actually change the on-media bytes. ffs checkpoints rewrite
/// every group, changed or not, and tearing a byte-identical rewrite is
/// semantically invisible — only a tear across *changed* tail sectors can
/// leave a dirty image for fsck to repair.
fn mid_meta_instants(initial: &SectorImage, log: &CrashLog, out: &mut Vec<SimTime>) {
    use std::collections::HashMap;
    let mut media: HashMap<u64, Vec<u8>> = HashMap::new();
    for rec in &log.records {
        let Some(payload) = &rec.payload else {
            continue;
        };
        let touches_meta =
            (rec.lbn..rec.lbn + rec.len).any(|lbn| is_meta_block(lbn / BLOCK_SECTORS));
        if touches_meta && rec.durable.len() >= 2 {
            for mid in 1..rec.durable.len() {
                let tail_changed = (mid..rec.durable.len()).any(|i| {
                    let lbn = rec.lbn + i as u64;
                    let new = &payload[i * SECTOR_USIZE..(i + 1) * SECTOR_USIZE];
                    match media.get(&lbn) {
                        Some(old) => old != new,
                        None => initial.read(lbn)[..] != *new,
                    }
                });
                if tail_changed {
                    out.push(rec.durable[mid]);
                }
            }
        }
        for i in 0..rec.durable.len() {
            media.insert(
                rec.lbn + i as u64,
                payload[i * SECTOR_USIZE..(i + 1) * SECTOR_USIZE].to_vec(),
            );
        }
    }
}

/// Snaps `target` to the nearest candidate instant; endpoint fractions
/// (nothing durable / everything durable) pass through untouched.
fn snap_cut(cands: &[SimTime], target: SimTime, frac: u64) -> SimTime {
    if frac == 0 || frac == 1000 || cands.is_empty() {
        return target;
    }
    *cands
        .iter()
        .min_by_key(|c| c.as_ns().abs_diff(target.as_ns()))
        .expect("candidates nonempty")
}

/// Everything one grid point measures.
struct CutResult {
    line: String,
    ffs_mountable_norec: bool,
    ffs_repairs: u64,
    ffs_mountable_rec: bool,
    ffs_files: u64,
    lfs_batches_norec: u64,
    lfs_batches_rec: u64,
    raid5_torn: u64,
    raid5_mismatches_norec: u64,
    raid5_mismatches_rec: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_cut(ffs_run: &FfsRun, lfs_log: &CrashLog, seed: u64, frac: u64) -> CutResult {
    // ffs: replay the durable image, try to mount raw, then fsck.
    let mut cands = Vec::new();
    mid_meta_instants(&ffs_run.initial, &ffs_run.log, &mut cands);
    if cands.is_empty() {
        mid_record_instants(&ffs_run.log, &mut cands);
    }
    let cut = snap_cut(
        &cands,
        SimTime::from_ns(ffs_run.log.horizon().as_ns() * frac / 1000),
        frac,
    );
    let mut img = replay(&ffs_run.initial, &ffs_run.log, cut).expect("payloads attached");
    let mountable_norec = check(&img, &ffs_run.layout).is_ok();
    let report = fsck(&mut img, &ffs_run.layout);
    let repairs = report.bitmaps_rebuilt
        + report.bad_inode_sectors
        + report.duplicate_inodes
        + report.truncated_files
        + report.double_refs
        + report.leaked_blocks
        + report.lost_blocks
        + report.free_counts_fixed;
    let mountable_rec = check(&img, &ffs_run.layout).is_ok();

    // lfs: "no recovery" trusts only the newest durable checkpoint;
    // roll-forward replays every durable sealed batch past it.
    let mut cands = Vec::new();
    mid_record_instants(lfs_log, &mut cands);
    let lcut = snap_cut(
        &cands,
        SimTime::from_ns(lfs_log.horizon().as_ns() * frac / 1000),
        frac,
    );
    let limg = replay(&SectorImage::new(), lfs_log, lcut).expect("payloads attached");
    let recovered = recover(&limg, LFS_CAPACITY);
    let lfs_batches_norec = recovered.checkpoint_seq;
    let lfs_batches_rec = recovered.seq;

    // RAID-5: cut the armed volume mid-run, count the write holes a
    // read-only scrub sees, repair, and re-scrub.
    let mut v = build_raid5(seed);
    let mut cands = Vec::new();
    for m in 0..3 {
        if let Some(log) = v.member_crash_log(m) {
            mid_record_instants(log, &mut cands);
        }
    }
    cands.sort_unstable();
    let vcut = snap_cut(
        &cands,
        SimTime::from_ns(v.crash_horizon().as_ns() * frac / 1000),
        frac,
    );
    let rep = v.power_cut(vcut).expect("payloads attached");
    let reg = Registry::new();
    let before = v.scrub(&reg);
    let repair = v
        .scrub_repair(&reg, SimTime::ZERO)
        .expect("members healthy");
    assert_eq!(
        repair.mismatched_sectors, before.mismatches,
        "repair must see exactly what the read-only scrub saw"
    );
    let after = v.scrub(&reg);

    let line = traxtent_bench::row_string([
        format!("{:.1} %", frac as f64 / 10.0),
        if mountable_norec { "clean" } else { "dirty" }.into(),
        repairs.to_string(),
        mountable_rec.to_string(),
        report.files.to_string(),
        lfs_batches_norec.to_string(),
        lfs_batches_rec.to_string(),
        rep.torn_writes.to_string(),
        before.mismatches.to_string(),
        after.mismatches.to_string(),
    ]);
    CutResult {
        line,
        ffs_mountable_norec: mountable_norec,
        ffs_repairs: repairs,
        ffs_mountable_rec: mountable_rec,
        ffs_files: report.files,
        lfs_batches_norec,
        lfs_batches_rec,
        raid5_torn: rep.torn_writes,
        raid5_mismatches_norec: before.mismatches,
        raid5_mismatches_rec: after.mismatches,
    }
}

fn main() {
    let cli = traxtent_bench::Cli::parse();
    if cli.fault.is_some() {
        eprintln!(
            "error: crash_sweep injects power cuts, not drive faults; \
             vary --seed to replay the sweep on a different workload"
        );
        std::process::exit(2);
    }
    let probe = cli.probe();
    let reg = Registry::new();
    let mut rec = cli.recorder("crash_sweep");
    let seed = cli.seed ^ 0xc0a7;

    // Cut fractions of the durability horizon, in permille.
    let grid: Vec<u64> = if cli.quick {
        vec![0, 100, 250, 500, 750, 900, 1000]
    } else {
        (0..=20).map(|i| i * 50).collect()
    };

    let ffs_run = build_ffs(seed);
    let lfs_log = build_lfs(seed);

    traxtent_bench::header("crash sweep: cut-point grid x {ffs, lfs, raid5} x recovery on/off");
    traxtent_bench::row([
        "cut".into(),
        "ffs_raw".into(),
        "fsck_fixes".into(),
        "mountable".into(),
        "files".into(),
        "lfs_ckpt_seq".into(),
        "lfs_rolled_seq".into(),
        "r5_torn".into(),
        "r5_holes".into(),
        "r5_after".into(),
    ]);

    let results = cli.executor().run(grid.clone(), |_, frac| {
        run_cut(&ffs_run, &lfs_log, seed, frac)
    });

    let mut dirty_norec = 0u64;
    let mut mountable_rec = 0u64;
    let mut repairs = 0u64;
    let mut files = 0u64;
    let mut lfs_norec = 0u64;
    let mut lfs_rec = 0u64;
    let mut torn = 0u64;
    let mut holes_norec = 0u64;
    let mut holes_rec = 0u64;
    for r in &results {
        dirty_norec += u64::from(!r.ffs_mountable_norec);
        mountable_rec += u64::from(r.ffs_mountable_rec);
        repairs += r.ffs_repairs;
        files += r.ffs_files;
        lfs_norec += r.lfs_batches_norec;
        lfs_rec += r.lfs_batches_rec;
        torn += r.raid5_torn;
        holes_norec += r.raid5_mismatches_norec;
        holes_rec += r.raid5_mismatches_rec;
        println!("{}", r.line);
    }
    rec.headline("grid_points", results.len() as f64);
    rec.headline("ffs_dirty_without_recovery", dirty_norec as f64);
    rec.headline("ffs_mountable_after_fsck", mountable_rec as f64);
    rec.headline("ffs_repairs", repairs as f64);
    rec.headline("ffs_files_survived", files as f64);
    rec.headline("lfs_seq_checkpoint_only", lfs_norec as f64);
    rec.headline("lfs_seq_rolled_forward", lfs_rec as f64);
    rec.headline("raid5_torn_writes", torn as f64);
    rec.headline("raid5_holes_before_repair", holes_norec as f64);
    rec.headline("raid5_holes_after_repair", holes_rec as f64);
    probe.finish();
    rec.finish(&reg);
}
