//! Ablations called out in §5.2 and DESIGN.md:
//!
//! * **Importance of zero-latency access** — per-drive head-time reductions
//!   from alignment: the paper reports 16 %/32 % (Atlas 10K, onereq/tworeq),
//!   18 %/32 % (Atlas 10K II), but only 6 % (Ultrastar 18 ES) and 8 %
//!   (Cheetah X15), whose firmware lacks zero-latency access.
//! * **Firmware ablations** on the Atlas 10K II: the same measurement with
//!   zero-latency support switched off, and with command queueing (tworeq)
//!   as the only difference — separating the two mechanisms the design
//!   stacks together.

use sim_disk::disk::{Disk, DiskConfig};
use sim_disk::models;
use traxtent_bench::{header, row, row_string, Cli};
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

fn reductions(
    cfg: &DiskConfig,
    count: usize,
    seed: u64,
    reg: &traxtent::obs::Registry,
) -> (f64, f64) {
    let mut disk = Disk::new(cfg.clone());
    let track = cfg.geometry.track(0).lbn_count() as u64;
    let mut head = |alignment, queue| {
        let spec = RandomIoSpec {
            count,
            seed,
            ..RandomIoSpec::reads(track, alignment, queue)
        };
        let r = run_random_io(&mut disk, &spec);
        r.export_metrics(reg, queue);
        r.mean_head_time(queue).as_millis_f64()
    };
    let one = 1.0
        - head(Alignment::TrackAligned, QueueDepth::One)
            / head(Alignment::Unaligned, QueueDepth::One);
    let two = 1.0
        - head(Alignment::TrackAligned, QueueDepth::Two)
            / head(Alignment::Unaligned, QueueDepth::Two);
    (100.0 * one, 100.0 * two)
}

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("ablation");
    let count = if cli.quick { 400 } else { 2000 };
    let pool = cli.executor();

    header("Ablation A: head-time reduction from track alignment, per drive");
    row([
        "drive".into(),
        "zero_latency".into(),
        "onereq".into(),
        "tworeq".into(),
        "paper".into(),
    ]);
    let paper: &[(&str, &str)] = &[
        ("Quantum Atlas 10K", "16% / 32%"),
        ("Quantum Atlas 10K II", "18% / 32%"),
        ("IBM Ultrastar 18 ES", "6% / —"),
        ("Seagate Cheetah X15", "8% / —"),
    ];
    let sheets: Vec<_> = models::table1_sheets()
        .into_iter()
        .filter_map(|sheet| {
            paper
                .iter()
                .find(|(n, _)| *n == sheet.name)
                .map(|&(_, pap)| (sheet, pap))
        })
        .collect();
    let results = pool.run(sheets, |_, (sheet, pap)| {
        let cfg = probe.wrap(sheet.build());
        let (one, two) = reductions(&cfg, count, cli.seed, &reg);
        let line = row_string([
            sheet.name.to_string(),
            sheet.zero_latency.to_string(),
            format!("{one:.0}%"),
            format!("{two:.0}%"),
            pap.to_string(),
        ]);
        (line, sheet.name, one, two)
    });
    for (line, name, one, two) in results {
        let stem = name.to_lowercase().replace([' ', '-'], "_");
        rec.headline(&format!("onereq_pct_{stem}"), one);
        rec.headline(&format!("tworeq_pct_{stem}"), two);
        println!("{line}");
    }

    header("Ablation B: Atlas 10K II firmware features in isolation");
    row(["configuration".into(), "onereq".into(), "tworeq".into()]);
    let configs = vec![
        (
            "stock (zero-latency on)",
            "stock",
            probe.wrap(models::quantum_atlas_10k_ii()),
        ),
        (
            "zero-latency disabled",
            "no_zl",
            probe.wrap(DiskConfig {
                zero_latency: false,
                ..models::quantum_atlas_10k_ii()
            }),
        ),
    ];
    let results = pool.run(configs, |_, (label, key, cfg)| {
        let (one, two) = reductions(&cfg, count, cli.seed, &reg);
        let line = row_string([label.into(), format!("{one:.0}%"), format!("{two:.0}%")]);
        (line, key, one, two)
    });
    for (line, key, one, two) in results {
        rec.headline(&format!("onereq_pct_{key}"), one);
        rec.headline(&format!("tworeq_pct_{key}"), two);
        println!("{line}");
    }
    println!(
        "with zero-latency disabled, alignment only saves the head switch — the gain collapses, \
         confirming §2.2's claim that the two mechanisms together make the track the sweet spot"
    );
    probe.finish();
    rec.finish(&reg);
}
