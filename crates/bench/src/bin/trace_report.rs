//! Offline analyzer for `--trace` JSONL files: event census, per-phase
//! latency percentiles, a Figure-3/7-style mean breakdown of where the
//! response time went, and an accounting check that the per-phase sums
//! reproduce the host-observed response times.
//!
//! ```text
//! fig3 --quick --trace /tmp/fig3.jsonl
//! trace_report /tmp/fig3.jsonl
//! ```

use sim_disk::metrics::{MetricsRegistry, PHASES};
use sim_disk::trace::{peek_event_name, TraceEvent};
use std::collections::BTreeMap;
use std::io::BufRead;

/// The worst request rows printed by default; override with `--top <n>`.
const DEFAULT_TOP: usize = 5;

fn usage(name: &str) -> ! {
    eprintln!("usage: {name} <trace.jsonl> [--top <n>]");
    std::process::exit(2);
}

fn main() {
    let name = std::env::args()
        .next()
        .unwrap_or_else(|| "trace_report".into());
    let mut path = None;
    let mut top = DEFAULT_TOP;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => {
                top = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage(&name));
            }
            _ if path.is_none() && !a.starts_with('-') => path = Some(a),
            _ => usage(&name),
        }
    }
    let path = path.unwrap_or_else(|| usage(&name));

    let file = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot open `{path}`: {e}");
        std::process::exit(1);
    });

    let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut registry = MetricsRegistry::new();
    let mut completes: Vec<TraceEvent> = Vec::new();
    let mut scsi: BTreeMap<String, u64> = BTreeMap::new();
    // A well-formed line whose event kind this build does not know (a
    // newer producer, or span records mixed into the stream) is counted
    // and skipped. Only a malformed line — the producing run interrupted
    // mid-write, leaving a truncated tail — stops the scan.
    let mut unknown: BTreeMap<String, u64> = BTreeMap::new();
    let mut truncated_at: Option<usize> = None;
    for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("error: read failure at line {}: {e}", i + 1);
            std::process::exit(1);
        });
        if line.trim().is_empty() {
            continue;
        }
        let event = match TraceEvent::parse_json(&line) {
            Ok(event) => event,
            Err(_) => match peek_event_name(&line) {
                Some(kind) => {
                    *unknown.entry(kind).or_insert(0) += 1;
                    continue;
                }
                None => {
                    truncated_at = Some(i + 1);
                    break;
                }
            },
        };
        *census.entry(event.name()).or_insert(0) += 1;
        match &event {
            TraceEvent::Complete { .. } => {
                registry.observe_complete(&event);
                completes.push(event);
            }
            TraceEvent::ScsiCommand { kind, .. } => {
                *scsi.entry(kind.clone()).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    if census.is_empty() && unknown.is_empty() {
        match truncated_at {
            Some(line_no) => {
                println!("trace `{path}` holds no usable events (truncated at line {line_no})")
            }
            None => println!("trace `{path}` is empty: nothing to report"),
        }
        return;
    }

    println!("# Trace report: {path}");
    if let Some(line_no) = truncated_at {
        let events: u64 = census.values().sum();
        println!(
            "note: trace truncated at line {line_no}; reporting the {events} events before it"
        );
    }
    println!("## Event census");
    for (name, count) in &census {
        println!("{name:<12} {count:>10}");
    }
    if !unknown.is_empty() {
        println!("## Unrecognized event kinds (skipped)");
        for (kind, count) in &unknown {
            println!("{kind:<12} {count:>10}");
        }
    }
    if completes.is_empty() && census.is_empty() {
        println!("no recognized events in trace");
        return;
    }
    if !scsi.is_empty() {
        println!("## SCSI diagnostic commands");
        for (kind, count) in &scsi {
            println!("{kind:<17} {count:>5}");
        }
    }

    if completes.is_empty() {
        println!("no completed requests in trace");
        return;
    }

    // Figure-3/7-style mean breakdown: where the average response went.
    let n = completes.len() as f64;
    let mut sums = [0u128; PHASES.len()];
    let mut worst_residual = 0u64;
    for c in &completes {
        for (k, phase) in PHASES.iter().enumerate() {
            sums[k] += u128::from(phase_ns(c, phase));
        }
        let accounted: u64 = PHASES[..PHASES.len() - 1]
            .iter()
            .map(|p| phase_ns(c, p))
            .sum();
        let response = phase_ns(c, "response");
        worst_residual = worst_residual.max(response.abs_diff(accounted));
    }
    let mean_ms = |k: usize| sums[k] as f64 / n / 1e6;
    let response_ms = mean_ms(PHASES.len() - 1);
    println!(
        "## Mean response-time breakdown ({} requests)",
        completes.len()
    );
    println!("{:<13} {:>9} {:>7}", "phase", "mean_ms", "share");
    for (k, phase) in PHASES.iter().enumerate().take(PHASES.len() - 1) {
        println!(
            "{:<13} {:>9.4} {:>6.1}%",
            phase,
            mean_ms(k),
            100.0 * mean_ms(k) / response_ms
        );
    }
    println!("{:<13} {:>9.4} {:>6.1}%", "response", response_ms, 100.0);
    println!(
        "phase sums reproduce response within {:.1} µs worst-case (rounding residual)",
        worst_residual as f64 / 1e3
    );

    // Percentile table — the same one `--metrics` prints at run time.
    print!("{}", registry.report());

    // The slowest requests, with their individual breakdowns.
    completes.sort_by_key(|c| std::cmp::Reverse(phase_ns(c, "response")));
    println!("## Slowest {} requests (ms)", top.min(completes.len()));
    println!(
        "{:<8} {:<5} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "req", "op", "response", "queue", "seek", "rot", "media", "bus"
    );
    for c in completes.iter().take(top) {
        if let TraceEvent::Complete {
            req,
            op,
            queue,
            seek,
            rot_latency,
            media,
            bus,
            response,
            ..
        } = c
        {
            println!(
                "{:<8} {:<5} {:>9.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                req,
                format!("{op:?}").to_lowercase(),
                *response as f64 / 1e6,
                *queue as f64 / 1e6,
                *seek as f64 / 1e6,
                *rot_latency as f64 / 1e6,
                *media as f64 / 1e6,
                *bus as f64 / 1e6,
            );
        }
    }
}

/// One named phase of a [`TraceEvent::Complete`], in nanoseconds.
fn phase_ns(c: &TraceEvent, phase: &str) -> u64 {
    let TraceEvent::Complete {
        queue,
        overhead,
        seek,
        head_switch,
        rot_latency,
        media,
        bus,
        write_settle,
        response,
        ..
    } = c
    else {
        return 0;
    };
    match phase {
        "queue" => *queue,
        "overhead" => *overhead,
        "seek" => *seek,
        "head_switch" => *head_switch,
        "rot_latency" => *rot_latency,
        "media" => *media,
        "bus" => *bus,
        "write_settle" => *write_settle,
        "response" => *response,
        _ => 0,
    }
}
