//! Figure 8: response time and its standard deviation for track-aligned
//! and unaligned access, on a simulated Atlas 10K II with an infinitely
//! fast bus (isolating mechanical variance, as the paper does).

use sim_disk::bus::BusConfig;
use sim_disk::disk::{Disk, DiskConfig};
use sim_disk::models;
use traxtent_bench::{header, row, Cli};
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

const PCTS: [u64; 6] = [2, 10, 25, 50, 75, 100];

fn main() {
    let cli = Cli::parse();
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("fig8");
    let count = if cli.quick { 400 } else { 3000 };
    let cfg = probe.wrap(DiskConfig {
        bus: BusConfig::infinite(),
        ..models::quantum_atlas_10k_ii()
    });
    let track = cfg.geometry.track(0).lbn_count() as u64;

    header("Figure 8: response time ± σ vs request size (infinite bus)");
    row([
        "pct_of_track".into(),
        "aligned_mean_ms".into(),
        "aligned_sigma_ms".into(),
        "unaligned_mean_ms".into(),
        "unaligned_sigma_ms".into(),
    ]);

    // One job per (size, alignment) cell.
    let jobs: Vec<(u64, Alignment)> = PCTS
        .iter()
        .flat_map(|&pct| [Alignment::TrackAligned, Alignment::Unaligned].map(move |a| (pct, a)))
        .collect();
    let cells = cli.executor().run(jobs, |_, (pct, alignment)| {
        let sectors = (track * pct / 100).max(1);
        let spec = RandomIoSpec {
            count,
            seed: cli.seed,
            ..RandomIoSpec::reads(sectors, alignment, QueueDepth::One)
        };
        let r = run_random_io(&mut Disk::new(cfg.clone()), &spec);
        r.export_metrics(&reg, QueueDepth::One);
        (r.mean_response().as_millis_f64(), r.response_std_dev_ms())
    });

    for (i, pct) in PCTS.iter().enumerate() {
        let (am, asd) = cells[2 * i];
        let (um, usd) = cells[2 * i + 1];
        row([
            pct.to_string(),
            format!("{am:.2}"),
            format!("{asd:.2}"),
            format!("{um:.2}"),
            format!("{usd:.2}"),
        ]);
    }
    let (am, asd) = cells[cells.len() - 2];
    let (um, usd) = cells[cells.len() - 1];
    rec.headline("aligned_mean_ms_at_track", am);
    rec.headline("aligned_sigma_ms_at_track", asd);
    rec.headline("unaligned_mean_ms_at_track", um);
    rec.headline("unaligned_sigma_ms_at_track", usd);
    println!("paper: σ_aligned falls to ≈ 0.4 ms at track size (pure seek variance); σ_unaligned stays ≈ 1.5 ms");
    probe.finish();
    rec.finish(&reg);
}
