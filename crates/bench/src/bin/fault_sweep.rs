//! Fault sweep: how the stack degrades as injected fault intensity rises.
//!
//! Each level of the sweep runs two experiments against drives configured
//! with that level's [`sim_disk::fault::FaultConfig`]:
//!
//! * **extraction** — [`dixtrac::extract_auto`] on the defect-laden small
//!   test disk: which path ran (SCSI or the timing fallback), whether the
//!   recovered table matches the geometry exactly, and the mean per-track
//!   confidence the majority vote assigned;
//! * **alignment win** — the §5.2 aligned-vs-unaligned efficiency gain at
//!   track size on the Atlas 10K II, showing how much of the traxtent win
//!   survives a flaky drive.
//!
//! Fault decisions are pure functions of the fault seed and request
//! identity, so the sweep is bit-reproducible at any `--threads`. The
//! fault seed derives from `--seed`, so one flag replays the whole sweep
//! on a different fault stream; a `--faults` spec passed to this binary is
//! rejected since the sweep sets its own per level.

use dixtrac::{extract_auto, ExtractionMethod, GeneralConfig};
use scsi::ScsiDisk;
use sim_disk::defects::{DefectPolicy, SpareScheme};
use sim_disk::disk::Disk;
use sim_disk::fault::FaultConfig;
use sim_disk::models;
use traxtent::TrackBoundaries;
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

/// The swept fault levels, mildest first: `(name, --faults spec)`. The
/// empty spec is the fault-free control.
const LEVELS: [(&str, &str); 7] = [
    ("off", ""),
    ("jitter-lo", "seek=gauss:0.01,rot=uniform:0.002"),
    (
        "jitter-hi",
        "seek=gauss:0.05,hs=gauss:0.05,rot=uniform:0.005",
    ),
    ("media", "media=1000,grown=100000"),
    ("transient", "transient=20000"),
    ("nodiag", "nodiag,transient=5000"),
    (
        "worst",
        "media=2000,grown=100000,transient=20000,seek=gauss:0.05,rot=uniform:0.005,nodiag",
    ),
];

fn ground_truth(disk: &Disk) -> TrackBoundaries {
    TrackBoundaries::new(
        disk.geometry()
            .iter_tracks()
            .filter(|(_, t)| t.lbn_count() > 0)
            .map(|(_, t)| t.first_lbn())
            .collect(),
        disk.geometry().capacity_lbns(),
    )
    .expect("geometry yields a valid table")
}

/// One level's results, ready for printing and the manifest.
struct LevelResult {
    line: String,
    exact: bool,
    fallback: bool,
    mean_conf: f64,
    gain: f64,
}

fn run_level(
    probe: &traxtent_bench::Probe,
    reg: &traxtent::obs::Registry,
    name: &str,
    spec: &str,
    fault_seed: u64,
    io_count: usize,
    seed: u64,
) -> LevelResult {
    let mut fault = if spec.is_empty() {
        FaultConfig::default()
    } else {
        FaultConfig::parse_spec(spec).expect("level specs are valid")
    };
    fault.seed = fault_seed;

    // Extraction robustness on the defect-laden small disk. Three votes
    // per boundary decision everywhere, so the only swept variable is the
    // fault level itself.
    let mut cfg = probe.wrap(models::with_factory_defects(
        models::small_test_disk(),
        SpareScheme::SectorsPerCylinder(8),
        DefectPolicy::Slip,
        500,
        17,
    ));
    cfg.fault = fault;
    let truth = ground_truth(&Disk::new(cfg.clone()));
    let mut s = ScsiDisk::new(Disk::new(cfg));
    let gcfg = GeneralConfig {
        contexts: 16,
        votes: 3,
        ..GeneralConfig::default()
    };
    let (method, exact, mean_conf) = match extract_auto(&mut s, &gcfg) {
        Ok(auto) => {
            if let Some(r) = &auto.scsi {
                r.export_metrics(reg);
            }
            if let Some(g) = &auto.general {
                g.export_metrics(reg);
            }
            (
                match auto.method {
                    ExtractionMethod::Scsi => "scsi",
                    ExtractionMethod::GeneralFallback => "fallback",
                },
                auto.boundaries.table() == &truth,
                auto.boundaries.mean_confidence(),
            )
        }
        Err(_) => ("failed", false, 0.0),
    };

    // The §5.2 alignment win under the same faults.
    let mut cfg = probe.wrap(models::quantum_atlas_10k_ii());
    cfg.fault = fault;
    let mut disk = Disk::new(cfg);
    let run = |disk: &mut Disk, alignment| {
        let spec = RandomIoSpec {
            count: io_count,
            seed,
            ..RandomIoSpec::reads(528, alignment, QueueDepth::Two)
        };
        run_random_io(disk, &spec).efficiency(QueueDepth::Two)
    };
    let aligned = run(&mut disk, Alignment::TrackAligned);
    let unaligned = run(&mut disk, Alignment::Unaligned);
    let gain = aligned / unaligned - 1.0;
    let stats = disk.fault_stats();

    let line = traxtent_bench::row_string([
        name.into(),
        if spec.is_empty() {
            "-".into()
        } else {
            spec.into()
        },
        method.into(),
        exact.to_string(),
        format!("{mean_conf:.3}"),
        format!("{:+.1} %", gain * 100.0),
        format!(
            "{} media / {} transient",
            stats.media_errors,
            stats.transient_recovered + stats.transient_surfaced
        ),
    ]);
    LevelResult {
        line,
        exact,
        fallback: method == "fallback",
        mean_conf,
        gain,
    }
}

fn main() {
    let cli = traxtent_bench::Cli::parse();
    if cli.fault.is_some() {
        eprintln!(
            "error: fault_sweep sweeps its own fault specs per level; \
             vary --seed to replay the sweep on a different fault stream"
        );
        std::process::exit(2);
    }
    let probe = cli.probe();
    let reg = traxtent::obs::Registry::new();
    let mut rec = cli.recorder("fault_sweep");
    let fault_seed = cli.seed ^ 0xfa17;
    let io_count = if cli.quick { 200 } else { 800 };

    traxtent_bench::header("fault sweep: extraction robustness and the alignment win");
    traxtent_bench::row([
        "level".into(),
        "spec".into(),
        "extraction".into(),
        "exact".into(),
        "mean_conf".into(),
        "aligned_gain".into(),
        "injected".into(),
    ]);

    let results = cli.executor().run(LEVELS.to_vec(), |_, (name, spec)| {
        run_level(&probe, &reg, name, spec, fault_seed, io_count, cli.seed)
    });

    let mut exact_levels = 0usize;
    let mut fallback_levels = 0usize;
    for ((name, _), r) in LEVELS.iter().zip(&results) {
        exact_levels += usize::from(r.exact);
        fallback_levels += usize::from(r.fallback);
        rec.headline(&format!("{name}_mean_conf"), r.mean_conf);
        rec.headline(&format!("{name}_gain"), r.gain);
        println!("{}", r.line);
    }
    rec.headline("exact_levels", exact_levels as f64);
    rec.headline("fallback_levels", fallback_levels as f64);
    probe.finish();
    rec.finish(&reg);
}
