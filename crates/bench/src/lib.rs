//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! and prints the same rows/series the paper reports:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — representative disk characteristics |
//! | `fig1` | Figure 1 — disk efficiency vs I/O size, aligned vs unaligned |
//! | `fig3` | Figure 3 — rotational latency vs request size |
//! | `fig6` | Figure 6 — head time, onereq/tworeq (+ §5.2 writes via `--writes`) |
//! | `fig7` | Figure 7 — response-time breakdown |
//! | `fig8` | Figure 8 — response time ± σ, infinitely fast bus |
//! | `table2` | Table 2 — FFS application benchmarks |
//! | `fig9` | Figure 9 — video-server startup latency (+ §5.4.2 via `--hard`) |
//! | `fig10` | Figure 10 — LFS overall write cost vs segment size |
//! | `extraction` | §4.1 — track-boundary extraction cost and accuracy |
//!
//! Every binary accepts `--seed <n>` and a `--quick` flag that shrinks
//! sample counts for smoke testing.

/// Command-line convention shared by the binaries: `--quick`, `--seed N`,
/// plus binary-specific flags.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Reduced sample counts for fast smoke runs.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Flags not consumed by the common parser.
    pub rest: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args`, treating `--quick` and `--seed <n>`.
    pub fn parse() -> Self {
        let mut quick = false;
        let mut seed = 0x5eed;
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed requires an integer");
                }
                _ => rest.push(a),
            }
        }
        Cli { quick, seed, rest }
    }

    /// Whether a flag like `--writes` was passed.
    pub fn has(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }
}

/// Prints a header in the common format.
pub fn header(title: &str) {
    println!("# {title}");
}

/// Prints a row of tab-separated columns.
pub fn row<I: IntoIterator<Item = String>>(cols: I) {
    println!("{}", cols.into_iter().collect::<Vec<_>>().join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_defaults() {
        let cli = Cli { quick: false, seed: 0x5eed, rest: vec!["--writes".into()] };
        assert!(cli.has("--writes"));
        assert!(!cli.has("--hard"));
    }
}
