//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! and prints the same rows/series the paper reports:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — representative disk characteristics |
//! | `fig1` | Figure 1 — disk efficiency vs I/O size, aligned vs unaligned |
//! | `fig3` | Figure 3 — rotational latency vs request size |
//! | `fig6` | Figure 6 — head time, onereq/tworeq (+ §5.2 writes via `--writes`) |
//! | `fig7` | Figure 7 — response-time breakdown |
//! | `fig8` | Figure 8 — response time ± σ, infinitely fast bus |
//! | `table2` | Table 2 — FFS application benchmarks |
//! | `fig9` | Figure 9 — video-server startup latency (+ §5.4.2 via `--hard`) |
//! | `fig10` | Figure 10 — LFS overall write cost vs segment size |
//! | `extraction` | §4.1 — track-boundary extraction cost and accuracy |
//! | `ablation` | §5.2 ablations — zero-latency / queueing in isolation |
//! | `server_sweep` | open-loop server: response latency vs offered load per scheduler |
//!
//! Every binary accepts `--seed <n>`, `--threads <n>`, and a `--quick` flag
//! that shrinks sample counts for smoke testing. Simulation cells fan out
//! across a worker pool (see [`exec`]); output is byte-identical at any
//! thread count because results are merged back in submission order.
//!
//! Every binary also accepts `--faults <spec>` / `--fault-seed <n>` to run
//! its figure against a deliberately unreliable drive (see
//! [`sim_disk::fault::FaultConfig::parse_spec`] for the spec grammar).
//! Fault decisions are a pure function of the fault seed and request
//! identity, so faulty runs stay bit-reproducible at any `--threads`. The
//! `fault_sweep` binary sweeps this axis systematically.

#![warn(missing_docs)]

pub mod diff;
pub mod exec;
pub mod manifest;

use sim_disk::disk::DiskConfig;
use sim_disk::fault::FaultConfig;
use sim_disk::metrics::MetricsRegistry;
use sim_disk::trace::{Fanout, JsonlSink, SharedSink, Tracer};
use std::sync::{Arc, Mutex};

/// Command-line convention shared by the binaries: `--quick`, `--seed N`,
/// `--threads N`, `--trace <path>`, `--metrics`, `--faults <spec>`,
/// `--fault-seed N`, plus binary-specific boolean flags.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Reduced sample counts for fast smoke runs.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for independent simulation cells (1 = sequential).
    /// Defaults to 1 when `--trace` or `--metrics` is given, so the event
    /// stream is deterministic; combining either flag with an explicit
    /// `--threads N > 1` is a usage error.
    pub threads: usize,
    /// JSONL trace output path (`--trace <path>`), if requested.
    pub trace: Option<String>,
    /// Whether `--metrics` was given: print a per-phase latency table to
    /// stderr when the run finishes.
    pub metrics: bool,
    /// Directory for the run manifest (`--manifest <dir>`), if requested.
    pub manifest: Option<String>,
    /// Fault injection requested via `--faults <spec>` (see
    /// [`FaultConfig::parse_spec`] for the grammar), with the seed from
    /// `--fault-seed <n>`. `None` when the flag was absent: drives keep
    /// their configs' own (default, fault-free) settings.
    pub fault: Option<FaultConfig>,
    /// Binary-specific boolean flags that were passed (e.g. `--writes`).
    flags: Vec<String>,
    /// Binary-specific value options that were passed (e.g. `--input x`).
    values: Vec<(String, String)>,
}

impl Cli {
    /// Parses `std::env::args` accepting only the common flags. Exits with
    /// a usage message on malformed or unknown arguments.
    pub fn parse() -> Self {
        Self::parse_with(&[])
    }

    /// Parses `std::env::args`, additionally accepting the given
    /// binary-specific boolean flags (e.g. `&["--writes"]`). Exits with a
    /// usage message on malformed or unknown arguments.
    pub fn parse_with(known: &[&str]) -> Self {
        Self::parse_with_values(known, &[])
    }

    /// Like [`Cli::parse_with`], additionally accepting binary-specific
    /// options that take a value (e.g. `&["--input"]`), retrievable with
    /// [`Cli::value`].
    pub fn parse_with_values(known: &[&str], known_values: &[&str]) -> Self {
        match Self::parse_args_values(std::env::args().skip(1), known, known_values) {
            Ok(cli) => cli,
            Err(msg) => {
                let name = std::env::args().next().unwrap_or_else(|| "bench".into());
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: {name} [--quick] [--seed <n>] [--threads <n>] \
                     [--trace <path>] [--metrics] [--manifest <dir>] \
                     [--faults <spec>] [--fault-seed <n>]{}{}",
                    {
                        let extra: String = known.iter().map(|f| format!(" [{f}]")).collect();
                        extra
                    },
                    {
                        let extra: String = known_values
                            .iter()
                            .map(|f| format!(" [{f} <value>]"))
                            .collect();
                        extra
                    }
                );
                std::process::exit(2);
            }
        }
    }

    /// Pure parser behind [`Cli::parse_with`], separated for testing.
    pub fn parse_args<I>(args: I, known: &[&str]) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        Self::parse_args_values(args, known, &[])
    }

    /// Pure parser behind [`Cli::parse_with_values`], separated for
    /// testing.
    pub fn parse_args_values<I>(
        args: I,
        known: &[&str],
        known_values: &[&str],
    ) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut cli = Cli {
            quick: false,
            seed: 0x5eed,
            threads: default_threads(),
            trace: None,
            metrics: false,
            manifest: None,
            fault: None,
            flags: Vec::new(),
            values: Vec::new(),
        };
        let mut explicit_threads = false;
        let mut fault_seed: Option<u64> = None;
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--seed" => {
                    cli.seed = parse_value(args.next(), "--seed")?;
                }
                "--threads" => {
                    cli.threads = parse_value(args.next(), "--threads")?;
                    if cli.threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    explicit_threads = true;
                }
                "--trace" => {
                    cli.trace = Some(args.next().ok_or("--trace requires a path")?);
                }
                "--metrics" => cli.metrics = true,
                "--manifest" => {
                    cli.manifest = Some(args.next().ok_or("--manifest requires a directory")?);
                }
                "--faults" => {
                    let spec = args
                        .next()
                        .ok_or("--faults requires a spec, e.g. `media=500,rot=gauss:0.05`")?;
                    cli.fault =
                        Some(FaultConfig::parse_spec(&spec).map_err(|e| format!("--faults: {e}"))?);
                }
                "--fault-seed" => {
                    fault_seed = Some(parse_value(args.next(), "--fault-seed")?);
                }
                flag if known.contains(&flag) => cli.flags.push(a),
                opt if known_values.contains(&opt) => {
                    let value = args.next().ok_or_else(|| format!("{a} requires a value"))?;
                    cli.values.push((a, value));
                }
                _ => return Err(format!("unrecognized argument `{a}`")),
            }
        }
        if cli.trace.is_some() || cli.metrics {
            // One worker: requests then hit the shared sink in a stable
            // order, and the hot path never contends on the sink lock.
            if explicit_threads && cli.threads > 1 {
                return Err(
                    "--trace/--metrics need a deterministic event stream and run \
                     single-threaded; drop --threads or pass --threads 1"
                        .into(),
                );
            }
            cli.threads = 1;
        }
        match (&mut cli.fault, fault_seed) {
            (Some(f), Some(seed)) => f.seed = seed,
            (None, Some(_)) => {
                return Err("--fault-seed only makes sense with --faults <spec>".into());
            }
            _ => {}
        }
        Ok(cli)
    }

    /// Whether a flag like `--writes` was passed.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|a| a == flag)
    }

    /// The value of a binary-specific option like `--input`, if passed
    /// (last occurrence wins).
    pub fn value(&self, opt: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(o, _)| o == opt)
            .map(|(_, v)| v.as_str())
    }

    /// A worker pool sized by `--threads`.
    pub fn executor(&self) -> exec::Executor {
        exec::Executor::new(self.threads)
    }

    /// A manifest recorder for `figure`, writing into the `--manifest`
    /// directory on [`manifest::Recorder::finish`] (or nowhere without the
    /// flag). Recording headline values is always free.
    pub fn recorder(&self, figure: &str) -> manifest::Recorder {
        manifest::Recorder::new(
            figure,
            self.quick,
            self.seed,
            self.threads,
            self.manifest.as_deref(),
        )
    }

    /// Builds the observability sinks requested by `--trace`/`--metrics`.
    /// With neither flag, the probe is inert and attaching it leaves
    /// configurations untouched.
    ///
    /// # Panics
    ///
    /// Panics if the `--trace` file cannot be created.
    pub fn probe(&self) -> Probe {
        let metrics = (self.metrics).then(|| Arc::new(Mutex::new(MetricsRegistry::new())));
        let mut sinks: Vec<SharedSink> = Vec::new();
        if let Some(path) = &self.trace {
            let sink = JsonlSink::create(path)
                .unwrap_or_else(|e| panic!("cannot create trace file `{path}`: {e}"));
            sinks.push(Arc::new(Mutex::new(sink)));
        }
        if let Some(reg) = &metrics {
            sinks.push(reg.clone() as SharedSink);
        }
        let tracer = match sinks.len() {
            0 => None,
            1 => Some(Tracer::new(sinks.pop().expect("one sink"))),
            _ => Some(Tracer::from_sink(Fanout::new(sinks))),
        };
        Probe {
            tracer,
            metrics,
            fault: self.fault,
        }
    }
}

/// The per-run observability harness behind `--trace` and `--metrics`:
/// holds the shared trace sink (JSONL file, metrics registry, or both) and
/// attaches it to drive configurations as they are built.
///
/// Figure binaries create one probe per run, [`Probe::attach`] it to every
/// [`DiskConfig`] they construct, and call [`Probe::finish`] before
/// exiting; the metrics table goes to **stderr** so a figure's stdout
/// stays byte-identical with the probe disabled.
pub struct Probe {
    tracer: Option<Tracer>,
    metrics: Option<Arc<Mutex<MetricsRegistry>>>,
    fault: Option<FaultConfig>,
}

impl Probe {
    /// An inert probe (no tracing, no metrics, no fault injection).
    pub fn disabled() -> Self {
        Probe {
            tracer: None,
            metrics: None,
            fault: None,
        }
    }

    /// Whether any sink is attached.
    pub fn enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Points `config` at the probe's sink (no-op for an inert probe), so
    /// every drive built from it — directly or deep inside a file-system
    /// layer — reports there. When the run asked for fault injection
    /// (`--faults`), the fault config is stamped on here too, so every
    /// drive the binary builds misbehaves identically.
    pub fn attach(&self, config: &mut DiskConfig) {
        if let Some(t) = &self.tracer {
            config.tracer = Some(t.clone());
        }
        if let Some(f) = self.fault {
            config.fault = f;
        }
    }

    /// [`Probe::attach`] as a by-value adapter, for builder-style call
    /// sites.
    pub fn wrap(&self, mut config: DiskConfig) -> DiskConfig {
        self.attach(&mut config);
        config
    }

    /// Flushes the trace file and, when `--metrics` was given, prints the
    /// per-phase latency table to stderr.
    pub fn finish(&self) {
        if let Some(t) = &self.tracer {
            t.flush();
        }
        if let Some(reg) = &self.metrics {
            eprint!("{}", reg.lock().expect("metrics registry").report());
        }
    }
}

fn parse_value<T: std::str::FromStr>(arg: Option<String>, flag: &str) -> Result<T, String> {
    let raw = arg.ok_or_else(|| format!("{flag} requires an integer"))?;
    raw.parse()
        .map_err(|_| format!("{flag} requires an integer, got `{raw}`"))
}

/// Default worker count: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Prints a header in the common format.
pub fn header(title: &str) {
    println!("# {title}");
}

/// Formats a row of tab-separated columns without printing it.
pub fn row_string<I: IntoIterator<Item = String>>(cols: I) -> String {
    cols.into_iter().collect::<Vec<_>>().join("\t")
}

/// Prints a row of tab-separated columns.
pub fn row<I: IntoIterator<Item = String>>(cols: I) {
    println!("{}", row_string(cols));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> std::vec::IntoIter<String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parse_defaults() {
        let cli = Cli::parse_args(args(&[]), &[]).unwrap();
        assert!(!cli.quick);
        assert_eq!(cli.seed, 0x5eed);
        assert_eq!(cli.threads, default_threads());
        assert!(cli.flags.is_empty());
    }

    #[test]
    fn parse_common_and_known_flags() {
        let cli = Cli::parse_args(
            args(&["--quick", "--seed", "42", "--threads", "3", "--writes"]),
            &["--writes"],
        )
        .unwrap();
        assert!(cli.quick);
        assert_eq!(cli.seed, 42);
        assert_eq!(cli.threads, 3);
        assert!(cli.has("--writes"));
        assert!(!cli.has("--hard"));
    }

    #[test]
    fn malformed_seed_is_an_error_not_a_panic() {
        let err = Cli::parse_args(args(&["--seed", "banana"]), &[]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        let err = Cli::parse_args(args(&["--seed"]), &[]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = Cli::parse_args(args(&["--writes"]), &[]).unwrap_err();
        assert!(err.contains("--writes"), "{err}");
        let err = Cli::parse_args(args(&["--frobnicate"]), &["--writes"]).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn value_options_are_parsed_and_validated() {
        let cli = Cli::parse_args_values(
            args(&["--input", "traces/sample.trc", "--quick"]),
            &[],
            &["--input", "--count"],
        )
        .unwrap();
        assert_eq!(cli.value("--input"), Some("traces/sample.trc"));
        assert_eq!(cli.value("--count"), None);
        assert!(cli.quick);

        // A missing value is an error, not a silent swallow.
        let err = Cli::parse_args_values(args(&["--input"]), &[], &["--input"]).unwrap_err();
        assert!(err.contains("--input"), "{err}");
        // Unknown value options are still rejected.
        assert!(Cli::parse_args_values(args(&["--input", "x"]), &[], &[]).is_err());
        // Last occurrence wins.
        let cli =
            Cli::parse_args_values(args(&["--count", "5", "--count", "9"]), &[], &["--count"])
                .unwrap();
        assert_eq!(cli.value("--count"), Some("9"));
    }

    #[test]
    fn zero_threads_is_rejected() {
        assert!(Cli::parse_args(args(&["--threads", "0"]), &[]).is_err());
    }

    #[test]
    fn trace_and_metrics_default_to_one_thread() {
        let cli = Cli::parse_args(args(&["--metrics"]), &[]).unwrap();
        assert!(cli.metrics);
        assert_eq!(cli.threads, 1);
        let cli = Cli::parse_args(args(&["--trace", "/tmp/t.jsonl"]), &[]).unwrap();
        assert_eq!(cli.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(cli.threads, 1);
        assert!(Cli::parse_args(args(&["--trace"]), &[]).is_err());
    }

    #[test]
    fn explicit_parallel_threads_with_trace_or_metrics_is_an_error() {
        // Silently forcing one thread would make `--threads 8` a lie; the
        // combination is rejected with an actionable message instead.
        let err = Cli::parse_args(args(&["--threads", "8", "--metrics"]), &[]).unwrap_err();
        assert!(err.contains("--threads 1"), "{err}");
        let err =
            Cli::parse_args(args(&["--trace", "/tmp/t.jsonl", "--threads", "2"]), &[]).unwrap_err();
        assert!(err.contains("single-threaded"), "{err}");
        // An explicit `--threads 1` is consistent and accepted.
        let cli = Cli::parse_args(args(&["--threads", "1", "--metrics"]), &[]).unwrap();
        assert_eq!(cli.threads, 1);
    }

    #[test]
    fn manifest_flag_is_parsed() {
        let cli = Cli::parse_args(args(&["--manifest", "results/manifest"]), &[]).unwrap();
        assert_eq!(cli.manifest.as_deref(), Some("results/manifest"));
        assert!(Cli::parse_args(args(&["--manifest"]), &[]).is_err());
        // Manifests do not constrain the thread count.
        let cli = Cli::parse_args(args(&["--manifest", "m", "--threads", "4"]), &[]).unwrap();
        assert_eq!(cli.threads, 4);
    }

    #[test]
    fn fault_flags_parse_into_a_config() {
        let cli = Cli::parse_args(args(&[]), &[]).unwrap();
        assert!(cli.fault.is_none());

        let cli = Cli::parse_args(
            args(&[
                "--faults",
                "media=500,rot=gauss:0.05,nodiag",
                "--fault-seed",
                "99",
            ]),
            &[],
        )
        .unwrap();
        let f = cli.fault.expect("fault config parsed");
        assert_eq!(f.media_per_million, 500);
        assert_eq!(f.rot_jitter, sim_disk::fault::Jitter::Gaussian(0.05));
        assert!(f.diagnostics_unsupported);
        assert_eq!(f.seed, 99);

        // Flag order must not matter for the seed.
        let cli = Cli::parse_args(
            args(&["--fault-seed", "7", "--faults", "transient=100"]),
            &[],
        )
        .unwrap();
        assert_eq!(cli.fault.unwrap().seed, 7);
    }

    #[test]
    fn malformed_fault_flags_are_errors_not_panics() {
        let err = Cli::parse_args(args(&["--faults"]), &[]).unwrap_err();
        assert!(err.contains("--faults"), "{err}");
        let err = Cli::parse_args(args(&["--faults", "media=lots"]), &[]).unwrap_err();
        assert!(err.contains("per-million"), "{err}");
        let err = Cli::parse_args(args(&["--fault-seed", "3"]), &[]).unwrap_err();
        assert!(err.contains("--faults"), "{err}");
        let err =
            Cli::parse_args(args(&["--faults", "media=1", "--fault-seed", "x"]), &[]).unwrap_err();
        assert!(err.contains("--fault-seed"), "{err}");
    }

    #[test]
    fn probe_stamps_the_fault_config_on_attach() {
        let cli = Cli::parse_args(args(&["--faults", "media=250,nodiag"]), &[]).unwrap();
        let probe = cli.probe();
        let cfg = probe.wrap(sim_disk::models::small_test_disk());
        assert_eq!(cfg.fault.media_per_million, 250);
        assert!(cfg.fault.diagnostics_unsupported);
        // Without the flag, attach leaves the config's own faults alone.
        let cli = Cli::parse_args(args(&[]), &[]).unwrap();
        let mut cfg = sim_disk::models::small_test_disk();
        cfg.fault.transient_per_million = 42;
        let cfg = cli.probe().wrap(cfg);
        assert_eq!(cfg.fault.transient_per_million, 42);
    }

    #[test]
    fn disabled_probe_leaves_configs_untouched() {
        let probe = Probe::disabled();
        assert!(!probe.enabled());
        let cfg = probe.wrap(sim_disk::models::small_test_disk());
        assert!(cfg.tracer.is_none());
        probe.finish(); // must be a no-op, not a panic
    }

    #[test]
    fn metrics_probe_collects_from_attached_drives() {
        let cli = Cli::parse_args(args(&["--metrics"]), &[]).unwrap();
        let probe = cli.probe();
        assert!(probe.enabled());
        let cfg = probe.wrap(sim_disk::models::small_test_disk());
        let mut disk = sim_disk::Disk::new(cfg);
        let c = disk.service(
            sim_disk::disk::Request::read(0, 64),
            sim_disk::SimTime::ZERO,
        );
        let reg = probe.metrics.as_ref().unwrap().lock().unwrap();
        assert_eq!(reg.requests(), 1);
        let resp = reg.phase("response").unwrap();
        assert_eq!(resp.max_ns(), c.response_time().as_ns());
    }
}
