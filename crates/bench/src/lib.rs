//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! and prints the same rows/series the paper reports:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — representative disk characteristics |
//! | `fig1` | Figure 1 — disk efficiency vs I/O size, aligned vs unaligned |
//! | `fig3` | Figure 3 — rotational latency vs request size |
//! | `fig6` | Figure 6 — head time, onereq/tworeq (+ §5.2 writes via `--writes`) |
//! | `fig7` | Figure 7 — response-time breakdown |
//! | `fig8` | Figure 8 — response time ± σ, infinitely fast bus |
//! | `table2` | Table 2 — FFS application benchmarks |
//! | `fig9` | Figure 9 — video-server startup latency (+ §5.4.2 via `--hard`) |
//! | `fig10` | Figure 10 — LFS overall write cost vs segment size |
//! | `extraction` | §4.1 — track-boundary extraction cost and accuracy |
//! | `ablation` | §5.2 ablations — zero-latency / queueing in isolation |
//!
//! Every binary accepts `--seed <n>`, `--threads <n>`, and a `--quick` flag
//! that shrinks sample counts for smoke testing. Simulation cells fan out
//! across a worker pool (see [`exec`]); output is byte-identical at any
//! thread count because results are merged back in submission order.

pub mod exec;

/// Command-line convention shared by the binaries: `--quick`, `--seed N`,
/// `--threads N`, plus binary-specific boolean flags.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Reduced sample counts for fast smoke runs.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for independent simulation cells (1 = sequential).
    pub threads: usize,
    /// Binary-specific boolean flags that were passed (e.g. `--writes`).
    flags: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args` accepting only the common flags. Exits with
    /// a usage message on malformed or unknown arguments.
    pub fn parse() -> Self {
        Self::parse_with(&[])
    }

    /// Parses `std::env::args`, additionally accepting the given
    /// binary-specific boolean flags (e.g. `&["--writes"]`). Exits with a
    /// usage message on malformed or unknown arguments.
    pub fn parse_with(known: &[&str]) -> Self {
        match Self::parse_args(std::env::args().skip(1), known) {
            Ok(cli) => cli,
            Err(msg) => {
                let name = std::env::args().next().unwrap_or_else(|| "bench".into());
                eprintln!("error: {msg}");
                eprintln!("usage: {name} [--quick] [--seed <n>] [--threads <n>]{}", {
                    let extra: String = known.iter().map(|f| format!(" [{f}]")).collect();
                    extra
                });
                std::process::exit(2);
            }
        }
    }

    /// Pure parser behind [`Cli::parse_with`], separated for testing.
    pub fn parse_args<I>(args: I, known: &[&str]) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut cli = Cli {
            quick: false,
            seed: 0x5eed,
            threads: default_threads(),
            flags: Vec::new(),
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--seed" => {
                    cli.seed = parse_value(args.next(), "--seed")?;
                }
                "--threads" => {
                    cli.threads = parse_value(args.next(), "--threads")?;
                    if cli.threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                flag if known.contains(&flag) => cli.flags.push(a),
                _ => return Err(format!("unrecognized argument `{a}`")),
            }
        }
        Ok(cli)
    }

    /// Whether a flag like `--writes` was passed.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|a| a == flag)
    }

    /// A worker pool sized by `--threads`.
    pub fn executor(&self) -> exec::Executor {
        exec::Executor::new(self.threads)
    }
}

fn parse_value<T: std::str::FromStr>(arg: Option<String>, flag: &str) -> Result<T, String> {
    let raw = arg.ok_or_else(|| format!("{flag} requires an integer"))?;
    raw.parse()
        .map_err(|_| format!("{flag} requires an integer, got `{raw}`"))
}

/// Default worker count: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Prints a header in the common format.
pub fn header(title: &str) {
    println!("# {title}");
}

/// Formats a row of tab-separated columns without printing it.
pub fn row_string<I: IntoIterator<Item = String>>(cols: I) -> String {
    cols.into_iter().collect::<Vec<_>>().join("\t")
}

/// Prints a row of tab-separated columns.
pub fn row<I: IntoIterator<Item = String>>(cols: I) {
    println!("{}", row_string(cols));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> std::vec::IntoIter<String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parse_defaults() {
        let cli = Cli::parse_args(args(&[]), &[]).unwrap();
        assert!(!cli.quick);
        assert_eq!(cli.seed, 0x5eed);
        assert_eq!(cli.threads, default_threads());
        assert!(cli.flags.is_empty());
    }

    #[test]
    fn parse_common_and_known_flags() {
        let cli = Cli::parse_args(
            args(&["--quick", "--seed", "42", "--threads", "3", "--writes"]),
            &["--writes"],
        )
        .unwrap();
        assert!(cli.quick);
        assert_eq!(cli.seed, 42);
        assert_eq!(cli.threads, 3);
        assert!(cli.has("--writes"));
        assert!(!cli.has("--hard"));
    }

    #[test]
    fn malformed_seed_is_an_error_not_a_panic() {
        let err = Cli::parse_args(args(&["--seed", "banana"]), &[]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        let err = Cli::parse_args(args(&["--seed"]), &[]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = Cli::parse_args(args(&["--writes"]), &[]).unwrap_err();
        assert!(err.contains("--writes"), "{err}");
        let err = Cli::parse_args(args(&["--frobnicate"]), &["--writes"]).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn zero_threads_is_rejected() {
        assert!(Cli::parse_args(args(&["--threads", "0"]), &[]).is_err());
    }
}
