//! Manifest comparison: the engine behind the `bench_diff` binary.
//!
//! Compares two directories of run manifests (see [`crate::manifest`]) —
//! typically the committed `results/baseline/` against a fresh
//! `results/manifest/` — and classifies every headline-value change against
//! configurable tolerances. Simulated results are deterministic given the
//! same seed and sample counts, so their tolerance can be tight; wall-clock
//! time varies with the machine and is only checked when a wall tolerance
//! is explicitly given.

use crate::manifest::Manifest;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// What counts as a regression.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Maximum relative change of a headline value, e.g. `0.02` for ±2 %.
    pub headline_rel: f64,
    /// Maximum relative wall-time *increase* before the slowdown counts as
    /// a regression; `None` reports wall time without judging it.
    pub wall_rel: Option<f64>,
}

impl Default for Tolerances {
    /// ±2 % on headline values, wall time informational only.
    fn default() -> Self {
        Tolerances {
            headline_rel: 0.02,
            wall_rel: None,
        }
    }
}

/// The outcome of comparing two manifest sets.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Human-readable per-figure lines, in figure order.
    pub lines: Vec<String>,
    /// One entry per regression found; empty means the diff passes.
    pub regressions: Vec<String>,
}

impl Report {
    /// True when nothing exceeded its tolerance.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// The whole report as printable text, regressions summarized last.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        if self.passed() {
            let _ = writeln!(out, "PASS: all figures within tolerance");
        } else {
            let _ = writeln!(out, "FAIL: {} regression(s)", self.regressions.len());
            for r in &self.regressions {
                let _ = writeln!(out, "  regression: {r}");
            }
        }
        out
    }
}

/// Relative change from `base` to `cur`, guarding against a zero baseline.
fn rel_delta(base: f64, cur: f64) -> f64 {
    let denom = base.abs().max(1e-12);
    (cur - base) / denom
}

/// Compares two manifest maps (figure → manifest).
pub fn diff_manifests(
    baseline: &BTreeMap<String, Manifest>,
    current: &BTreeMap<String, Manifest>,
    tol: &Tolerances,
) -> Report {
    let mut report = Report::default();
    for (figure, base) in baseline {
        let Some(cur) = current.get(figure) else {
            report
                .lines
                .push(format!("{figure}: MISSING from current run"));
            report
                .regressions
                .push(format!("{figure}: manifest missing from current run"));
            continue;
        };
        diff_one(figure, base, cur, tol, &mut report);
    }
    for figure in current.keys() {
        if !baseline.contains_key(figure) {
            report
                .lines
                .push(format!("{figure}: new figure (no baseline) — ignored"));
        }
    }
    report
}

/// Compares one figure's manifests, appending lines and regressions.
fn diff_one(figure: &str, base: &Manifest, cur: &Manifest, tol: &Tolerances, report: &mut Report) {
    if base.quick != cur.quick || base.seed != cur.seed {
        report.lines.push(format!(
            "{figure}: config differs (quick {} -> {}, seed {} -> {}) — values not comparable",
            base.quick, cur.quick, base.seed, cur.seed
        ));
        report.regressions.push(format!(
            "{figure}: compared runs use different configs (quick/seed)"
        ));
        return;
    }
    for (key, bval) in &base.headline {
        match cur.headline.get(key) {
            None => {
                report
                    .lines
                    .push(format!("{figure}: {key} missing from current manifest"));
                report
                    .regressions
                    .push(format!("{figure}: headline `{key}` disappeared"));
            }
            Some(cval) => {
                let rel = rel_delta(*bval, *cval);
                let over = rel.abs() > tol.headline_rel;
                report.lines.push(format!(
                    "{figure}: {key} {bval:.6} -> {cval:.6} ({:+.2}%){}",
                    rel * 100.0,
                    if over { "  EXCEEDS TOLERANCE" } else { "" }
                ));
                if over {
                    report.regressions.push(format!(
                        "{figure}: `{key}` changed {:+.2}% (tolerance ±{:.2}%)",
                        rel * 100.0,
                        tol.headline_rel * 100.0
                    ));
                }
            }
        }
    }
    for key in cur.headline.keys() {
        if !base.headline.contains_key(key) {
            report.lines.push(format!(
                "{figure}: new headline `{key}` (no baseline) — ignored"
            ));
        }
    }
    let wall_rel = rel_delta(base.wall_secs, cur.wall_secs);
    let wall_over = tol.wall_rel.is_some_and(|w| wall_rel > w);
    report.lines.push(format!(
        "{figure}: wall {:.2}s -> {:.2}s ({:+.1}%){}",
        base.wall_secs,
        cur.wall_secs,
        wall_rel * 100.0,
        if wall_over { "  EXCEEDS TOLERANCE" } else { "" }
    ));
    if wall_over {
        report.regressions.push(format!(
            "{figure}: wall time rose {:+.1}% (tolerance +{:.1}%)",
            wall_rel * 100.0,
            tol.wall_rel.unwrap_or(0.0) * 100.0
        ));
    }
    let changed_metrics = base
        .metrics
        .iter()
        .filter(|(k, v)| cur.metrics.get(*k) != Some(v))
        .count()
        + cur
            .metrics
            .keys()
            .filter(|k| !base.metrics.contains_key(*k))
            .count();
    if changed_metrics > 0 {
        report.lines.push(format!(
            "{figure}: {changed_metrics} metric cell(s) differ (informational)"
        ));
    }
    for (name, brows) in &base.timeline {
        match cur.timeline.get(name) {
            None => report.lines.push(format!(
                "{figure}: timeline `{name}` missing from current manifest (informational)"
            )),
            Some(crows) => {
                let differing = brows.iter().zip(crows).filter(|(b, c)| b != c).count()
                    + brows.len().abs_diff(crows.len());
                if differing > 0 {
                    report.lines.push(format!(
                        "{figure}: timeline `{name}` {differing} row(s) differ (informational)"
                    ));
                }
            }
        }
    }
}

/// Loads both directories and compares them.
pub fn diff_dirs(baseline: &Path, current: &Path, tol: &Tolerances) -> Result<Report, String> {
    diff_dirs_only(baseline, current, tol, &[])
}

/// Like [`diff_dirs`], restricted to the named figures when `only` is
/// non-empty. Asking for a figure the baseline does not have is an error —
/// a gate that silently compares nothing would always pass.
pub fn diff_dirs_only(
    baseline: &Path,
    current: &Path,
    tol: &Tolerances,
    only: &[String],
) -> Result<Report, String> {
    let mut base = Manifest::load_dir(baseline)?;
    if base.is_empty() {
        return Err(format!("no manifests found in `{}`", baseline.display()));
    }
    let mut cur = Manifest::load_dir(current)?;
    if !only.is_empty() {
        for figure in only {
            if !base.contains_key(figure) {
                return Err(format!(
                    "--only {figure}: no such figure in `{}`",
                    baseline.display()
                ));
            }
        }
        base.retain(|k, _| only.contains(k));
        cur.retain(|k, _| only.contains(k));
    }
    Ok(diff_manifests(&base, &cur, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(figure: &str, headline: &[(&str, f64)]) -> Manifest {
        let mut m = Manifest::new(figure, true, 7, 1);
        m.wall_secs = 2.0;
        for (k, v) in headline {
            m.headline.insert(k.to_string(), *v);
        }
        m
    }

    fn map(ms: Vec<Manifest>) -> BTreeMap<String, Manifest> {
        ms.into_iter().map(|m| (m.figure.clone(), m)).collect()
    }

    #[test]
    fn identical_runs_pass() {
        let base = map(vec![manifest("fig1", &[("eff", 0.73)])]);
        let report = diff_manifests(&base, &base, &Tolerances::default());
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        let base = map(vec![manifest("fig1", &[("eff", 1.0)])]);
        let ok = map(vec![manifest("fig1", &[("eff", 1.015)])]);
        let bad = map(vec![manifest("fig1", &[("eff", 1.05)])]);
        let tol = Tolerances::default();
        assert!(diff_manifests(&base, &ok, &tol).passed());
        let report = diff_manifests(&base, &bad, &tol);
        assert!(!report.passed());
        assert!(
            report.render().contains("EXCEEDS TOLERANCE"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn missing_figure_or_key_is_a_regression() {
        let base = map(vec![
            manifest("fig1", &[("eff", 1.0)]),
            manifest("fig3", &[("ms", 5.0)]),
        ]);
        let cur = map(vec![manifest("fig1", &[("other", 1.0)])]);
        let report = diff_manifests(&base, &cur, &Tolerances::default());
        assert_eq!(report.regressions.len(), 2, "{}", report.render());
    }

    #[test]
    fn extra_figures_and_keys_are_ignored() {
        let base = map(vec![manifest("fig1", &[("eff", 1.0)])]);
        let cur = map(vec![
            manifest("fig1", &[("eff", 1.0), ("bonus", 9.0)]),
            manifest("fig99", &[("x", 1.0)]),
        ]);
        assert!(diff_manifests(&base, &cur, &Tolerances::default()).passed());
    }

    #[test]
    fn wall_time_only_judged_when_tolerance_given() {
        let base = map(vec![manifest("fig1", &[("eff", 1.0)])]);
        let mut slow = manifest("fig1", &[("eff", 1.0)]);
        slow.wall_secs = 10.0;
        let cur = map(vec![slow]);
        assert!(diff_manifests(&base, &cur, &Tolerances::default()).passed());
        let tol = Tolerances {
            headline_rel: 0.02,
            wall_rel: Some(1.0),
        };
        let report = diff_manifests(&base, &cur, &tol);
        assert!(!report.passed());
        assert!(
            report.regressions[0].contains("wall time"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn config_mismatch_is_flagged() {
        let base = map(vec![manifest("fig1", &[("eff", 1.0)])]);
        let mut other = manifest("fig1", &[("eff", 1.0)]);
        other.seed = 99;
        let report = diff_manifests(&base, &map(vec![other]), &Tolerances::default());
        assert!(!report.passed());
        assert!(
            report.regressions[0].contains("config"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let base = map(vec![manifest("fig1", &[("misses", 0.0)])]);
        let cur = map(vec![manifest("fig1", &[("misses", 0.0)])]);
        assert!(diff_manifests(&base, &cur, &Tolerances::default()).passed());
        let bad = map(vec![manifest("fig1", &[("misses", 1.0)])]);
        assert!(!diff_manifests(&base, &bad, &Tolerances::default()).passed());
    }

    #[test]
    fn timeline_rows_report_informationally() {
        let mut with_rows = manifest("server_timeline", &[("peak_p99_ms", 20.0)]);
        let mut row = BTreeMap::new();
        row.insert("start_ms".to_string(), 0.0);
        row.insert("completed".to_string(), 40.0);
        with_rows.timeline.insert("clook_s6".into(), vec![row]);
        let base = map(vec![with_rows.clone()]);
        // Identical timelines: silent.
        let report = diff_manifests(&base, &base, &Tolerances::default());
        assert!(report.passed());
        assert!(
            !report.render().contains("timeline `"),
            "{}",
            report.render()
        );
        // Changed rows: informational line, not a regression.
        let mut changed = with_rows.clone();
        changed.timeline.get_mut("clook_s6").unwrap()[0].insert("completed".into(), 41.0);
        let report = diff_manifests(&base, &map(vec![changed]), &Tolerances::default());
        assert!(report.passed(), "{}", report.render());
        assert!(
            report
                .render()
                .contains("timeline `clook_s6` 1 row(s) differ"),
            "{}",
            report.render()
        );
        // A dropped series is informational too; gating lives in headline.
        let mut dropped = with_rows;
        dropped.timeline.clear();
        let report = diff_manifests(&base, &map(vec![dropped]), &Tolerances::default());
        assert!(report.passed());
        assert!(report.render().contains("missing"), "{}", report.render());
    }

    #[test]
    fn only_filter_restricts_and_validates() {
        let dir = std::env::temp_dir().join(format!("traxtent-diff-only-{}", std::process::id()));
        let base_dir = dir.join("base");
        let cur_dir = dir.join("cur");
        let _ = std::fs::remove_dir_all(&dir);
        manifest("fig1", &[("eff", 0.5)])
            .write_to(&base_dir)
            .unwrap();
        manifest("replay", &[("ms", 3.0)])
            .write_to(&base_dir)
            .unwrap();
        // Current run regresses fig1 but not replay.
        manifest("fig1", &[("eff", 0.9)])
            .write_to(&cur_dir)
            .unwrap();
        manifest("replay", &[("ms", 3.0)])
            .write_to(&cur_dir)
            .unwrap();

        let tol = Tolerances::default();
        assert!(!diff_dirs(&base_dir, &cur_dir, &tol).unwrap().passed());
        let only = vec!["replay".to_string()];
        let report = diff_dirs_only(&base_dir, &cur_dir, &tol, &only).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert!(!report.render().contains("fig1"));

        let missing = vec!["nope".to_string()];
        let err = diff_dirs_only(&base_dir, &cur_dir, &tol, &missing).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
