//! Deterministic parallel experiment executor.
//!
//! The figure/table binaries are sweeps over independent simulation cells
//! (one disk config + workload spec per cell). [`Executor::run`] fans those
//! cells across a scoped worker pool and merges the results **in submission
//! order**, so a binary's output is byte-identical at any thread count:
//!
//! * every job receives its submission index and must not print;
//! * workers pull `(index, item)` pairs from a shared queue, so imbalanced
//!   cells don't serialize behind one thread;
//! * the merged `Vec` is sorted by index before it is returned, and the
//!   caller prints from it sequentially.
//!
//! Determinism of the *values* (not just the ordering) holds because each
//! cell builds its own `Disk` and every workload seeds its own RNG from the
//! spec — a freshly built disk is in exactly the power-on state that
//! `Disk::reset` restores between sequential cells.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-width worker pool over scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// A pool of `threads` workers; `1` runs jobs inline (legacy
    /// sequential behaviour, bit-for-bit).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Runs `job` over every item and returns the results in item order.
    ///
    /// `job` is called exactly once per item with `(submission_index,
    /// item)`. Jobs must be independent and must not print — ordering of
    /// side effects across workers is not defined, only the returned `Vec`
    /// is.
    pub fn run<I, T, F>(&self, items: Vec<I>, job: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| job(i, item))
                .collect();
        }

        let count = items.len();
        let queue: Mutex<VecDeque<(usize, I)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let mut indexed: Vec<(usize, T)> = Vec::with_capacity(count);

        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    let job = &job;
                    s.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let next = queue.lock().unwrap().pop_front();
                            match next {
                                Some((idx, item)) => done.push((idx, job(idx, item))),
                                None => return done,
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                indexed.extend(h.join().expect("executor worker panicked"));
            }
        });

        indexed.sort_by_key(|(idx, _)| *idx);
        debug_assert_eq!(indexed.len(), count);
        indexed.into_iter().map(|(_, result)| result).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_item_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 128] {
            let got = Executor::new(threads).run(items.clone(), |_, x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn runs_every_job_exactly_once_with_its_index() {
        let calls = AtomicUsize::new(0);
        let got = Executor::new(4).run(vec!["a", "b", "c", "d", "e"], |idx, item| {
            calls.fetch_add(1, Ordering::Relaxed);
            format!("{idx}:{item}")
        });
        assert_eq!(calls.load(Ordering::Relaxed), 5);
        assert_eq!(got, ["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_and_single_item_runs() {
        let none: Vec<u8> = Executor::new(8).run(Vec::new(), |_, x: u8| x);
        assert!(none.is_empty());
        assert_eq!(Executor::new(8).run(vec![7u8], |_, x| x + 1), [8]);
    }
}
