//! Latency-breakdown metrics: log-linear histograms aggregated per service
//! phase.
//!
//! [`MetricsRegistry`] is a [`TraceSink`] that folds the closing
//! [`TraceEvent::Complete`] summary of every request into one
//! [`Histogram`] per phase (queue, overhead, seek, head switch, rotational
//! latency, media, bus, write settle) plus the end-to-end response time,
//! and counts reads, writes, and cache hits. Attach it directly as a
//! drive's sink, or fan it out next to a JSONL file sink with
//! [`crate::trace::Fanout`].
//!
//! ```
//! use std::sync::{Arc, Mutex};
//! use sim_disk::metrics::MetricsRegistry;
//! use sim_disk::trace::Tracer;
//! use sim_disk::disk::{Disk, Request};
//! use sim_disk::{models, SimTime};
//!
//! let reg = Arc::new(Mutex::new(MetricsRegistry::new()));
//! let mut cfg = models::small_test_disk();
//! cfg.tracer = Some(Tracer::new(reg.clone()));
//! let mut disk = Disk::new(cfg);
//! disk.service(Request::read(0, 64), SimTime::ZERO);
//! let reg = reg.lock().unwrap();
//! assert_eq!(reg.requests(), 1);
//! assert!(reg.phase("response").unwrap().mean_ns() > 0.0);
//! ```

use crate::request::Op;
use crate::trace::{TraceEvent, TraceSink};
use std::fmt::Write as _;

/// Sub-buckets per power of two — 16 gives ≤ 6.25 % relative quantization
/// error on recorded values.
const SUB_BUCKETS: u64 = 16;
const SUB_SHIFT: u32 = 4;
/// Bucket count covering the full `u64` nanosecond range: values below
/// `SUB_BUCKETS` map one-to-one, larger values log-linearly.
const BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_SHIFT as usize + 1);

/// A log-linear latency histogram over nanosecond durations.
///
/// Values are bucketed with 16 linear sub-buckets per power of two (an
/// HDR-histogram-style layout), so percentile estimates carry at most
/// ~6 % relative error while the whole structure stays a flat `u64` array
/// with O(1) insertion — cheap enough to sit on the trace hot path.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean_ns", &self.mean_ns())
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

/// The bucket index for a nanosecond value.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    // With 2^e ≤ v < 2^(e+1), the range is split into 16 sub-buckets of
    // width 2^(e-4); rows are contiguous, so row e starts at (e-3)·16.
    let e = 63 - v.leading_zeros();
    let row = e - (SUB_SHIFT - 1);
    let sub = (v >> (e - SUB_SHIFT)) - SUB_BUCKETS;
    (row as usize) * SUB_BUCKETS as usize + sub as usize
}

/// The upper edge of a bucket: the largest value mapping to this index.
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let row = (idx / SUB_BUCKETS) as u32;
    let sub = idx % SUB_BUCKETS;
    let shift = row - 1; // = e - SUB_SHIFT
    ((SUB_BUCKETS + sub) << shift) + ((1u64 << shift) - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one duration, in nanoseconds.
    pub fn observe(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values, in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Exact mean of recorded values, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Exact minimum recorded value, in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Exact maximum recorded value, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (0.0 ≤ `q` ≤ 1.0) of recorded values, in
    /// nanoseconds, to bucket resolution (≤ ~6 % relative error). Returns 0
    /// when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target value, 1-based; q = 1.0 must land on the last
        // recorded value.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket's upper edge to the true max so p100
                // never overshoots.
                return bucket_value(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// The per-phase histogram names reported by [`MetricsRegistry`], in
/// report order. `"response"` is the host-observed end-to-end time; the
/// other eight are its additive components.
pub const PHASES: [&str; 9] = [
    "queue",
    "overhead",
    "seek",
    "head_switch",
    "rot_latency",
    "media",
    "bus",
    "write_settle",
    "response",
];

/// Aggregates per-request [`TraceEvent::Complete`] summaries into
/// per-phase latency histograms and request counters.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    phases: [Histogram; 9],
    reads: u64,
    writes: u64,
    cache_hits: u64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Folds one request summary into the registry.
    pub fn observe_complete(&mut self, event: &TraceEvent) {
        if let TraceEvent::Complete {
            op,
            cache_hit,
            queue,
            overhead,
            seek,
            head_switch,
            rot_latency,
            media,
            bus,
            write_settle,
            response,
            ..
        } = *event
        {
            let values = [
                queue,
                overhead,
                seek,
                head_switch,
                rot_latency,
                media,
                bus,
                write_settle,
                response,
            ];
            for (h, v) in self.phases.iter_mut().zip(values) {
                h.observe(v);
            }
            match op {
                Op::Read => self.reads += 1,
                Op::Write => self.writes += 1,
            }
            if cache_hit {
                self.cache_hits += 1;
            }
        }
    }

    /// The histogram for a phase name from [`PHASES`].
    pub fn phase(&self, name: &str) -> Option<&Histogram> {
        PHASES
            .iter()
            .position(|p| *p == name)
            .map(|i| &self.phases[i])
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Reads observed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes observed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Requests serviced from the firmware cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Merges another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.merge(b);
        }
        self.reads += other.reads;
        self.writes += other.writes;
        self.cache_hits += other.cache_hits;
    }

    /// Renders the registry as a fixed-width per-phase latency table
    /// (milliseconds), one row per [`PHASES`] entry, ending with a request
    /// count line. Empty phases (no nonzero samples) still appear so the
    /// output shape is stable.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<13} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "phase", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"
        );
        let ms = |ns: f64| ns / 1e6;
        for (name, h) in PHASES.iter().zip(self.phases.iter()) {
            let _ = writeln!(
                out,
                "{:<13} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                name,
                ms(h.mean_ns()),
                ms(h.percentile(0.50) as f64),
                ms(h.percentile(0.95) as f64),
                ms(h.percentile(0.99) as f64),
                ms(h.max_ns() as f64),
            );
        }
        let _ = writeln!(
            out,
            "requests {} (reads {}, writes {}, cache hits {})",
            self.requests(),
            self.reads,
            self.writes,
            self.cache_hits
        );
        out
    }
}

impl TraceSink for MetricsRegistry {
    fn record(&mut self, event: &TraceEvent) {
        self.observe_complete(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|s| {
                [0u64, 1, 3]
                    .into_iter()
                    .map(move |off| (1u64 << s).saturating_add(off << s.saturating_sub(3)))
            })
            .chain([0, u64::MAX])
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "index not monotone at v={v}");
            prev = idx;
        }
    }

    #[test]
    fn bucket_value_bounds_its_bucket() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u32::MAX as u64] {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            // The representative is the bucket's upper edge: at least v,
            // and within 1/16 relative error of it.
            assert!(rep >= v, "rep {rep} < v {v}");
            assert!(
                rep as f64 <= v as f64 * (1.0 + 1.0 / 8.0) + 1.0,
                "rep {rep} v {v}"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.observe(v);
        }
        for q in 1..=16 {
            let p = h.percentile(q as f64 / 16.0);
            assert_eq!(p, q - 1, "q={q}");
        }
    }

    #[test]
    fn summary_statistics_are_exact() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 300, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min_ns(), 100);
        assert_eq!(h.max_ns(), 1_000_000);
        assert!((h.mean_ns() - 250_150.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.observe(i * 1_000); // 1 µs .. 10 ms
        }
        for (q, expect) in [(0.5, 5_000_000.0), (0.95, 9_500_000.0), (0.99, 9_900_000.0)] {
            let got = h.percentile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.07, "q={q} got={got} expect={expect} rel={rel}");
        }
        assert_eq!(h.percentile(1.0), 10_000_000);
        // p0 lands in the first occupied bucket (upper edge, ≤ 6 % error).
        let p0 = h.percentile(0.0) as f64;
        assert!((p0 - 1_000.0).abs() / 1_000.0 < 0.07, "p0={p0}");
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn merge_matches_combined_observation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for i in 0..1_000u64 {
            let v = i * 7_919;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            c.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum_ns(), c.sum_ns());
        assert_eq!(a.percentile(0.5), c.percentile(0.5));
        assert_eq!(a.max_ns(), c.max_ns());
    }

    fn complete(op: Op, cache_hit: bool, ns: u64) -> TraceEvent {
        TraceEvent::Complete {
            req: 0,
            t: 0,
            op,
            lbn: 0,
            len: 1,
            cache_hit,
            queue: ns,
            overhead: ns,
            seek: ns,
            head_switch: ns,
            rot_latency: ns,
            media: ns,
            bus: ns,
            write_settle: ns,
            response: 8 * ns,
        }
    }

    #[test]
    fn registry_aggregates_completes_only() {
        let mut reg = MetricsRegistry::new();
        reg.record(&complete(Op::Read, false, 1_000));
        reg.record(&complete(Op::Write, false, 3_000));
        reg.record(&complete(Op::Read, true, 1_000));
        // Non-Complete events are ignored.
        reg.record(&TraceEvent::Queue {
            req: 0,
            t: 0,
            dur: 5,
        });
        assert_eq!(reg.requests(), 3);
        assert_eq!(reg.reads(), 2);
        assert_eq!(reg.writes(), 1);
        assert_eq!(reg.cache_hits(), 1);
        let resp = reg.phase("response").unwrap();
        assert_eq!(resp.count(), 3);
        assert!((resp.mean_ns() - (8.0 * 5000.0 / 3.0)).abs() < 1.0);
        assert!(reg.phase("nonsense").is_none());
    }

    #[test]
    fn registry_merge_and_report_shape() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.record(&complete(Op::Read, false, 2_000_000));
        b.record(&complete(Op::Write, false, 4_000_000));
        a.merge(&b);
        assert_eq!(a.requests(), 2);
        let report = a.report();
        // Header + 9 phase rows + count line.
        assert_eq!(report.lines().count(), 11);
        for name in PHASES {
            assert!(report.contains(name), "report missing {name}");
        }
        assert!(report.contains("requests 2 (reads 1, writes 1, cache hits 0)"));
    }
}
