//! Deterministic power-cut simulation: decide exactly which sectors of
//! which writes had reached the media at an arbitrary cut instant.
//!
//! # Model
//!
//! A write command "hits media" sector by sector: each sector becomes
//! durable at the instant the head finishes writing its physical slot.
//! With the crash log enabled ([`crate::disk::Disk::enable_crash_log`])
//! the drive records, for every write command, the per-sector durable
//! instants computed by the same mechanical pass that produces the
//! command's service time — seek, settle, rotation, zero-latency
//! reordering, slipped/remapped defects, and recovered-media-error
//! retries all shift the instants exactly as they shift the timing.
//!
//! A *power cut* at simulated instant `T` then resolves bit-reproducibly
//! from the log alone:
//!
//! * a sector with durable instant ≤ `T` holds the payload of the last
//!   such write (writes are FCFS, so log order is media order);
//! * every other sector holds whatever it held before — torn
//!   multi-sector writes leave a mix, and zero-latency writes can tear
//!   *out of LBN order* (the firmware writes sectors as they pass under
//!   the head);
//! * volatile contents — the drive's read cache, host buffer caches,
//!   anything never issued as a write — are simply absent from the log
//!   and therefore lost.
//!
//! Because the durable instants are pure functions of the request trace
//! and the fault seed, the post-cut image is a pure function of
//! `(seed, cut_time)`: replaying the same workload and cutting at the
//! same instant yields a byte-identical [`SectorImage`].
//!
//! Payloads are attached by the issuing layer via
//! [`crate::disk::Disk::note_write_payload`] right after each write is
//! serviced; [`replay`] stitches log and payloads into the on-media
//! image at the cut.

use crate::{SimTime, SECTOR_BYTES};
use std::collections::BTreeMap;
use std::fmt;

/// Sector size in bytes, as a `usize` (see [`crate::SECTOR_BYTES`]).
pub const SECTOR_USIZE: usize = SECTOR_BYTES as usize;

/// One logged write command: where it landed and when each of its
/// sectors became durable.
#[derive(Debug, Clone)]
pub struct WriteRecord {
    /// Drive-assigned request sequence number.
    pub req: u64,
    /// First LBN written.
    pub lbn: u64,
    /// Number of sectors written.
    pub len: u64,
    /// Command issue instant.
    pub issue: SimTime,
    /// Per-sector durable instants, in LBN order (`durable[i]` is when
    /// `lbn + i` hit media). Zero-latency firmware makes these
    /// non-monotonic within a track.
    pub durable: Vec<SimTime>,
    /// Sector contents (`len * SECTOR_BYTES` bytes, LBN order), attached
    /// by the issuing layer. `None` until
    /// [`crate::disk::Disk::note_write_payload`] runs.
    pub payload: Option<Vec<u8>>,
}

impl WriteRecord {
    /// Whether sector `i` (0-based within the write) was durable at `cut`.
    pub fn sector_durable(&self, i: usize, cut: SimTime) -> bool {
        self.durable[i] <= cut
    }

    /// How many of the write's sectors were durable at `cut`.
    pub fn durable_count(&self, cut: SimTime) -> usize {
        self.durable.iter().filter(|&&d| d <= cut).count()
    }

    /// Whether the write is torn at `cut`: some sectors hit media and
    /// some did not.
    pub fn torn_at(&self, cut: SimTime) -> bool {
        let n = self.durable_count(cut);
        n > 0 && n < self.len as usize
    }
}

/// The append-only log of write commands a drive serviced, in issue
/// (equivalently, media) order.
#[derive(Debug, Clone, Default)]
pub struct CrashLog {
    /// The logged writes.
    pub records: Vec<WriteRecord>,
}

impl CrashLog {
    /// Number of logged writes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no writes have been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The latest durable instant in the log — cutting at or after this
    /// instant loses nothing that was ever written.
    pub fn horizon(&self) -> SimTime {
        self.records
            .iter()
            .flat_map(|r| r.durable.iter().copied())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Attaches `payload` to the most recent record. Used by
    /// [`crate::disk::Disk::note_write_payload`].
    ///
    /// # Panics
    ///
    /// Panics if the log is empty, the last record already has a
    /// payload, or the payload length is not `len * SECTOR_BYTES` —
    /// all three are caller contract violations, not runtime states.
    pub fn attach_payload(&mut self, payload: Vec<u8>) {
        let rec = self
            .records
            .last_mut()
            .expect("no write to attach a payload to");
        assert!(
            rec.payload.is_none(),
            "write {} already has a payload",
            rec.req
        );
        assert_eq!(
            payload.len(),
            rec.len as usize * SECTOR_USIZE,
            "payload length must be len * SECTOR_BYTES for write {}",
            rec.req
        );
        rec.payload = Some(payload);
    }
}

/// Why a power-cut replay could not be resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashError {
    /// A logged write had durable sectors at the cut but no payload was
    /// ever attached, so the on-media bytes are unknowable.
    MissingPayload {
        /// The offending write's request sequence number.
        req: u64,
    },
}

impl fmt::Display for CrashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashError::MissingPayload { req } => {
                write!(f, "write {req} hit media but has no recorded payload")
            }
        }
    }
}

impl std::error::Error for CrashError {}

/// A sparse byte-addressed disk image: sector contents keyed by LBN.
/// Unwritten sectors read as zeros. `BTreeMap` keeps iteration order
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectorImage {
    sectors: BTreeMap<u64, Box<[u8; SECTOR_USIZE]>>,
}

impl SectorImage {
    /// An empty (all-zeros) image.
    pub fn new() -> Self {
        SectorImage::default()
    }

    /// The sector's contents, zeros if never written.
    pub fn read(&self, lbn: u64) -> [u8; SECTOR_USIZE] {
        match self.sectors.get(&lbn) {
            Some(s) => **s,
            None => [0u8; SECTOR_USIZE],
        }
    }

    /// The sector's contents if it was ever written.
    pub fn sector(&self, lbn: u64) -> Option<&[u8; SECTOR_USIZE]> {
        self.sectors.get(&lbn).map(|b| &**b)
    }

    /// Overwrites one sector.
    pub fn write(&mut self, lbn: u64, data: &[u8; SECTOR_USIZE]) {
        self.sectors.insert(lbn, Box::new(*data));
    }

    /// The first 8 bytes of the sector as a little-endian word — the
    /// word-per-sector view used by data planes that track one `u64`
    /// per sector (e.g. the fleet's member stores).
    pub fn word(&self, lbn: u64) -> u64 {
        match self.sectors.get(&lbn) {
            Some(s) => u64::from_le_bytes(s[..8].try_into().expect("8 bytes")),
            None => 0,
        }
    }

    /// Writes `w` into the sector's first 8 bytes (rest zeros).
    pub fn set_word(&mut self, lbn: u64, w: u64) {
        let mut s = [0u8; SECTOR_USIZE];
        s[..8].copy_from_slice(&w.to_le_bytes());
        self.write(lbn, &s);
    }

    /// Number of sectors ever written.
    pub fn written_len(&self) -> usize {
        self.sectors.len()
    }

    /// Iterates written sectors in LBN order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8; SECTOR_USIZE])> {
        self.sectors.iter().map(|(&l, b)| (l, &**b))
    }
}

/// Applies a power cut at `cut` to `image`: every logged sector whose
/// durable instant is ≤ `cut` takes its payload bytes; everything else
/// is untouched. Records are applied in log order (media order), so a
/// sector written twice before the cut ends with the later payload.
pub fn apply_cut(image: &mut SectorImage, log: &CrashLog, cut: SimTime) -> Result<(), CrashError> {
    for rec in &log.records {
        let n = rec.len as usize;
        let any = rec.durable.iter().take(n).any(|&d| d <= cut);
        if !any {
            continue;
        }
        let payload = rec
            .payload
            .as_deref()
            .ok_or(CrashError::MissingPayload { req: rec.req })?;
        for i in 0..n {
            if rec.durable[i] <= cut {
                let mut s = [0u8; SECTOR_USIZE];
                s.copy_from_slice(&payload[i * SECTOR_USIZE..(i + 1) * SECTOR_USIZE]);
                image.write(rec.lbn + i as u64, &s);
            }
        }
    }
    Ok(())
}

/// [`apply_cut`] on a clone of `initial`: the on-media image an
/// observer would find after losing power at `cut`.
pub fn replay(
    initial: &SectorImage,
    log: &CrashLog,
    cut: SimTime,
) -> Result<SectorImage, CrashError> {
    let mut img = initial.clone();
    apply_cut(&mut img, log, cut)?;
    Ok(img)
}

/// SplitMix64 — the same finalizer the fault layer uses; exposed here
/// so on-disk formats can derive checksums and fill patterns without a
/// second hash implementation.
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A 64-bit checksum over arbitrary bytes (SplitMix64-mixed FNV-style
/// fold). Not cryptographic — it detects torn sectors, which is all an
/// fsck/roll-forward pass needs.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = splitmix(h ^ u64::from_le_bytes(w));
    }
    h
}

/// A deterministic 512-byte fill pattern for sector `lbn` under `salt` —
/// the canonical "user data" payload crash tests check bit-exactness
/// against.
pub fn pattern_sector(salt: u64, lbn: u64) -> [u8; SECTOR_USIZE] {
    let mut s = [0u8; SECTOR_USIZE];
    let base = splitmix(salt ^ lbn.rotate_left(32));
    for (k, w) in s.chunks_mut(8).enumerate() {
        w.copy_from_slice(&splitmix(base ^ k as u64).to_le_bytes());
    }
    s
}

/// `len` sectors of [`pattern_sector`] starting at `lbn`, concatenated —
/// ready to hand to [`crate::disk::Disk::note_write_payload`].
pub fn pattern_payload(salt: u64, lbn: u64, len: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(len as usize * SECTOR_USIZE);
    for i in 0..len {
        out.extend_from_slice(&pattern_sector(salt, lbn + i));
    }
    out
}

/// Packs one `u64` word per sector (little-endian in the first 8 bytes,
/// rest zeros) — the payload encoding for word-per-sector data planes.
pub fn words_payload(words: &[u64]) -> Vec<u8> {
    let mut out = vec![0u8; words.len() * SECTOR_USIZE];
    for (i, w) in words.iter().enumerate() {
        out[i * SECTOR_USIZE..i * SECTOR_USIZE + 8].copy_from_slice(&w.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;
    use crate::cache::CacheConfig;
    use crate::disk::{Disk, DiskConfig, Request};
    use crate::fault::FaultConfig;
    use crate::geometry::{GeometrySpec, ZoneSpec};
    use crate::mech::{SeekCurve, Spindle};
    use crate::SimDur;

    fn crash_disk(zero_latency: bool) -> Disk {
        crash_disk_with(zero_latency, FaultConfig::default())
    }

    fn crash_disk_with(zero_latency: bool, fault: FaultConfig) -> Disk {
        let geometry = GeometrySpec::pristine(
            2,
            vec![ZoneSpec {
                cylinders: 50,
                spt: 200,
                track_skew: 30,
                cyl_skew: 40,
            }],
        )
        .build()
        .unwrap();
        let mut d = Disk::new(DiskConfig {
            name: "crash-test".to_string(),
            geometry,
            spindle: Spindle::new(10_000),
            seek: SeekCurve::calibrate(0.8, 2.0, 4.0, 50),
            head_switch: SimDur::from_millis_f64(0.8),
            write_settle: SimDur::from_millis_f64(1.0),
            cmd_overhead: SimDur::from_micros_f64(100.0),
            zero_latency,
            bus: BusConfig::infinite(),
            cache: CacheConfig::default(),
            tracer: None,
            fault,
        });
        d.enable_crash_log();
        d
    }

    #[test]
    fn crash_log_does_not_change_timing() {
        let mk = |log: bool| {
            let mut d = crash_disk(true);
            if !log {
                let _ = d.take_crash_log();
            }
            let mut t = SimTime::ZERO;
            let mut ends = Vec::new();
            for i in 0..40u64 {
                let c = d.service(Request::write((i * 531) % 15_000, 1 + (i * 17) % 400), t);
                if d.crash_log().is_some() {
                    let r = c.request;
                    d.note_write_payload(&pattern_payload(7, r.lbn, r.len));
                }
                ends.push(c.completion);
                t = c.completion;
            }
            ends
        };
        assert_eq!(mk(true), mk(false), "crash logging must not perturb timing");
    }

    #[test]
    fn durable_instants_sit_inside_the_media_window() {
        let mut d = crash_disk(false);
        let c = d.service(Request::write(1000, 64), SimTime::ZERO);
        d.note_write_payload(&pattern_payload(1, 1000, 64));
        let log = d.crash_log().unwrap();
        let rec = &log.records[0];
        assert_eq!(rec.len, 64);
        assert_eq!(rec.durable.len(), 64);
        for &t in &rec.durable {
            assert!(t > c.service_start && t <= c.media_end);
        }
        // Ordinary (non-zero-latency) firmware writes in LBN order.
        for w in rec.durable.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn zero_latency_write_tears_out_of_lbn_order() {
        let mut d = crash_disk(true);
        // Seek somewhere mid-track so the full-track write starts on an
        // arbitrary angle and is reordered by access-on-arrival.
        let c0 = d.service(Request::write(137, 1), SimTime::ZERO);
        d.note_write_payload(&pattern_payload(0, 137, 1));
        let c = d.service(Request::write(0, 200), c0.completion);
        d.note_write_payload(&pattern_payload(0, 0, 200));
        let rec = &d.crash_log().unwrap().records[1];
        let monotonic = rec.durable.windows(2).all(|w| w[0] <= w[1]);
        assert!(
            !monotonic,
            "zero-latency full-track write should commit sectors out of LBN order"
        );
        // Cut in the middle of the media window: the durable set must be
        // a strict subset chosen by rotation order, not a prefix.
        let mid = SimTime::from_ns((c.service_start.as_ns() + c.media_end.as_ns()) / 2);
        assert!(rec.torn_at(mid));
    }

    #[test]
    fn replay_is_bit_reproducible_and_respects_cuts() {
        let run = || {
            let mut d = crash_disk(true);
            let mut t = SimTime::ZERO;
            for i in 0..30u64 {
                let lbn = (i * 977) % 10_000;
                let len = 1 + (i * 37) % 300;
                let c = d.service(Request::write(lbn, len), t);
                d.note_write_payload(&pattern_payload(42 + i, lbn, len));
                t = c.completion;
            }
            d.take_crash_log().unwrap()
        };
        let log = run();
        let log2 = run();
        let horizon = log.horizon();
        for num in [0u64, 1, 3, 7, 10] {
            let cut = SimTime::from_ns(horizon.as_ns() * num / 10);
            let a = replay(&SectorImage::new(), &log, cut).unwrap();
            let b = replay(&SectorImage::new(), &log2, cut).unwrap();
            assert_eq!(a, b, "cut {num}/10 must replay bit-identically");
        }
        // Cutting at the horizon applies everything: each sector holds the
        // payload of the last write covering it.
        let full = replay(&SectorImage::new(), &log, horizon).unwrap();
        let mut expect = SectorImage::new();
        for rec in &log.records {
            let p = rec.payload.as_deref().unwrap();
            for i in 0..rec.len as usize {
                let mut s = [0u8; SECTOR_USIZE];
                s.copy_from_slice(&p[i * SECTOR_USIZE..(i + 1) * SECTOR_USIZE]);
                expect.write(rec.lbn + i as u64, &s);
            }
        }
        assert_eq!(full, expect);
        // Cutting at zero applies nothing.
        let none = replay(&SectorImage::new(), &log, SimTime::ZERO).unwrap();
        assert_eq!(none.written_len(), 0);
    }

    #[test]
    fn missing_payload_is_a_typed_error() {
        let mut d = crash_disk(true);
        let c = d.service(Request::write(0, 8), SimTime::ZERO);
        let log = d.take_crash_log().unwrap();
        let err = replay(&SectorImage::new(), &log, c.media_end).unwrap_err();
        assert!(matches!(err, CrashError::MissingPayload { req: 0 }));
        // But a cut before anything hit media needs no payloads.
        assert!(replay(&SectorImage::new(), &log, SimTime::ZERO).is_ok());
    }

    #[test]
    fn media_error_retry_delays_durability() {
        let mk = |media_ppm: u32| {
            let fault = FaultConfig {
                media_per_million: media_ppm,
                ..FaultConfig::default()
            };
            let mut d = crash_disk_with(false, fault);
            let _ = d.service(Request::write(0, 32), SimTime::ZERO);
            d.note_write_payload(&pattern_payload(0, 0, 32));
            d.take_crash_log().unwrap().records[0].durable.clone()
        };
        let clean = mk(0);
        let faulty = mk(1_000_000);
        let rev = Spindle::new(10_000).revolution();
        for (a, b) in clean.iter().zip(&faulty) {
            assert_eq!(*a + rev, *b, "retry shifts durability by one revolution");
        }
    }
}
