//! Preset configurations for the seven drives of Table 1 of the paper.
//!
//! Each preset reproduces the published characteristics — RPM, head-switch
//! time, average seek, sectors-per-track range, track count — and derives
//! the rest (zone layout, skews, seek-curve calibration) the way the real
//! firmware would: skews sized to cover the head-switch and single-cylinder
//! seek times, zones interpolating linearly from the outer to the inner
//! sectors-per-track count.
//!
//! Presets are pristine (no factory defects). Use [`with_factory_defects`]
//! to format a drive with a deterministic pseudo-random defect list and a
//! per-cylinder spare scheme, which is what makes track-boundary extraction
//! non-trivial.

use crate::bus::BusConfig;
use crate::cache::CacheConfig;
use crate::defects::{DefectLocation, DefectPolicy, SpareScheme};
use crate::disk::DiskConfig;
use crate::fault::FaultConfig;
use crate::geometry::{GeometrySpec, ZoneSpec};
use crate::mech::{SeekCurve, Spindle};
use crate::SimDur;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Published characteristics of a drive, as in Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSheet {
    /// Model name.
    pub name: &'static str,
    /// Model year (for the Table 1 printout).
    pub year: u32,
    /// Spindle speed.
    pub rpm: u32,
    /// Head switch time, ms.
    pub head_switch_ms: f64,
    /// Average seek time, ms.
    pub avg_seek_ms: f64,
    /// Sectors per track, outermost zone.
    pub spt_outer: u32,
    /// Sectors per track, innermost zone.
    pub spt_inner: u32,
    /// Total number of tracks.
    pub tracks: u32,
    /// Advertised capacity, GB (informational).
    pub capacity_gb: f64,
    /// Number of media surfaces.
    pub surfaces: u32,
    /// Number of recording zones.
    pub zones: u32,
    /// Whether the firmware supports zero-latency access.
    pub zero_latency: bool,
    /// Host bus peak rate, MB/s.
    pub bus_mb_s: f64,
}

/// The seven rows of Table 1.
pub fn table1_sheets() -> Vec<ModelSheet> {
    vec![
        ModelSheet {
            name: "HP C2247",
            year: 1992,
            rpm: 5400,
            head_switch_ms: 1.0,
            avg_seek_ms: 10.0,
            spt_outer: 96,
            spt_inner: 56,
            tracks: 25649,
            capacity_gb: 1.0,
            surfaces: 13,
            zones: 8,
            zero_latency: false,
            bus_mb_s: 20.0,
        },
        ModelSheet {
            name: "Quantum Viking",
            year: 1997,
            rpm: 7200,
            head_switch_ms: 1.0,
            avg_seek_ms: 8.0,
            spt_outer: 216,
            spt_inner: 126,
            tracks: 49152,
            capacity_gb: 4.5,
            surfaces: 8,
            zones: 12,
            zero_latency: false,
            bus_mb_s: 40.0,
        },
        ModelSheet {
            name: "IBM Ultrastar 18 ES",
            year: 1998,
            rpm: 7200,
            head_switch_ms: 1.1,
            avg_seek_ms: 7.6,
            spt_outer: 390,
            spt_inner: 247,
            tracks: 57090,
            capacity_gb: 9.0,
            surfaces: 10,
            zones: 12,
            zero_latency: false,
            bus_mb_s: 80.0,
        },
        ModelSheet {
            name: "IBM Ultrastar 18LZX",
            year: 1999,
            rpm: 10000,
            head_switch_ms: 0.8,
            avg_seek_ms: 5.9,
            spt_outer: 382,
            spt_inner: 195,
            tracks: 116340,
            capacity_gb: 18.0,
            surfaces: 20,
            zones: 16,
            zero_latency: false,
            bus_mb_s: 80.0,
        },
        ModelSheet {
            name: "Quantum Atlas 10K",
            year: 1999,
            rpm: 10000,
            head_switch_ms: 0.8,
            avg_seek_ms: 5.0,
            spt_outer: 334,
            spt_inner: 224,
            tracks: 60126,
            capacity_gb: 9.0,
            surfaces: 6,
            zones: 16,
            zero_latency: true,
            bus_mb_s: 80.0,
        },
        ModelSheet {
            name: "Seagate Cheetah X15",
            year: 2000,
            rpm: 15000,
            head_switch_ms: 0.8,
            avg_seek_ms: 3.9,
            spt_outer: 386,
            spt_inner: 286,
            tracks: 103750,
            capacity_gb: 18.0,
            surfaces: 8,
            zones: 16,
            zero_latency: false,
            bus_mb_s: 100.0,
        },
        ModelSheet {
            name: "Quantum Atlas 10K II",
            year: 2000,
            rpm: 10000,
            head_switch_ms: 0.6,
            avg_seek_ms: 4.7,
            spt_outer: 528,
            spt_inner: 353,
            tracks: 52014,
            capacity_gb: 9.0,
            surfaces: 6,
            zones: 16,
            zero_latency: true,
            bus_mb_s: 160.0,
        },
    ]
}

impl ModelSheet {
    /// Single-cylinder seek time derived from the average (clamped to the
    /// settle-dominated 0.75–1.2 ms range typical of the era).
    pub fn single_cyl_seek_ms(&self) -> f64 {
        (0.17 * self.avg_seek_ms).clamp(0.75, 1.2)
    }

    /// Full-strobe seek time derived from the average.
    pub fn full_strobe_seek_ms(&self) -> f64 {
        1.9 * self.avg_seek_ms
    }

    /// Number of cylinders (tracks / surfaces).
    pub fn cylinders(&self) -> u32 {
        self.tracks / self.surfaces
    }

    /// Builds the pristine drive configuration for this sheet.
    pub fn build(&self) -> DiskConfig {
        let cylinders = self.cylinders();
        let spindle = Spindle::new(self.rpm);
        let rev_ms = spindle.revolution().as_millis_f64();
        let head_switch = SimDur::from_millis_f64(self.head_switch_ms);
        let single = self.single_cyl_seek_ms();

        // Zone layout: split cylinders into `zones` runs, sectors-per-track
        // interpolating linearly from outer to inner. Skews cover the head
        // switch (track skew) and a single-cylinder seek (cylinder skew),
        // plus a 2-slot controller margin.
        // Zone widths are proportional to their sectors-per-track (outer
        // zones are wider on real drives); sectors-per-track interpolates
        // linearly from the outer to the inner published count.
        let mut zone_specs = Vec::with_capacity(self.zones as usize);
        let spt_of = |z: u32| -> f64 {
            let f = if self.zones > 1 {
                f64::from(z) / f64::from(self.zones - 1)
            } else {
                0.0
            };
            f64::from(self.spt_outer) + f * (f64::from(self.spt_inner) - f64::from(self.spt_outer))
        };
        let weight_total: f64 = (0..self.zones).map(spt_of).sum();
        let mut assigned = 0u32;
        for z in 0..self.zones {
            let cyls = if z == self.zones - 1 {
                cylinders - assigned
            } else {
                ((f64::from(cylinders) * spt_of(z) / weight_total).round() as u32).max(1)
            };
            assigned += cyls;
            let f = if self.zones > 1 {
                f64::from(z) / f64::from(self.zones - 1)
            } else {
                0.0
            };
            let spt = (f64::from(self.spt_outer)
                + f * (f64::from(self.spt_inner) - f64::from(self.spt_outer)))
            .round() as u32;
            let track_skew = ((self.head_switch_ms / rev_ms) * f64::from(spt)).ceil() as u32 + 2;
            let cyl_skew = ((single / rev_ms) * f64::from(spt)).ceil() as u32 + 2;
            zone_specs.push(ZoneSpec {
                cylinders: cyls,
                spt,
                track_skew,
                cyl_skew,
            });
        }

        let geometry = GeometrySpec::pristine(self.surfaces, zone_specs)
            .build()
            .expect("preset geometry is valid");

        DiskConfig {
            name: self.name.to_string(),
            geometry,
            spindle,
            seek: SeekCurve::calibrate(
                single,
                self.avg_seek_ms,
                self.full_strobe_seek_ms(),
                cylinders,
            ),
            head_switch,
            write_settle: SimDur::from_millis_f64(1.2),
            cmd_overhead: SimDur::from_micros_f64(100.0),
            zero_latency: self.zero_latency,
            bus: BusConfig::in_order(self.bus_mb_s),
            cache: CacheConfig::default(),
            tracer: None,
            fault: FaultConfig::default(),
        }
    }
}

/// The Quantum Atlas 10K II — the paper's primary measurement platform.
pub fn quantum_atlas_10k_ii() -> DiskConfig {
    table1_sheets()
        .into_iter()
        .find(|s| s.name == "Quantum Atlas 10K II")
        .unwrap()
        .build()
}

/// The Quantum Atlas 10K — the FFS experiment platform.
pub fn quantum_atlas_10k() -> DiskConfig {
    table1_sheets()
        .into_iter()
        .find(|s| s.name == "Quantum Atlas 10K")
        .unwrap()
        .build()
}

/// The Seagate Cheetah X15 (no zero-latency support).
pub fn seagate_cheetah_x15() -> DiskConfig {
    table1_sheets()
        .into_iter()
        .find(|s| s.name == "Seagate Cheetah X15")
        .unwrap()
        .build()
}

/// The IBM Ultrastar 18 ES (no zero-latency support).
pub fn ibm_ultrastar_18es() -> DiskConfig {
    table1_sheets()
        .into_iter()
        .find(|s| s.name == "IBM Ultrastar 18 ES")
        .unwrap()
        .build()
}

/// A small fast-to-build drive for unit and property tests: 2 zones,
/// 4 surfaces, 10 000 RPM, zero-latency, in the spirit of the Atlas family.
pub fn small_test_disk() -> DiskConfig {
    let spindle = Spindle::new(10_000);
    let geometry = GeometrySpec::pristine(
        4,
        vec![
            ZoneSpec {
                cylinders: 60,
                spt: 200,
                track_skew: 30,
                cyl_skew: 36,
            },
            ZoneSpec {
                cylinders: 60,
                spt: 150,
                track_skew: 23,
                cyl_skew: 27,
            },
        ],
    )
    .build()
    .expect("test geometry is valid");
    DiskConfig {
        name: "SimTest 100".to_string(),
        geometry,
        spindle,
        seek: SeekCurve::calibrate(0.8, 2.5, 5.0, 120),
        head_switch: SimDur::from_millis_f64(0.8),
        write_settle: SimDur::from_millis_f64(1.2),
        cmd_overhead: SimDur::from_micros_f64(100.0),
        zero_latency: true,
        bus: BusConfig::in_order(160.0),
        cache: CacheConfig::default(),
        tracer: None,
        fault: FaultConfig::default(),
    }
}

/// Reformats a configuration with a deterministic pseudo-random factory
/// defect list (about `rate_per_million` defective sectors per million) and
/// the given spare scheme/policy. This is the variant used to exercise the
/// track-boundary extraction algorithms.
///
/// # Panics
///
/// Panics if the spare scheme cannot absorb the generated defect list
/// (choose a larger reserve).
pub fn with_factory_defects(
    config: DiskConfig,
    spare: SpareScheme,
    policy: DefectPolicy,
    rate_per_million: u32,
    seed: u64,
) -> DiskConfig {
    let mut spec = config.geometry.spec().clone();
    spec.spare = spare;
    spec.policy = policy;
    spec.defects = random_defects(&spec, rate_per_million, seed);
    DiskConfig {
        geometry: spec.build().expect("defected geometry is valid"),
        ..config
    }
}

/// Generates a deterministic defect list at roughly `rate_per_million`
/// defective sectors per million, uniformly over the media.
pub fn random_defects(
    spec: &GeometrySpec,
    rate_per_million: u32,
    seed: u64,
) -> Vec<DefectLocation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut defects = Vec::new();
    let mut cyl0 = 0u32;
    for z in &spec.zones {
        let slots_in_zone = u64::from(z.cylinders) * u64::from(spec.surfaces) * u64::from(z.spt);
        let expected = slots_in_zone * u64::from(rate_per_million) / 1_000_000;
        for _ in 0..expected {
            defects.push(DefectLocation::new(
                cyl0 + rng.gen_range(0..z.cylinders),
                rng.gen_range(0..spec.surfaces),
                rng.gen_range(0..z.spt),
            ));
        }
        cyl0 += z.cylinders;
    }
    defects.sort();
    defects.dedup();
    defects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, Request};
    use crate::SimTime;

    #[test]
    fn all_presets_build() {
        for sheet in table1_sheets() {
            let cfg = sheet.build();
            assert!(cfg.geometry.capacity_lbns() > 0, "{}", sheet.name);
            assert_eq!(
                cfg.geometry.num_tracks() / sheet.surfaces * sheet.surfaces,
                cfg.geometry.num_tracks()
            );
            // Outer zone matches the published sectors-per-track.
            assert_eq!(
                cfg.geometry.zones()[0].spt,
                sheet.spt_outer,
                "{}",
                sheet.name
            );
            let last = cfg.geometry.zones().len() - 1;
            assert_eq!(
                cfg.geometry.zones()[last].spt,
                sheet.spt_inner,
                "{}",
                sheet.name
            );
        }
    }

    #[test]
    fn atlas_10k_ii_first_zone_track_is_264_kb() {
        let cfg = quantum_atlas_10k_ii();
        let track = cfg.geometry.track(0);
        assert_eq!(track.lbn_count(), 528);
        assert_eq!(
            u64::from(track.lbn_count()) * crate::SECTOR_BYTES,
            264 * 1024
        ); // 264 KB
    }

    #[test]
    fn atlas_10k_ii_first_zone_seek_is_about_2_2_ms() {
        // The paper reports a 2.2 ms average seek for random requests within
        // the Atlas 10K II's first zone.
        let cfg = quantum_atlas_10k_ii();
        let zone = cfg.geometry.zones()[0];
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let a = rng.gen_range(0..zone.cylinders);
            let b = rng.gen_range(0..zone.cylinders);
            sum += cfg.seek.seek_time(a.abs_diff(b)).as_millis_f64();
        }
        let avg = sum / f64::from(n);
        assert!((1.6..=2.8).contains(&avg), "first-zone avg seek {avg} ms");
    }

    #[test]
    fn streaming_bandwidth_is_about_40_mb_s() {
        // 528 sectors per 6 ms revolution plus a head switch per track.
        let cfg = quantum_atlas_10k_ii();
        let track_bytes = 528.0 * 512.0;
        let per_track_ms =
            cfg.spindle.revolution().as_millis_f64() + cfg.head_switch.as_millis_f64();
        let mb_s = track_bytes / 1e6 / (per_track_ms / 1e3);
        assert!(
            (38.0..=43.0).contains(&mb_s),
            "streaming bandwidth {mb_s} MB/s"
        );
    }

    #[test]
    fn factory_defects_preserve_service() {
        let cfg = with_factory_defects(
            small_test_disk(),
            SpareScheme::SectorsPerCylinder(8),
            DefectPolicy::Slip,
            500,
            7,
        );
        assert!(!cfg.geometry.spec().defects.is_empty());
        let mut disk = Disk::new(cfg);
        let c = disk.service(Request::read(0, 64), SimTime::ZERO);
        assert!(c.completion > SimTime::ZERO);
    }

    #[test]
    fn random_defects_are_deterministic() {
        let spec = small_test_disk().geometry.spec().clone();
        let a = random_defects(&spec, 1000, 3);
        let b = random_defects(&spec, 1000, 3);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn zero_latency_flags_match_table1() {
        assert!(quantum_atlas_10k_ii().zero_latency);
        assert!(quantum_atlas_10k().zero_latency);
        assert!(!seagate_cheetah_x15().zero_latency);
        assert!(!ibm_ultrastar_18es().zero_latency);
    }
}
