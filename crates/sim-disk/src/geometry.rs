//! Zoned disk geometry and the LBN-to-physical mapping.
//!
//! The builder ([`GeometrySpec::build`]) turns a declarative description —
//! surfaces, zones, skews, a spare scheme, and a defect list — into a
//! [`DiskGeometry`] with a precomputed per-track map supporting O(log n)
//! LBN→physical and physical→LBN translation, including defect slipping and
//! remapping exactly as described in §2.2 and §3.1 of the paper.
//!
//! Tracks are numbered in LBN order: cylinder 0 surface 0, cylinder 0
//! surface 1, …, cylinder 1 surface 0, … (Figure 2(b) of the paper).

use crate::defects::{DefectLocation, DefectPolicy, SlipDomain, SpareScheme};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Identifier of a track, in LBN order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrackId(pub u32);

/// A physical block address: cylinder, head, and physical sector slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pba {
    /// Cylinder number, 0 at the outer edge.
    pub cyl: u32,
    /// Surface (head) number.
    pub head: u32,
    /// Physical sector slot within the track.
    pub slot: u32,
}

impl Pba {
    /// Creates a physical block address.
    pub fn new(cyl: u32, head: u32, slot: u32) -> Self {
        Pba { cyl, head, slot }
    }
}

impl fmt::Display for Pba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}/h{}/s{}", self.cyl, self.head, self.slot)
    }
}

/// One recording zone: a contiguous run of cylinders sharing a
/// sectors-per-track count and skew settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneSpec {
    /// Number of cylinders in the zone.
    pub cylinders: u32,
    /// Physical sector slots per track in this zone.
    pub spt: u32,
    /// Track (head-switch) skew, in sector slots of this zone.
    pub track_skew: u32,
    /// Cylinder-switch skew, in sector slots of this zone.
    pub cyl_skew: u32,
}

impl ZoneSpec {
    /// Creates a zone with the given cylinder count and sectors per track and
    /// zero skew (useful in tests).
    pub fn unskewed(cylinders: u32, spt: u32) -> Self {
        ZoneSpec {
            cylinders,
            spt,
            track_skew: 0,
            cyl_skew: 0,
        }
    }
}

/// Declarative description of a disk's layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometrySpec {
    /// Number of media surfaces (read/write heads).
    pub surfaces: u32,
    /// Recording zones, outermost first.
    pub zones: Vec<ZoneSpec>,
    /// Spare-space reservation scheme.
    pub spare: SpareScheme,
    /// How factory defects are folded into the mapping.
    pub policy: DefectPolicy,
    /// Factory (P-list) defects.
    pub defects: Vec<DefectLocation>,
}

impl GeometrySpec {
    /// A defect-free spec with the given shape — the common starting point.
    pub fn pristine(surfaces: u32, zones: Vec<ZoneSpec>) -> Self {
        GeometrySpec {
            surfaces,
            zones,
            spare: SpareScheme::None,
            policy: DefectPolicy::Slip,
            defects: Vec::new(),
        }
    }

    /// Total number of cylinders across all zones.
    pub fn cylinders(&self) -> u32 {
        self.zones.iter().map(|z| z.cylinders).sum()
    }

    /// Builds the full per-track mapping.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the spec is degenerate (no surfaces, no
    /// zones, zero-sector tracks), a defect lies outside the disk, or the
    /// spare scheme cannot absorb the defect list.
    pub fn build(self) -> Result<DiskGeometry, GeometryError> {
        build_geometry(self)
    }
}

/// Information about one recording zone of a built disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneInfo {
    /// First cylinder of the zone.
    pub first_cyl: u32,
    /// Number of cylinders.
    pub cylinders: u32,
    /// Sector slots per track.
    pub spt: u32,
    /// First LBN mapped in the zone.
    pub first_lbn: u64,
    /// Number of LBNs mapped in the zone.
    pub lbn_count: u64,
}

/// One track of the built mapping.
#[derive(Debug, Clone)]
pub struct Track {
    first_lbn: u64,
    count: u32,
    cyl: u32,
    head: u32,
    zone: u32,
    spt: u32,
    /// Angle of physical slot 0, in revolutions, at spindle phase 0.
    angle0: f64,
    /// `1.0 / spt`, precomputed: the service path adds one slot fraction
    /// per sweep and would otherwise pay a floating-point divide per visit.
    inv_spt: f64,
    /// `slot_frac[s] = s / spt`, shared across the zone's tracks, so the
    /// access-on-arrival scan reads slot angles without a division.
    slot_frac: Arc<[f64]>,
    /// Sorted factory-defective slots on this track.
    defect_slots: Vec<u32>,
    /// Grown-defective slots (remapped after formatting); sorted.
    grown_slots: Vec<u32>,
    /// Spare slots on this track holding remapped LBNs: (slot, lbn), sorted
    /// by slot.
    remap_targets: Vec<(u32, u64)>,
}

impl Track {
    /// First LBN mapped on this track.
    pub fn first_lbn(&self) -> u64 {
        self.first_lbn
    }

    /// Number of LBNs mapped on this track.
    pub fn lbn_count(&self) -> u32 {
        self.count
    }

    /// One past the last LBN mapped on this track.
    pub fn end_lbn(&self) -> u64 {
        self.first_lbn + u64::from(self.count)
    }

    /// Cylinder this track lies on.
    pub fn cyl(&self) -> u32 {
        self.cyl
    }

    /// Surface this track lies on.
    pub fn head(&self) -> u32 {
        self.head
    }

    /// Zone index this track belongs to.
    pub fn zone(&self) -> u32 {
        self.zone
    }

    /// Physical sector slots on this track.
    pub fn spt(&self) -> u32 {
        self.spt
    }

    /// Angle (in revolutions, `[0,1)`) of the leading edge of `slot` when the
    /// spindle is at phase 0.
    pub fn slot_angle(&self, slot: u32) -> f64 {
        debug_assert!(slot < self.spt);
        // `angle0 + slot/spt` lies in [0,2), where `fract` is exactly a
        // conditional subtraction — with the division read from the
        // precomputed table, the result is bit-identical to the direct form.
        let a = self.angle0 + self.slot_frac[slot as usize];
        if a >= 1.0 {
            a - 1.0
        } else {
            a
        }
    }

    /// Angle (in revolutions, `[0,1)`) of physical slot 0 at spindle phase 0
    /// — the raw value [`Track::slot_angle`] offsets by the slot fraction.
    pub fn angle0(&self) -> f64 {
        self.angle0
    }

    /// Exactly `1.0 / f64::from(self.spt())`, computed once at build time.
    pub fn inv_spt(&self) -> f64 {
        self.inv_spt
    }

    /// The precomputed `slot / spt` table shared by the zone's tracks:
    /// `slot_fracs()[s]` is exactly the value [`Track::slot_angle`] adds to
    /// [`Track::angle0`] for slot `s`. Non-decreasing in `s`.
    pub fn slot_fracs(&self) -> &[f64] {
        &self.slot_frac
    }

    /// Sorted factory-defective slots.
    pub fn defect_slots(&self) -> &[u32] {
        &self.defect_slots
    }

    /// True if the given physical slot is defective (factory or grown).
    pub fn is_defective_slot(&self, slot: u32) -> bool {
        self.defect_slots.binary_search(&slot).is_ok()
            || self.grown_slots.binary_search(&slot).is_ok()
    }
}

/// Error building or mutating a [`DiskGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The spec has zero surfaces.
    NoSurfaces,
    /// The spec has no zones (or a zone with no cylinders).
    NoZones,
    /// A zone declares zero sectors per track.
    EmptyTrack,
    /// A defect location lies outside the disk.
    DefectOutOfRange(DefectLocation),
    /// The spare scheme cannot absorb the defects in some slip domain.
    InsufficientSpare {
        /// First track of the domain that overflowed.
        domain_first_track: u32,
    },
    /// An LBN passed to a mutation is beyond the disk capacity.
    LbnOutOfRange(u64),
    /// No free spare slot was found for a grown defect.
    NoSpareForGrownDefect(u64),
    /// The spare scheme reserves every sector; the disk would expose no
    /// LBNs at all.
    ZeroCapacity,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NoSurfaces => write!(f, "disk must have at least one surface"),
            GeometryError::NoZones => write!(f, "disk must have at least one non-empty zone"),
            GeometryError::EmptyTrack => write!(f, "zone declares zero sectors per track"),
            GeometryError::DefectOutOfRange(d) => {
                write!(f, "defect at c{}/h{}/s{} lies outside the disk", d.cyl, d.head, d.slot)
            }
            GeometryError::InsufficientSpare { domain_first_track } => write!(
                f,
                "spare scheme cannot absorb defects in the domain starting at track {domain_first_track}"
            ),
            GeometryError::LbnOutOfRange(lbn) => write!(f, "lbn {lbn} is beyond disk capacity"),
            GeometryError::NoSpareForGrownDefect(lbn) => {
                write!(f, "no free spare slot available to remap grown defect at lbn {lbn}")
            }
            GeometryError::ZeroCapacity => {
                write!(f, "spare scheme reserves the entire disk; no LBNs remain")
            }
        }
    }
}

impl Error for GeometryError {}

/// Flat structure-of-arrays translation tables, rebuilt alongside the
/// per-track map. LBN→track translation is the hottest operation in the
/// engine; searching a dense `u64` array (instead of striding over
/// 100-byte-plus [`Track`] structs) keeps the whole search path in a few
/// cache lines, and zones whose tracks all map exactly `spt` LBNs skip the
/// search entirely with one divide.
#[derive(Debug, Clone)]
struct HotTables {
    /// `first_lbns[t]` is the first LBN of track `t`; the final entry is the
    /// disk capacity, so `first_lbns[t + 1]` always bounds track `t`'s range.
    first_lbns: Vec<u64>,
    /// Per-zone first LBN (equal to the zone's first track's first LBN).
    zone_first_lbn: Vec<u64>,
    /// Per-zone first track id.
    zone_first_track: Vec<u32>,
    /// Per-zone sectors per track, widened for the division below.
    zone_spt: Vec<u64>,
    /// Whether every track in the zone maps exactly `spt` LBNs (no defects,
    /// no spare slots, no reserved tracks) — the common case for the
    /// pristine drive presets — enabling `track = first + offset / spt`.
    zone_uniform: Vec<bool>,
}

impl HotTables {
    fn build(tracks: &[Track], zones: &[ZoneInfo], capacity: u64, surfaces: u32) -> Self {
        let mut first_lbns = Vec::with_capacity(tracks.len() + 1);
        first_lbns.extend(tracks.iter().map(|t| t.first_lbn));
        first_lbns.push(capacity);
        let mut zone_first_lbn = Vec::with_capacity(zones.len());
        let mut zone_first_track = Vec::with_capacity(zones.len());
        let mut zone_spt = Vec::with_capacity(zones.len());
        let mut zone_uniform = Vec::with_capacity(zones.len());
        for z in zones {
            let first_track = z.first_cyl * surfaces;
            let track_count = (z.cylinders * surfaces) as usize;
            let zone_tracks = &tracks[first_track as usize..first_track as usize + track_count];
            zone_first_lbn.push(zone_tracks[0].first_lbn);
            zone_first_track.push(first_track);
            zone_spt.push(u64::from(z.spt));
            zone_uniform.push(zone_tracks.iter().all(|t| t.count == t.spt));
        }
        HotTables {
            first_lbns,
            zone_first_lbn,
            zone_first_track,
            zone_spt,
            zone_uniform,
        }
    }
}

/// Last index `i` with `table[i] <= lbn`, assuming `table[0] <= lbn` and
/// `table` is non-decreasing. Branch-free binary search: the halving step
/// uses an arithmetic select instead of a data-dependent branch, which on
/// random lookups (every cache-missing request) avoids a mispredict per
/// level.
#[inline]
fn last_le(table: &[u64], lbn: u64) -> usize {
    debug_assert!(!table.is_empty() && table[0] <= lbn);
    let mut i = 0usize;
    let mut len = table.len();
    while len > 1 {
        let half = len / 2;
        i += usize::from(table[i + half] <= lbn) * half;
        len -= half;
    }
    i
}

/// A fully built disk layout with O(log n) translation in both directions.
#[derive(Debug)]
pub struct DiskGeometry {
    spec: GeometrySpec,
    tracks: Vec<Track>,
    zones: Vec<ZoneInfo>,
    /// First cylinder of each zone, for zone-of-cylinder lookup.
    zone_first_cyl: Vec<u32>,
    capacity: u64,
    /// Remapped LBNs (factory remap policy and grown defects): lbn → spare
    /// location.
    remaps: BTreeMap<u64, Pba>,
    /// Flat SoA translation tables (see [`HotTables`]).
    hot: HotTables,
    /// Track returned by the previous `track_of_lbn` call. Sequential and
    /// streaming access hits this track or the next one almost always,
    /// skipping the binary search. Relaxed ordering is enough: a stale
    /// hint is never wrong, merely a missed shortcut.
    last_track: AtomicU32,
}

impl Clone for DiskGeometry {
    fn clone(&self) -> Self {
        DiskGeometry {
            spec: self.spec.clone(),
            tracks: self.tracks.clone(),
            zones: self.zones.clone(),
            zone_first_cyl: self.zone_first_cyl.clone(),
            capacity: self.capacity,
            remaps: self.remaps.clone(),
            hot: self.hot.clone(),
            last_track: AtomicU32::new(self.last_track.load(Ordering::Relaxed)),
        }
    }
}

impl DiskGeometry {
    /// The spec this geometry was built from.
    pub fn spec(&self) -> &GeometrySpec {
        &self.spec
    }

    /// Number of media surfaces.
    pub fn surfaces(&self) -> u32 {
        self.spec.surfaces
    }

    /// Number of cylinders.
    pub fn cylinders(&self) -> u32 {
        self.spec.cylinders()
    }

    /// Total number of LBNs the disk exposes.
    pub fn capacity_lbns(&self) -> u64 {
        self.capacity
    }

    /// Number of tracks (surfaces × cylinders).
    pub fn num_tracks(&self) -> u32 {
        self.tracks.len() as u32
    }

    /// The zones of the disk, outermost first.
    pub fn zones(&self) -> &[ZoneInfo] {
        &self.zones
    }

    /// The zone a cylinder belongs to.
    pub fn zone_of_cyl(&self, cyl: u32) -> &ZoneInfo {
        let idx = self.zone_first_cyl.partition_point(|&c| c <= cyl) - 1;
        &self.zones[idx]
    }

    /// Access a track by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn track(&self, id: u32) -> &Track {
        &self.tracks[id as usize]
    }

    /// Iterates over all tracks in LBN order.
    pub fn iter_tracks(&self) -> impl Iterator<Item = (TrackId, &Track)> {
        self.tracks
            .iter()
            .enumerate()
            .map(|(i, t)| (TrackId(i as u32), t))
    }

    /// The track holding `lbn`.
    ///
    /// Because a track can hold zero LBNs (spare tracks), the returned track
    /// is the unique one whose `[first_lbn, end_lbn)` range contains `lbn`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::LbnOutOfRange`] if `lbn` is beyond capacity.
    pub fn track_of_lbn(&self, lbn: u64) -> Result<TrackId, GeometryError> {
        if lbn >= self.capacity {
            return Err(GeometryError::LbnOutOfRange(lbn));
        }
        let fl = &self.hot.first_lbns;
        // Fast path: the track found last time, or its successor. Track
        // LBN ranges are contiguous (`first_lbns[t + 1]` is track `t`'s
        // end), so a containment hit is always the track the search below
        // would find; an empty (spare) track's range is empty and can
        // never hit.
        let hint = self.last_track.load(Ordering::Relaxed) as usize;
        if fl[hint] <= lbn {
            if lbn < fl[hint + 1] {
                return Ok(TrackId(hint as u32));
            }
            if hint + 2 < fl.len() && fl[hint + 1] <= lbn && lbn < fl[hint + 2] {
                self.last_track.store((hint + 1) as u32, Ordering::Relaxed);
                return Ok(TrackId((hint + 1) as u32));
            }
        }
        // Zone lookup over the flat per-zone table (a handful of entries):
        // the last zone whose first LBN is ≤ lbn holds it.
        let zi = last_le(&self.hot.zone_first_lbn, lbn);
        let idx = if self.hot.zone_uniform[zi] {
            // Every track in the zone maps exactly spt LBNs: one divide.
            self.hot.zone_first_track[zi] as usize
                + ((lbn - self.hot.zone_first_lbn[zi]) / self.hot.zone_spt[zi]) as usize
        } else {
            // The last track whose first LBN is ≤ lbn. Empty (spare)
            // tracks share their first LBN with their successor and so are
            // never the last such track for an in-range lbn.
            last_le(fl, lbn)
        };
        debug_assert!(idx < self.tracks.len());
        debug_assert!(
            self.tracks[idx].first_lbn <= lbn && lbn < self.tracks[idx].end_lbn(),
            "lbn {lbn} not on resolved track {idx}"
        );
        self.last_track.store(idx as u32, Ordering::Relaxed);
        Ok(TrackId(idx as u32))
    }

    /// The `[first_lbn, end_lbn)` range of the track holding `lbn` — the
    /// "track boundaries" the whole paper is about.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::LbnOutOfRange`] if `lbn` is beyond capacity.
    pub fn track_bounds(&self, lbn: u64) -> Result<(u64, u64), GeometryError> {
        let t = &self.tracks[self.track_of_lbn(lbn)?.0 as usize];
        Ok((t.first_lbn, t.end_lbn()))
    }

    /// Translates an LBN to its physical location, following remaps.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::LbnOutOfRange`] if `lbn` is beyond capacity.
    pub fn lbn_to_pba(&self, lbn: u64) -> Result<Pba, GeometryError> {
        if let Some(&pba) = self.remaps.get(&lbn) {
            return Ok(pba);
        }
        let tid = self.track_of_lbn(lbn)?;
        let t = &self.tracks[tid.0 as usize];
        let logical = (lbn - t.first_lbn) as u32;
        Ok(Pba::new(t.cyl, t.head, self.slot_of_logical(t, logical)))
    }

    /// The physical slot holding the `logical`-th LBN of a track.
    pub(crate) fn slot_of_logical(&self, t: &Track, logical: u32) -> u32 {
        match self.spec.policy {
            DefectPolicy::Slip => {
                // LBNs occupy the first `count` non-defective slots.
                let mut slot = logical;
                for &d in &t.defect_slots {
                    if d <= slot {
                        slot += 1;
                    } else {
                        break;
                    }
                }
                slot
            }
            // Under remapping the nominal mapping ignores defects (the
            // affected LBNs were redirected via `remaps`).
            DefectPolicy::Remap => logical,
        }
    }

    /// Translates a physical location back to the LBN stored there, if any.
    ///
    /// Returns `None` for defective slots, spare slots not holding remapped
    /// data, and reserved tracks. Out-of-range locations also yield `None`.
    pub fn pba_to_lbn(&self, pba: Pba) -> Option<u64> {
        if pba.head >= self.spec.surfaces || pba.cyl >= self.cylinders() {
            return None;
        }
        let tid = pba.cyl * self.spec.surfaces + pba.head;
        let t = &self.tracks[tid as usize];
        if pba.slot >= t.spt {
            return None;
        }
        if let Ok(i) = t.remap_targets.binary_search_by_key(&pba.slot, |&(s, _)| s) {
            return Some(t.remap_targets[i].1);
        }
        if t.is_defective_slot(pba.slot) {
            return None;
        }
        let logical = match self.spec.policy {
            DefectPolicy::Slip => {
                let before = t.defect_slots.partition_point(|&d| d < pba.slot) as u32;
                pba.slot - before
            }
            DefectPolicy::Remap => pba.slot,
        };
        if logical < t.count {
            Some(t.first_lbn + u64::from(logical))
        } else {
            None
        }
    }

    /// The track id for a (cylinder, head) pair.
    pub fn track_at(&self, cyl: u32, head: u32) -> Option<TrackId> {
        if cyl < self.cylinders() && head < self.spec.surfaces {
            Some(TrackId(cyl * self.spec.surfaces + head))
        } else {
            None
        }
    }

    /// Appends the physical slots, in slot order, of the LBN range
    /// `[start, start+len)` restricted to a single track. Used by the drive
    /// model's media scheduler when a run straddles slipped defects (the
    /// contiguous common case needs no materialized list at all).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the range is not fully on the given track or any LBN
    /// in it is remapped; the drive model handles remapped LBNs separately.
    pub(crate) fn slots_for_range_into(
        &self,
        tid: TrackId,
        start: u64,
        len: u32,
        out: &mut Vec<u32>,
    ) {
        let t = &self.tracks[tid.0 as usize];
        debug_assert!(start >= t.first_lbn && start + u64::from(len) <= t.end_lbn());
        let first_logical = (start - t.first_lbn) as u32;
        out.extend((first_logical..first_logical + len).map(|l| self.slot_of_logical(t, l)));
    }

    /// Whether an LBN has been remapped (factory or grown).
    pub fn is_remapped(&self, lbn: u64) -> bool {
        !self.remaps.is_empty() && self.remaps.contains_key(&lbn)
    }

    /// The smallest remapped LBN in `[start, end)`, if any — an O(log n)
    /// range probe used by the drive model when splitting requests into
    /// same-track runs.
    pub fn first_remap_in(&self, start: u64, end: u64) -> Option<u64> {
        if self.remaps.is_empty() {
            return None;
        }
        self.remaps.range(start..end).next().map(|(&l, _)| l)
    }

    /// All remapped LBNs and their spare locations.
    pub fn remapped_lbns(&self) -> impl Iterator<Item = (u64, Pba)> + '_ {
        self.remaps.iter().map(|(&l, &p)| (l, p))
    }

    /// The factory defect list, as a sorted vector (the simulator's
    /// READ DEFECT LIST ground truth).
    pub fn defect_list(&self) -> Vec<DefectLocation> {
        let mut v = self.spec.defects.clone();
        v.sort();
        v.dedup();
        v
    }

    /// Marks the sector currently holding `lbn` as a grown defect and remaps
    /// the LBN to a free spare slot, leaving all other mappings untouched
    /// (this is how drives handle defects that appear in the field, §3.1).
    ///
    /// # Errors
    ///
    /// Returns an error if `lbn` is out of range or no spare slot is free.
    pub fn add_grown_defect(&mut self, lbn: u64) -> Result<Pba, GeometryError> {
        let old = self.lbn_to_pba(lbn)?;
        let spare = self
            .find_free_spare_slot()
            .ok_or(GeometryError::NoSpareForGrownDefect(lbn))?;
        // Mark the old physical slot defective.
        let tid = (old.cyl * self.spec.surfaces + old.head) as usize;
        let t = &mut self.tracks[tid];
        if let Err(pos) = t.grown_slots.binary_search(&old.slot) {
            t.grown_slots.insert(pos, old.slot);
        }
        // Record the redirect on the spare's track for pba_to_lbn.
        let stid = (spare.cyl * self.spec.surfaces + spare.head) as usize;
        let st = &mut self.tracks[stid];
        let pos = st.remap_targets.partition_point(|&(s, _)| s < spare.slot);
        st.remap_targets.insert(pos, (spare.slot, lbn));
        self.remaps.insert(lbn, spare);
        Ok(spare)
    }

    /// Finds a spare slot holding no LBN and no remap target, scanning from
    /// the end of the disk (where every spare scheme leaves room).
    fn find_free_spare_slot(&self) -> Option<Pba> {
        for t in self.tracks.iter().rev() {
            // Candidate slots: those beyond the mapped region.
            let mapped = match self.spec.policy {
                DefectPolicy::Slip => {
                    // The mapped region ends at the slot of the last logical
                    // sector (or 0 for empty tracks).
                    if t.count == 0 {
                        0
                    } else {
                        self.slot_of_logical(t, t.count - 1) + 1
                    }
                }
                DefectPolicy::Remap => t.count,
            };
            for slot in (mapped..t.spt).rev() {
                let taken = t
                    .remap_targets
                    .binary_search_by_key(&slot, |&(s, _)| s)
                    .is_ok();
                if !taken && !t.is_defective_slot(slot) {
                    return Some(Pba::new(t.cyl, t.head, slot));
                }
            }
        }
        None
    }
}

fn build_geometry(spec: GeometrySpec) -> Result<DiskGeometry, GeometryError> {
    if spec.surfaces == 0 {
        return Err(GeometryError::NoSurfaces);
    }
    if spec.zones.is_empty() || spec.zones.iter().any(|z| z.cylinders == 0) {
        return Err(GeometryError::NoZones);
    }
    if spec.zones.iter().any(|z| z.spt == 0) {
        return Err(GeometryError::EmptyTrack);
    }

    let surfaces = spec.surfaces;
    let total_cyls: u32 = spec.zones.iter().map(|z| z.cylinders).sum();
    let total_tracks = total_cyls * surfaces;

    // Validate defects and bin them per track.
    let mut defects_by_track: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    {
        let mut zone_starts = Vec::with_capacity(spec.zones.len());
        let mut acc = 0;
        for z in &spec.zones {
            zone_starts.push(acc);
            acc += z.cylinders;
        }
        for d in &spec.defects {
            if d.cyl >= total_cyls || d.head >= surfaces {
                return Err(GeometryError::DefectOutOfRange(*d));
            }
            let zi = zone_starts.partition_point(|&c| c <= d.cyl) - 1;
            if d.slot >= spec.zones[zi].spt {
                return Err(GeometryError::DefectOutOfRange(*d));
            }
            let tid = d.cyl * surfaces + d.head;
            defects_by_track.entry(tid).or_default().push(d.slot);
        }
        for v in defects_by_track.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
    }

    // Per-track static metadata pass.
    struct Meta {
        cyl: u32,
        head: u32,
        zone: u32,
        spt: u32,
        reserved: u32,
        angle0: f64,
    }
    let mut metas: Vec<Meta> = Vec::with_capacity(total_tracks as usize);
    {
        let mut angle: f64 = 0.0;
        let mut cyl = 0u32;
        for (zi, z) in spec.zones.iter().enumerate() {
            let zone_last_cyl = cyl + z.cylinders - 1;
            for zc in 0..z.cylinders {
                for head in 0..surfaces {
                    let track_in_zone = zc * surfaces + head;
                    let tracks_in_zone = z.cylinders * surfaces;
                    let tracks_from_zone_end = tracks_in_zone - 1 - track_in_zone;
                    let global_tid = cyl * surfaces + head;
                    let tracks_from_disk_end = total_tracks - 1 - global_tid;
                    let reserved = spec.spare.reserved_slots_on_track(
                        head == surfaces - 1,
                        tracks_from_zone_end,
                        tracks_from_disk_end,
                        z.spt,
                    );
                    if !(cyl == 0 && head == 0) {
                        // Advance skew: head switch within a cylinder, or
                        // cylinder switch when head wraps to 0.
                        let skew_slots = if head == 0 { z.cyl_skew } else { z.track_skew };
                        angle = (angle + f64::from(skew_slots) / f64::from(z.spt)).fract();
                    }
                    metas.push(Meta {
                        cyl,
                        head,
                        zone: zi as u32,
                        spt: z.spt,
                        reserved,
                        angle0: angle,
                    });
                }
                cyl += 1;
            }
            let _ = zone_last_cyl;
        }
    }

    // Group tracks into slip domains and assign LBNs.
    let domain = spec.spare.slip_domain();
    let domain_len = |first_track: usize| -> usize {
        match domain {
            SlipDomain::Track => 1,
            SlipDomain::Cylinder => surfaces as usize,
            SlipDomain::Zone => {
                let zi = metas[first_track].zone as usize;
                (spec.zones[zi].cylinders * surfaces) as usize
            }
            SlipDomain::Disk => total_tracks as usize,
        }
    };

    // One slot-fraction table per zone, shared by all its tracks.
    let zone_fracs: Vec<Arc<[f64]>> = spec
        .zones
        .iter()
        .map(|z| {
            (0..z.spt)
                .map(|s| f64::from(s) / f64::from(z.spt))
                .collect()
        })
        .collect();

    let mut tracks: Vec<Track> = Vec::with_capacity(total_tracks as usize);
    let mut next_lbn: u64 = 0;
    let mut remaps: BTreeMap<u64, Pba> = BTreeMap::new();

    let mut i = 0usize;
    while i < total_tracks as usize {
        let dlen = domain_len(i);
        let dtracks = i..i + dlen;
        let capacity: u64 = dtracks
            .clone()
            .map(|t| u64::from(metas[t].spt - metas[t].reserved.min(metas[t].spt)))
            .sum();

        match spec.policy {
            DefectPolicy::Slip => {
                let mut remaining = capacity;
                for t in dtracks.clone() {
                    let m = &metas[t];
                    let defs = defects_by_track
                        .get(&(t as u32))
                        .cloned()
                        .unwrap_or_default();
                    let avail = u64::from(m.spt) - defs.len() as u64;
                    let take = remaining.min(avail) as u32;
                    remaining -= u64::from(take);
                    tracks.push(Track {
                        first_lbn: next_lbn,
                        count: take,
                        cyl: m.cyl,
                        head: m.head,
                        zone: m.zone,
                        spt: m.spt,
                        angle0: m.angle0,
                        inv_spt: 1.0 / f64::from(m.spt),
                        slot_frac: zone_fracs[m.zone as usize].clone(),
                        defect_slots: defs,
                        grown_slots: Vec::new(),
                        remap_targets: Vec::new(),
                    });
                    next_lbn += u64::from(take);
                }
                if remaining > 0 {
                    return Err(GeometryError::InsufficientSpare {
                        domain_first_track: i as u32,
                    });
                }
            }
            DefectPolicy::Remap => {
                // Nominal assignment ignores defects; collect (a) LBNs landing
                // on defective slots and (b) spare slots, then pair them up.
                let mut remaining = capacity;
                let mut victims: Vec<u64> = Vec::new();
                let mut spares: Vec<Pba> = Vec::new();
                let domain_first = tracks.len();
                for t in dtracks.clone() {
                    let m = &metas[t];
                    let defs = defects_by_track
                        .get(&(t as u32))
                        .cloned()
                        .unwrap_or_default();
                    let take = remaining.min(u64::from(m.spt)) as u32;
                    remaining -= u64::from(take);
                    for &d in &defs {
                        if d < take {
                            victims.push(next_lbn + u64::from(d));
                        }
                    }
                    for slot in take..m.spt {
                        if defs.binary_search(&slot).is_err() {
                            spares.push(Pba::new(m.cyl, m.head, slot));
                        }
                    }
                    tracks.push(Track {
                        first_lbn: next_lbn,
                        count: take,
                        cyl: m.cyl,
                        head: m.head,
                        zone: m.zone,
                        spt: m.spt,
                        angle0: m.angle0,
                        inv_spt: 1.0 / f64::from(m.spt),
                        slot_frac: zone_fracs[m.zone as usize].clone(),
                        defect_slots: defs,
                        grown_slots: Vec::new(),
                        remap_targets: Vec::new(),
                    });
                    next_lbn += u64::from(take);
                }
                if victims.len() > spares.len() {
                    return Err(GeometryError::InsufficientSpare {
                        domain_first_track: i as u32,
                    });
                }
                for (lbn, pba) in victims.into_iter().zip(spares) {
                    remaps.insert(lbn, pba);
                    let tid = (pba.cyl * surfaces + pba.head) as usize;
                    debug_assert!(tid >= domain_first && tid < tracks.len());
                    let tt = &mut tracks[tid];
                    let pos = tt.remap_targets.partition_point(|&(s, _)| s < pba.slot);
                    tt.remap_targets.insert(pos, (pba.slot, lbn));
                }
            }
        }
        i += dlen;
    }

    // Zone summary.
    let mut zones = Vec::with_capacity(spec.zones.len());
    let mut zone_first_cyl = Vec::with_capacity(spec.zones.len());
    {
        let mut cyl = 0u32;
        for (zi, z) in spec.zones.iter().enumerate() {
            let first_track = (cyl * surfaces) as usize;
            let last_track = ((cyl + z.cylinders) * surfaces) as usize - 1;
            let first_lbn = tracks[first_track].first_lbn;
            let end_lbn = tracks[last_track].end_lbn();
            zones.push(ZoneInfo {
                first_cyl: cyl,
                cylinders: z.cylinders,
                spt: z.spt,
                first_lbn,
                lbn_count: end_lbn - first_lbn,
            });
            zone_first_cyl.push(cyl);
            cyl += z.cylinders;
            let _ = zi;
        }
    }

    if next_lbn == 0 {
        return Err(GeometryError::ZeroCapacity);
    }
    let hot = HotTables::build(&tracks, &zones, next_lbn, surfaces);
    Ok(DiskGeometry {
        spec,
        tracks,
        zones,
        zone_first_cyl,
        capacity: next_lbn,
        remaps,
        hot,
        last_track: AtomicU32::new(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_spec() -> GeometrySpec {
        // The Figure 2(b) disk: 200 sectors/track, 2 surfaces, skew 20.
        GeometrySpec::pristine(
            2,
            vec![ZoneSpec {
                cylinders: 10,
                spt: 200,
                track_skew: 20,
                cyl_skew: 40,
            }],
        )
    }

    #[test]
    fn figure2_mapping_without_defects() {
        let g = simple_spec().build().unwrap();
        assert_eq!(g.capacity_lbns(), 10 * 2 * 200);
        assert_eq!(g.lbn_to_pba(0).unwrap(), Pba::new(0, 0, 0));
        assert_eq!(g.lbn_to_pba(199).unwrap(), Pba::new(0, 0, 199));
        assert_eq!(g.lbn_to_pba(200).unwrap(), Pba::new(0, 1, 0));
        assert_eq!(g.lbn_to_pba(400).unwrap(), Pba::new(1, 0, 0));
        assert_eq!(g.track_bounds(250).unwrap(), (200, 400));
    }

    #[test]
    fn figure2_slipped_defect_shifts_following_lbns() {
        // Defect between LBNs 580 and 581 in the paper's figure: with
        // per-track slipping on a disk with one spare slot per track.
        let mut spec = simple_spec();
        spec.spare = SpareScheme::SectorsPerTrack(1);
        // Track c1/h0 holds LBNs starting at 2*199*... with 199 per track:
        // tracks hold 199 LBNs each now.
        spec.defects = vec![DefectLocation::new(1, 0, 100)];
        let g = spec.build().unwrap();
        // Tracks hold 199 LBNs each; track 2 (c1/h0) starts at 398.
        assert_eq!(g.track_bounds(398).unwrap(), (398, 597));
        // LBN 398+99 = 497 sits at slot 99; the next LBN slips past slot 100.
        assert_eq!(g.lbn_to_pba(497).unwrap(), Pba::new(1, 0, 99));
        assert_eq!(g.lbn_to_pba(498).unwrap(), Pba::new(1, 0, 101));
        // Defective slot holds nothing.
        assert_eq!(g.pba_to_lbn(Pba::new(1, 0, 100)), None);
        // Round-trip everything.
        for lbn in 0..g.capacity_lbns() {
            let pba = g.lbn_to_pba(lbn).unwrap();
            assert_eq!(g.pba_to_lbn(pba), Some(lbn), "lbn {lbn}");
        }
    }

    #[test]
    fn remap_policy_keeps_nominal_mapping() {
        let mut spec = simple_spec();
        spec.spare = SpareScheme::SectorsPerTrack(2);
        spec.policy = DefectPolicy::Remap;
        spec.defects = vec![DefectLocation::new(0, 0, 5)];
        let g = spec.build().unwrap();
        // Tracks hold 198 LBNs. LBN 5 would sit on the defective slot; it is
        // remapped to a spare slot on the same track.
        assert!(g.is_remapped(5));
        let pba = g.lbn_to_pba(5).unwrap();
        assert_eq!((pba.cyl, pba.head), (0, 0));
        assert!(
            pba.slot >= 198,
            "remap target should be a spare slot, got {}",
            pba.slot
        );
        // Neighbours unaffected.
        assert_eq!(g.lbn_to_pba(4).unwrap(), Pba::new(0, 0, 4));
        assert_eq!(g.lbn_to_pba(6).unwrap(), Pba::new(0, 0, 6));
        // Reverse lookup from the spare slot finds the remapped LBN.
        assert_eq!(g.pba_to_lbn(pba), Some(5));
        assert_eq!(g.pba_to_lbn(Pba::new(0, 0, 5)), None);
    }

    #[test]
    fn cylinder_spares_allow_slips_across_tracks() {
        let mut spec = simple_spec();
        spec.spare = SpareScheme::SectorsPerCylinder(4);
        spec.defects = vec![DefectLocation::new(0, 0, 0), DefectLocation::new(0, 0, 1)];
        let g = spec.build().unwrap();
        // Cylinder capacity = 2*200 - 4 = 396. Track c0/h0 has 2 defects so
        // holds 198; c0/h1 holds 198.
        let t0 = g.track(0);
        assert_eq!(t0.lbn_count(), 198);
        assert_eq!(g.lbn_to_pba(0).unwrap(), Pba::new(0, 0, 2));
        let t1 = g.track(1);
        assert_eq!(t1.first_lbn(), 198);
        assert_eq!(t1.lbn_count(), 198);
        assert_eq!(g.capacity_lbns(), 10 * 396);
        for lbn in 0..g.capacity_lbns() {
            let pba = g.lbn_to_pba(lbn).unwrap();
            assert_eq!(g.pba_to_lbn(pba), Some(lbn), "lbn {lbn}");
        }
    }

    #[test]
    fn zone_spare_tracks_absorb_slips() {
        let mut spec = simple_spec();
        spec.spare = SpareScheme::TracksPerZone(1);
        spec.defects = vec![DefectLocation::new(0, 0, 10)];
        let g = spec.build().unwrap();
        // Zone capacity = (20-1)*200 = 3800.
        assert_eq!(g.capacity_lbns(), 3800);
        // First track holds 199 (one defect), following tracks 200 each; the
        // tail spills one LBN into the reserved track.
        assert_eq!(g.track(0).lbn_count(), 199);
        assert_eq!(g.track(1).lbn_count(), 200);
        let last = g.track(g.num_tracks() - 1);
        assert_eq!(
            last.lbn_count(),
            1,
            "one slipped LBN lands on the spare track"
        );
        for lbn in 0..g.capacity_lbns() {
            let pba = g.lbn_to_pba(lbn).unwrap();
            assert_eq!(g.pba_to_lbn(pba), Some(lbn), "lbn {lbn}");
        }
    }

    #[test]
    fn insufficient_spare_is_an_error() {
        let mut spec = simple_spec();
        spec.spare = SpareScheme::SectorsPerTrack(1);
        spec.defects = vec![DefectLocation::new(0, 0, 0), DefectLocation::new(0, 0, 1)];
        assert_eq!(
            spec.build().unwrap_err(),
            GeometryError::InsufficientSpare {
                domain_first_track: 0
            }
        );
    }

    #[test]
    fn defect_out_of_range_is_an_error() {
        let mut spec = simple_spec();
        spec.defects = vec![DefectLocation::new(0, 0, 200)];
        assert!(matches!(
            spec.build().unwrap_err(),
            GeometryError::DefectOutOfRange(_)
        ));
    }

    #[test]
    fn degenerate_specs_are_errors() {
        assert_eq!(
            GeometrySpec::pristine(0, vec![ZoneSpec::unskewed(1, 10)])
                .build()
                .unwrap_err(),
            GeometryError::NoSurfaces
        );
        assert_eq!(
            GeometrySpec::pristine(1, vec![]).build().unwrap_err(),
            GeometryError::NoZones
        );
        assert_eq!(
            GeometrySpec::pristine(1, vec![ZoneSpec::unskewed(1, 0)])
                .build()
                .unwrap_err(),
            GeometryError::EmptyTrack
        );
    }

    #[test]
    fn multi_zone_boundaries_and_lookup() {
        let spec = GeometrySpec::pristine(
            2,
            vec![ZoneSpec::unskewed(5, 100), ZoneSpec::unskewed(5, 80)],
        );
        let g = spec.build().unwrap();
        assert_eq!(g.zones().len(), 2);
        assert_eq!(g.zones()[0].lbn_count, 5 * 2 * 100);
        assert_eq!(g.zones()[1].first_lbn, 1000);
        assert_eq!(g.zone_of_cyl(4).spt, 100);
        assert_eq!(g.zone_of_cyl(5).spt, 80);
        // Track sizes change at the zone boundary.
        assert_eq!(g.track_bounds(999).unwrap(), (900, 1000));
        assert_eq!(g.track_bounds(1000).unwrap(), (1000, 1080));
    }

    #[test]
    fn skew_advances_slot_zero_angle() {
        let g = simple_spec().build().unwrap();
        let t0 = g.track(0);
        let t1 = g.track(1); // head switch: +20 slots of 200
        let t2 = g.track(2); // cylinder switch: +40 slots
        assert!((t0.slot_angle(0) - 0.0).abs() < 1e-12);
        assert!((t1.slot_angle(0) - 0.1).abs() < 1e-12);
        assert!((t2.slot_angle(0) - 0.3).abs() < 1e-12);
        // Slot angles advance by 1/spt.
        assert!((t0.slot_angle(50) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn grown_defect_remaps_single_lbn() {
        let mut spec = simple_spec();
        spec.spare = SpareScheme::SectorsPerTrack(1);
        let mut g = spec.build().unwrap();
        let before_neighbors = (g.lbn_to_pba(41).unwrap(), g.lbn_to_pba(43).unwrap());
        let old = g.lbn_to_pba(42).unwrap();
        let spare = g.add_grown_defect(42).unwrap();
        assert_ne!(spare, old);
        assert_eq!(g.lbn_to_pba(42).unwrap(), spare);
        assert_eq!(g.pba_to_lbn(spare), Some(42));
        assert_eq!(g.pba_to_lbn(old), None);
        // Neighbours untouched: boundaries did not change.
        assert_eq!(g.lbn_to_pba(41).unwrap(), before_neighbors.0);
        assert_eq!(g.lbn_to_pba(43).unwrap(), before_neighbors.1);
    }

    #[test]
    fn grown_defect_without_spare_space_fails() {
        let mut g = simple_spec().build().unwrap();
        assert!(matches!(
            g.add_grown_defect(0).unwrap_err(),
            GeometryError::NoSpareForGrownDefect(0)
        ));
    }

    #[test]
    fn slots_for_range_is_contiguous_without_defects() {
        let g = simple_spec().build().unwrap();
        let mut slots = Vec::new();
        g.slots_for_range_into(TrackId(0), 10, 5, &mut slots);
        assert_eq!(slots, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn track_of_lbn_uniform_zone_fast_path_matches_search() {
        // Pristine multi-zone disk: every zone is uniform, so lookups take
        // the divide path. Cross-check against a linear scan.
        let spec = GeometrySpec::pristine(
            2,
            vec![ZoneSpec::unskewed(5, 100), ZoneSpec::unskewed(5, 80)],
        );
        let g = spec.build().unwrap();
        for lbn in 0..g.capacity_lbns() {
            let tid = g.track_of_lbn(lbn).unwrap();
            let t = g.track(tid.0);
            assert!(t.first_lbn() <= lbn && lbn < t.end_lbn(), "lbn {lbn}");
        }
    }

    #[test]
    fn track_of_lbn_defective_zone_uses_search_path() {
        // A defect makes one track shorter, so the zone is no longer
        // uniform and lookups must fall back to the binary search.
        let mut spec = simple_spec();
        spec.spare = SpareScheme::SectorsPerCylinder(4);
        spec.defects = vec![DefectLocation::new(3, 0, 7)];
        let g = spec.build().unwrap();
        for lbn in (0..g.capacity_lbns()).rev() {
            let tid = g.track_of_lbn(lbn).unwrap();
            let t = g.track(tid.0);
            assert!(t.first_lbn() <= lbn && lbn < t.end_lbn(), "lbn {lbn}");
        }
    }

    #[test]
    fn track_of_lbn_rejects_out_of_range() {
        let g = simple_spec().build().unwrap();
        let cap = g.capacity_lbns();
        assert!(matches!(
            g.track_of_lbn(cap),
            Err(GeometryError::LbnOutOfRange(_))
        ));
        assert!(g.track_of_lbn(cap - 1).is_ok());
    }

    #[test]
    fn track_hint_agrees_with_binary_search_on_any_pattern() {
        let g = simple_spec().build().unwrap();
        // Sequential sweep (exercises the hint/hint+1 fast path), then
        // jumps that invalidate the hint, then a backwards sweep.
        let cap = g.capacity_lbns();
        let pattern = (0..cap)
            .chain([cap - 1, 0, cap / 2, 1, cap / 2 + 1, cap - 2])
            .chain((0..cap).rev());
        for lbn in pattern {
            let t = g.track(g.track_of_lbn(lbn).unwrap().0);
            assert!(t.first_lbn() <= lbn && lbn < t.end_lbn(), "lbn {lbn}");
        }
    }

    #[test]
    fn track_hint_skips_empty_spare_tracks() {
        // Zone spare tracks produce zero-LBN tracks that the hinted fast
        // path must never return.
        let mut spec = simple_spec();
        spec.spare = SpareScheme::TracksAtEnd(2);
        let g = spec.build().unwrap();
        for _pass in 0..2 {
            for lbn in 0..g.capacity_lbns() {
                let t = g.track(g.track_of_lbn(lbn).unwrap().0);
                assert!(t.first_lbn() <= lbn && lbn < t.end_lbn(), "lbn {lbn}");
                assert!(t.lbn_count() > 0, "lbn {lbn} resolved to a spare track");
            }
        }
    }

    #[test]
    fn first_remap_in_finds_range_minimum() {
        let mut spec = simple_spec();
        spec.spare = SpareScheme::SectorsPerTrack(2);
        spec.policy = DefectPolicy::Remap;
        spec.defects = vec![DefectLocation::new(0, 0, 5), DefectLocation::new(0, 0, 90)];
        let g = spec.build().unwrap();
        assert_eq!(g.first_remap_in(0, 200), Some(5));
        assert_eq!(g.first_remap_in(6, 200), Some(90));
        assert_eq!(g.first_remap_in(6, 90), None);
        assert_eq!(g.first_remap_in(91, g.capacity_lbns()), None);
    }

    #[test]
    fn end_of_disk_spare_tracks_reserved() {
        let mut spec = simple_spec();
        spec.spare = SpareScheme::TracksAtEnd(2);
        let g = spec.build().unwrap();
        assert_eq!(g.capacity_lbns(), (20 - 2) * 200);
        assert_eq!(g.track(18).lbn_count(), 0);
        assert_eq!(g.track(19).lbn_count(), 0);
    }
}
