//! The drive model: command processing, positioning, media access
//! (zero-latency or ordinary), firmware cache, and bus delivery.
//!
//! [`Disk::service`] processes commands strictly in issue order (FCFS), but
//! the *mechanism* and the *bus* are separate resources: the next command's
//! seek overlaps the previous command's bus transfer whenever the host keeps
//! more than one command outstanding — exactly the effect the paper's
//! `tworeq` workload exposes (§5.2, Figure 5).

pub use crate::request::{Breakdown, Completion, Op, Request};

use crate::bus::BusConfig;
use crate::cache::{CacheConfig, SegmentCache};
use crate::fault::{CommandFault, FaultConfig, FaultStats, SenseKey};
use crate::geometry::{DiskGeometry, TrackId};
use crate::mech::{SeekCurve, Spindle};
use crate::rotation;
use crate::trace::{TraceEvent, Tracer};
use crate::{SimDur, SimTime};

/// Full configuration of a simulated drive.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Human-readable model name (e.g. "Quantum Atlas 10K II").
    pub name: String,
    /// The built layout.
    pub geometry: DiskGeometry,
    /// Spindle speed.
    pub spindle: Spindle,
    /// Calibrated seek curve.
    pub seek: SeekCurve,
    /// Time to switch read/write heads (track switch within a cylinder).
    pub head_switch: SimDur,
    /// Extra settle time charged before media writes.
    pub write_settle: SimDur,
    /// Firmware command processing overhead per request.
    pub cmd_overhead: SimDur,
    /// Whether the firmware supports zero-latency (access-on-arrival) media
    /// transfer.
    pub zero_latency: bool,
    /// Host interconnect.
    pub bus: BusConfig,
    /// Firmware read cache.
    pub cache: CacheConfig,
    /// Optional per-request event sink. Every drive built from this config
    /// — including drives built internally by higher layers — reports its
    /// mechanical events there. `None` (the presets' default) disables
    /// tracing; the disabled path costs one branch per request.
    pub tracer: Option<Tracer>,
    /// Fault injection (see [`crate::fault`]). The default injects
    /// nothing and leaves every timing untouched; when any mechanism is
    /// enabled, faults are drawn deterministically from
    /// [`FaultConfig::seed`] and the request sequence.
    pub fault: FaultConfig,
}

/// A simulated disk drive.
///
/// The drive owns mutable mechanical state (arm position, resource
/// availability) and a firmware cache; time only moves forward across
/// successive [`Disk::service`] calls.
#[derive(Debug, Clone)]
pub struct Disk {
    config: DiskConfig,
    cache: SegmentCache,
    cur_cyl: u32,
    cur_head: u32,
    actuator_free: SimTime,
    bus_free: SimTime,
    last_issue: SimTime,
    /// Reused per-sector availability buffer. The buffer never leaves the
    /// drive: [`Disk::run_visits`] borrows it in place (no take/give-back
    /// hand-off), so no early return can drop its capacity.
    avail_scratch: Vec<SimTime>,
    /// Reused visit plan (capacity persists across requests so the hot
    /// path stops allocating).
    visit_scratch: Vec<Visit>,
    /// Reused backing store for the rare non-contiguous visits' explicit
    /// slot lists (`Visit::slot_idx` points in here).
    slot_scratch: Vec<u32>,
    /// Next request sequence number for trace events (monotonic for the
    /// life of the drive, surviving [`Disk::reset`]).
    req_seq: u64,
    /// Cumulative mechanical occupancy (positioning + media) in simulated
    /// nanoseconds, surviving [`Disk::reset`] like `req_seq`. Cache hits
    /// contribute nothing; bus delivery overlapped with the next command's
    /// positioning is excluded, so windowed busy fractions stay ≤ 1.
    busy_ns: u64,
    /// Reused trace-event buffer: a request's events are batched here and
    /// delivered to the sink under one lock acquisition.
    trace_scratch: Vec<TraceEvent>,
    /// Running totals of injected faults (all zero with faults off).
    fault_stats: FaultStats,
    /// Optional per-write durability log for power-cut simulation
    /// ([`crate::crash`]). `None` (the default) costs one branch per
    /// write; when attached, timing stays bit-identical (the per-sector
    /// scan it forces matches the closed form exactly).
    crash_log: Option<Box<crate::crash::CrashLog>>,
    /// LBNs of recently recovered media errors, oldest first, capped at
    /// [`Disk::ERROR_LBN_CAP`]; drained by self-healing scrubbers via
    /// [`Disk::take_recent_error_lbns`]. Empty with faults off.
    recent_error_lbns: Vec<u64>,
}

/// One mechanical stop during a request: a track (or a remapped sector's
/// spare location) and the physical slots to transfer there, in LBN order.
///
/// The common contiguous case (no slipped defect inside the run) is fully
/// described by `first_slot..=last_slot`; only runs straddling defects
/// materialize an explicit slot list, indexed into the drive's shared
/// scratch so planning a request allocates nothing.
#[derive(Debug, Clone, Copy)]
struct Visit {
    cyl: u32,
    head: u32,
    track: TrackId,
    /// First LBN this visit transfers (the visit covers consecutive LBNs).
    lbn: u64,
    /// Number of sectors transferred.
    count: u32,
    /// Physical slot of the first LBN.
    first_slot: u32,
    /// Physical slot of the last LBN.
    last_slot: u32,
    /// `None` when the run is contiguous (`last_slot - first_slot + 1 ==
    /// count`); otherwise the start of the run's `count` slots in
    /// [`Disk::slot_scratch`].
    slot_idx: Option<u32>,
}

/// Per-request tracing context threaded through the service path: the
/// request's sequence number, whether tracing is on (checked before any
/// event is constructed), and the batch buffer events accumulate in.
struct Trace<'a> {
    rid: u64,
    on: bool,
    events: &'a mut Vec<TraceEvent>,
}

impl Disk {
    /// Creates a drive in its power-on state: heads at cylinder 0, cache
    /// empty, both resources free at time zero.
    pub fn new(config: DiskConfig) -> Self {
        let cache = SegmentCache::new(config.cache);
        Disk {
            config,
            cache,
            cur_cyl: 0,
            cur_head: 0,
            actuator_free: SimTime::ZERO,
            bus_free: SimTime::ZERO,
            last_issue: SimTime::ZERO,
            avail_scratch: Vec::new(),
            visit_scratch: Vec::new(),
            slot_scratch: Vec::new(),
            req_seq: 0,
            busy_ns: 0,
            trace_scratch: Vec::new(),
            fault_stats: FaultStats::default(),
            crash_log: None,
            recent_error_lbns: Vec::new(),
        }
    }

    /// Cap on the recovered-media-error LBN backlog kept for
    /// self-healing scrubbers.
    pub const ERROR_LBN_CAP: usize = 64;

    /// The drive's layout.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.config.geometry
    }

    /// Mutable access to the layout (for injecting grown defects in tests
    /// and experiments).
    pub fn geometry_mut(&mut self) -> &mut DiskGeometry {
        &mut self.config.geometry
    }

    /// The drive's configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.config
    }

    /// Total addressable LBNs — shorthand for
    /// `geometry().capacity_lbns()`, handy when a drive is one member
    /// handle among many in a multi-disk volume.
    pub fn capacity_lbns(&self) -> u64 {
        self.config.geometry.capacity_lbns()
    }

    /// The issue instant of the most recently issued command (`SimTime::ZERO`
    /// for a fresh drive). Commands must be issued at or after this instant;
    /// volume layers that fan one logical request into several member
    /// commands use it to clamp per-member issue times.
    pub fn last_issue(&self) -> SimTime {
        self.last_issue
    }

    /// Cumulative mechanical occupancy in simulated nanoseconds: the sum of
    /// `media_end − service_start` over every serviced command. Monotonic
    /// for the life of the drive (surviving [`Disk::reset`]); upper layers
    /// poll it to derive windowed per-member busy fractions.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// The spindle.
    pub fn spindle(&self) -> Spindle {
        self.config.spindle
    }

    /// The earliest instant at which all drive resources are idle.
    pub fn idle_at(&self) -> SimTime {
        self.actuator_free.max(self.bus_free)
    }

    /// Cache statistics: (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Totals of every fault injected so far (all zero when fault
    /// injection is off). Like the request sequence number, the totals
    /// survive [`Disk::reset`].
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Starts logging per-write per-sector durability for power-cut
    /// simulation (see [`crate::crash`]). Idempotent; timing stays
    /// bit-identical with the log attached. Like the request sequence
    /// number, the log survives [`Disk::reset`] (a power cycle does not
    /// rewrite history).
    pub fn enable_crash_log(&mut self) {
        if self.crash_log.is_none() {
            self.crash_log = Some(Box::default());
        }
    }

    /// The attached crash log, if any.
    pub fn crash_log(&self) -> Option<&crate::crash::CrashLog> {
        self.crash_log.as_deref()
    }

    /// Detaches and returns the crash log, disabling further logging.
    pub fn take_crash_log(&mut self) -> Option<crate::crash::CrashLog> {
        self.crash_log.take().map(|b| *b)
    }

    /// Attaches the sector contents of the most recently serviced write
    /// to the crash log (`payload` is `len * SECTOR_BYTES` bytes in LBN
    /// order). No-op when no crash log is attached, so issuing layers
    /// can call it unconditionally.
    ///
    /// # Panics
    ///
    /// With a log attached, panics if the last logged command already
    /// has a payload, no write was logged yet, or the length is wrong —
    /// see [`crate::crash::CrashLog::attach_payload`].
    pub fn note_write_payload(&mut self, payload: &[u8]) {
        if let Some(log) = self.crash_log.as_deref_mut() {
            log.attach_payload(payload.to_vec());
        }
    }

    /// Drains the backlog of LBNs whose media errors the firmware
    /// recovered by retrying (oldest first, capped at
    /// [`Disk::ERROR_LBN_CAP`]). Self-healing scrubbers map these to
    /// suspect tracks; always empty with fault injection off.
    pub fn take_recent_error_lbns(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.recent_error_lbns)
    }

    /// Attaches (or, with `None`, detaches) a trace sink on a built drive.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.config.tracer = tracer;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.config.tracer.as_ref()
    }

    /// Returns the drive to its power-on state (heads at cylinder 0, cache
    /// empty, clock rewound to zero).
    pub fn reset(&mut self) {
        self.cache = SegmentCache::new(self.config.cache);
        self.cur_cyl = 0;
        self.cur_head = 0;
        self.actuator_free = SimTime::ZERO;
        self.bus_free = SimTime::ZERO;
        self.last_issue = SimTime::ZERO;
    }

    /// Services one command issued at `issue`. Commands must be issued in
    /// non-decreasing time order; the drive processes them FCFS.
    ///
    /// # Panics
    ///
    /// Panics if the request extends past the disk capacity or if `issue`
    /// precedes a previously issued command.
    pub fn service(&mut self, req: Request, issue: SimTime) -> Completion {
        assert!(
            req.end() <= self.config.geometry.capacity_lbns(),
            "request [{}, {}) exceeds capacity {}",
            req.lbn,
            req.end(),
            self.config.geometry.capacity_lbns()
        );
        assert!(
            issue >= self.last_issue,
            "commands must be issued in time order"
        );
        self.service_faultable(req, issue, true)
            .expect("transient faults are recovered internally")
    }

    /// Services a batch of commands, appending one [`Completion`] per
    /// request to `out` in issue order.
    ///
    /// Equivalent to calling [`Disk::service`] in a loop — same FCFS
    /// semantics, same results — but the whole batch is validated up front
    /// and the completions land in a caller-owned buffer, amortizing
    /// per-request setup on trace-replay scale workloads.
    ///
    /// # Panics
    ///
    /// Panics if any request extends past the disk capacity or the issue
    /// times are not non-decreasing (including against previously issued
    /// commands).
    pub fn service_batch_into(&mut self, batch: &[(Request, SimTime)], out: &mut Vec<Completion>) {
        let cap = self.config.geometry.capacity_lbns();
        let mut last = self.last_issue;
        for (req, issue) in batch {
            assert!(
                req.end() <= cap,
                "request [{}, {}) exceeds capacity {cap}",
                req.lbn,
                req.end(),
            );
            assert!(*issue >= last, "commands must be issued in time order");
            last = *issue;
        }
        out.reserve(batch.len());
        for &(req, issue) in batch {
            let c = self
                .service_faultable(req, issue, true)
                .expect("transient faults are recovered internally");
            out.push(c);
        }
    }

    /// [`Disk::service_batch_into`], collecting into a fresh vector.
    pub fn service_batch(&mut self, batch: &[(Request, SimTime)]) -> Vec<Completion> {
        let mut out = Vec::with_capacity(batch.len());
        self.service_batch_into(batch, &mut out);
        out
    }

    /// Like [`Disk::service`], but surfaces failures the way a real drive
    /// does — as CHECK CONDITION results — instead of recovering them in
    /// firmware:
    ///
    /// * a request past the disk capacity fails with
    ///   [`SenseKey::IllegalRequest`] (where [`Disk::service`] panics);
    /// * an injected transient fault fails with
    ///   [`SenseKey::AbortedCommand`] after charging the command overhead
    ///   (where [`Disk::service`] silently retries). Re-issuing the command
    ///   draws a fresh fault decision.
    ///
    /// With fault injection off this behaves exactly like
    /// [`Disk::service`] for in-range requests.
    ///
    /// # Panics
    ///
    /// Panics if `issue` precedes a previously issued command.
    pub fn try_service(
        &mut self,
        req: Request,
        issue: SimTime,
    ) -> Result<Completion, CommandFault> {
        if req.end() > self.config.geometry.capacity_lbns() {
            return Err(CommandFault {
                sense: SenseKey::IllegalRequest,
                at: issue,
            });
        }
        assert!(
            issue >= self.last_issue,
            "commands must be issued in time order"
        );
        self.service_faultable(req, issue, false)
    }

    /// The common service path behind [`Disk::service`] (which recovers
    /// transient faults internally) and [`Disk::try_service`] (which
    /// surfaces them). Requests are pre-validated by the callers.
    fn service_faultable(
        &mut self,
        req: Request,
        issue: SimTime,
        recover: bool,
    ) -> Result<Completion, CommandFault> {
        self.last_issue = issue;
        let rid = self.req_seq;
        self.req_seq += 1;

        let tracing = self.config.tracer.is_some();
        let mut events = if tracing {
            std::mem::take(&mut self.trace_scratch)
        } else {
            Vec::new()
        };
        if tracing {
            events.push(TraceEvent::Issue {
                req: rid,
                t: issue.as_ns(),
                op: req.op,
                lbn: req.lbn,
                len: req.len,
            });
        }

        // Transient command failures: each failed attempt either costs a
        // firmware retry (recovered, charged to overhead) or aborts the
        // command back to the host.
        let mut overhead = self.config.cmd_overhead;
        let fault = self.config.fault;
        if fault.transient_per_million > 0 {
            if recover {
                let mut attempt = 0u64;
                while attempt < 8 && fault.transient(rid, attempt) {
                    self.fault_stats.transient_recovered += 1;
                    if tracing {
                        events.push(TraceEvent::Fault {
                            req: rid,
                            t: (issue + overhead).as_ns(),
                            dur: fault.transient_retry.as_ns(),
                            kind: "transient_retry".to_string(),
                            lbn: req.lbn,
                        });
                    }
                    overhead += fault.transient_retry;
                    attempt += 1;
                }
            } else if fault.transient(rid, 0) {
                self.fault_stats.transient_surfaced += 1;
                let at = issue + overhead;
                if tracing {
                    events.push(TraceEvent::Fault {
                        req: rid,
                        t: at.as_ns(),
                        dur: 0,
                        kind: "transient_abort".to_string(),
                        lbn: req.lbn,
                    });
                    if let Some(tracer) = &self.config.tracer {
                        tracer.record_all(&events);
                    }
                    events.clear();
                    self.trace_scratch = events;
                }
                return Err(CommandFault {
                    sense: SenseKey::AbortedCommand,
                    at,
                });
            }
        }

        let mut breakdown = Breakdown {
            overhead,
            ..Breakdown::default()
        };
        let cmd_ready = issue + overhead;

        let trc = Trace {
            rid,
            on: tracing,
            events: &mut events,
        };
        let completion = match req.op {
            Op::Read => self.service_read(req, issue, cmd_ready, breakdown, trc),
            Op::Write => {
                self.cache.invalidate(req.lbn, req.len);
                breakdown.write_settle = self.config.write_settle;
                self.service_write(req, issue, cmd_ready, breakdown, trc)
            }
        };
        self.busy_ns += completion.media_end.since(completion.service_start).as_ns();

        if tracing {
            let b = completion.breakdown;
            events.push(TraceEvent::Complete {
                req: rid,
                t: completion.completion.as_ns(),
                op: req.op,
                lbn: req.lbn,
                len: req.len,
                cache_hit: completion.cache_hit,
                queue: b.queue.as_ns(),
                overhead: b.overhead.as_ns(),
                seek: b.seek.as_ns(),
                head_switch: b.head_switch.as_ns(),
                rot_latency: b.rot_latency.as_ns(),
                media: b.media.as_ns(),
                bus: b.bus.as_ns(),
                write_settle: b.write_settle.as_ns(),
                response: completion.response_time().as_ns(),
            });
            if let Some(tracer) = &self.config.tracer {
                tracer.record_all(&events);
            }
            events.clear();
            self.trace_scratch = events;
        }
        Ok(completion)
    }

    fn service_read(
        &mut self,
        req: Request,
        issue: SimTime,
        cmd_ready: SimTime,
        mut breakdown: Breakdown,
        mut trc: Trace<'_>,
    ) -> Completion {
        if self.cache.lookup(req.lbn, req.len) {
            let bus_start = cmd_ready.max(self.bus_free);
            let end = bus_start + self.config.bus.transfer_time(req.bytes());
            self.bus_free = end;
            breakdown.bus = end - cmd_ready;
            if trc.on {
                trc.events.push(TraceEvent::CacheHit {
                    req: trc.rid,
                    t: cmd_ready.as_ns(),
                    lbn: req.lbn,
                    len: req.len,
                });
                if end > bus_start {
                    trc.events.push(TraceEvent::Bus {
                        req: trc.rid,
                        t: bus_start.as_ns(),
                        dur: (end - bus_start).as_ns(),
                        bytes: req.bytes(),
                    });
                }
            }
            return Completion {
                request: req,
                issue,
                service_start: cmd_ready,
                media_end: cmd_ready,
                completion: end,
                cache_hit: true,
                breakdown,
            };
        }

        self.plan_visits(req.lbn, req.len);
        let pos_start = cmd_ready.max(self.actuator_free);
        breakdown.queue = pos_start.since(cmd_ready);
        if trc.on && breakdown.queue > SimDur::ZERO {
            trc.events.push(TraceEvent::Queue {
                req: trc.rid,
                t: cmd_ready.as_ns(),
                dur: breakdown.queue.as_ns(),
            });
        }
        // Availability instants are only consumed by finite-bus delivery
        // below; skip collecting them otherwise (the zero-latency path
        // then takes the closed form instead of the per-sector scan).
        let want_avail = !self.config.bus.is_infinite();
        let media_end = self.run_visits(pos_start, None, want_avail, &mut breakdown, &mut trc);
        self.actuator_free = media_end;

        // Firmware read-ahead: the cache segment extends to the end of the
        // last track touched. The planned last visit already holds that
        // track unless the tail sector was remapped (the visit then sits on
        // the spare track); only that case re-resolves the logical track.
        let seg_end = if self.config.cache.readahead_to_track_end {
            let last = req.end() - 1;
            let planned = self
                .visit_scratch
                .last()
                .map(|v| self.config.geometry.track(v.track.0))
                .filter(|t| t.first_lbn() <= last && last < t.end_lbn());
            match planned {
                Some(t) => t.end_lbn(),
                None => self
                    .config
                    .geometry
                    .track_bounds(last)
                    .map(|(_, e)| e)
                    .unwrap_or(req.end()),
            }
        } else {
            req.end()
        };
        self.cache.insert(req.lbn, seg_end);
        if trc.on && self.config.cache.segments > 0 {
            trc.events.push(TraceEvent::CacheFill {
                req: trc.rid,
                t: media_end.as_ns(),
                start: req.lbn,
                end: seg_end,
            });
        }

        // Bus delivery.
        let completion = if self.config.bus.is_infinite() {
            media_end
        } else {
            let sector = self.config.bus.sector_time();
            if self.config.bus.out_of_order {
                self.avail_scratch.sort_unstable();
            }
            let mut prev_end = SimTime::ZERO;
            let mut first = true;
            for &a in &self.avail_scratch {
                let start = if first {
                    first = false;
                    a.max(self.bus_free)
                } else {
                    a.max(prev_end)
                };
                prev_end = start + sector;
            }
            prev_end
        };
        self.bus_free = self.bus_free.max(completion);
        breakdown.bus = completion.saturating_since(media_end);
        if trc.on && completion > media_end {
            trc.events.push(TraceEvent::Bus {
                req: trc.rid,
                t: media_end.as_ns(),
                dur: breakdown.bus.as_ns(),
                bytes: req.bytes(),
            });
        }

        Completion {
            request: req,
            issue,
            service_start: pos_start,
            media_end,
            completion,
            cache_hit: false,
            breakdown,
        }
    }

    fn service_write(
        &mut self,
        req: Request,
        issue: SimTime,
        cmd_ready: SimTime,
        mut breakdown: Breakdown,
        mut trc: Trace<'_>,
    ) -> Completion {
        // Host data moves into the drive buffer over the bus, overlapping the
        // seek (§5.2 "Write performance").
        let all_buffered = if self.config.bus.is_infinite() {
            cmd_ready
        } else {
            let bus_start = cmd_ready.max(self.bus_free);
            let end = bus_start + self.config.bus.transfer_time(req.bytes());
            self.bus_free = end;
            if trc.on && end > bus_start {
                trc.events.push(TraceEvent::Bus {
                    req: trc.rid,
                    t: bus_start.as_ns(),
                    dur: (end - bus_start).as_ns(),
                    bytes: req.bytes(),
                });
            }
            end
        };

        self.plan_visits(req.lbn, req.len);
        let pos_start = cmd_ready.max(self.actuator_free);
        breakdown.queue = pos_start.since(cmd_ready);
        if trc.on && breakdown.queue > SimDur::ZERO {
            trc.events.push(TraceEvent::Queue {
                req: trc.rid,
                t: cmd_ready.as_ns(),
                dur: breakdown.queue.as_ns(),
            });
        }
        // With a crash log attached the per-sector scan collects each
        // sector's media instant; the scan is bit-identical in timing to
        // the closed form it replaces (rotation_props proves this), so
        // logging never perturbs results.
        let want_avail = self.crash_log.is_some();
        let media_end = self.run_visits(
            pos_start,
            Some(all_buffered),
            want_avail,
            &mut breakdown,
            &mut trc,
        );
        self.actuator_free = media_end;
        if want_avail {
            debug_assert_eq!(self.avail_scratch.len() as u64, req.len);
            let durable = self.avail_scratch.clone();
            if let Some(log) = self.crash_log.as_deref_mut() {
                log.records.push(crate::crash::WriteRecord {
                    req: trc.rid,
                    lbn: req.lbn,
                    len: req.len,
                    issue,
                    durable,
                    payload: None,
                });
            }
        }

        Completion {
            request: req,
            issue,
            service_start: pos_start,
            media_end,
            completion: media_end,
            cache_hit: false,
            breakdown,
        }
    }

    /// Splits an LBN range into mechanical visits (maximal same-track runs,
    /// with remapped LBNs visiting their spare locations individually) into
    /// the drive's reusable visit scratch.
    fn plan_visits(&mut self, lbn: u64, len: u64) {
        let Disk {
            ref config,
            ref mut visit_scratch,
            ref mut slot_scratch,
            ..
        } = *self;
        let geom = &config.geometry;
        visit_scratch.clear();
        slot_scratch.clear();
        let mut cur = lbn;
        let end = lbn + len;
        while cur < end {
            if geom.is_remapped(cur) {
                let pba = geom.lbn_to_pba(cur).expect("validated range");
                visit_scratch.push(Visit {
                    cyl: pba.cyl,
                    head: pba.head,
                    track: geom.track_at(pba.cyl, pba.head).expect("valid pba"),
                    lbn: cur,
                    count: 1,
                    first_slot: pba.slot,
                    last_slot: pba.slot,
                    slot_idx: None,
                });
                cur += 1;
                continue;
            }
            let tid = geom.track_of_lbn(cur).expect("validated range");
            let t = geom.track(tid.0);
            let mut run_end = end.min(t.end_lbn());
            if let Some(l) = geom.first_remap_in(cur, run_end) {
                run_end = l;
            }
            let count = (run_end - cur) as u32;
            let first_logical = (cur - t.first_lbn()) as u32;
            let first_slot = geom.slot_of_logical(t, first_logical);
            let last_slot = geom.slot_of_logical(t, first_logical + count - 1);
            let slot_idx = if last_slot - first_slot + 1 == count {
                None
            } else {
                // Slipped defect(s) inside the run: materialize the list.
                let idx = slot_scratch.len() as u32;
                geom.slots_for_range_into(tid, cur, count, slot_scratch);
                Some(idx)
            };
            visit_scratch.push(Visit {
                cyl: t.cyl(),
                head: t.head(),
                track: tid,
                lbn: cur,
                count,
                first_slot,
                last_slot,
                slot_idx,
            });
            cur = run_end;
        }
    }

    /// Runs the mechanism over the planned visits ([`Disk::plan_visits`])
    /// starting at `start`. For writes, `data_ready` is when the last
    /// sector is buffered; media transfer for each visit cannot begin
    /// before it. Returns the media completion time and, when `want_avail`
    /// is set, leaves per-sector availability instants in LBN order in
    /// `self.avail_scratch` (borrowed in place — the buffer never leaves
    /// the drive, so its capacity survives any exit path).
    fn run_visits(
        &mut self,
        start: SimTime,
        data_ready: Option<SimTime>,
        want_avail: bool,
        breakdown: &mut Breakdown,
        trc: &mut Trace<'_>,
    ) -> SimTime {
        let Disk {
            ref mut config,
            ref mut avail_scratch,
            ref visit_scratch,
            ref slot_scratch,
            ref mut cur_cyl,
            ref mut cur_head,
            ref mut fault_stats,
            ref mut recent_error_lbns,
            ..
        } = *self;
        let geom = &config.geometry;
        let spindle = config.spindle;
        let fault = config.fault;
        let faults_on = fault.enabled();
        let mut media_errors = 0u64;
        // LBNs whose media error escalated to a grown defect; reallocated
        // after the mechanical pass (the remap affects later commands).
        let mut grown: Vec<u64> = Vec::new();
        let mut t = start;
        let avail = avail_scratch;
        avail.clear();

        let nvisits = visit_scratch.len();
        for (vi, v) in visit_scratch.iter().enumerate() {
            let avail_start = avail.len();
            // Positioning.
            let dist = v.cyl.abs_diff(*cur_cyl);
            if dist > 0 {
                let mut s = config.seek.seek_time(dist);
                if faults_on {
                    s = fault.jitter_seek(s, trc.rid, vi as u64);
                }
                if trc.on {
                    trc.events.push(TraceEvent::Seek {
                        req: trc.rid,
                        t: t.as_ns(),
                        dur: s.as_ns(),
                        from_cyl: *cur_cyl,
                        to_cyl: v.cyl,
                    });
                }
                breakdown.seek += s;
                t += s;
            } else if v.head != *cur_head {
                let mut hs = config.head_switch;
                if faults_on {
                    hs = fault.jitter_head_switch(hs, trc.rid, vi as u64);
                }
                if trc.on {
                    trc.events.push(TraceEvent::HeadSwitch {
                        req: trc.rid,
                        t: t.as_ns(),
                        dur: hs.as_ns(),
                    });
                }
                breakdown.head_switch += hs;
                t += hs;
            }
            *cur_cyl = v.cyl;
            *cur_head = v.head;

            if vi == 0 {
                if let Some(ready) = data_ready {
                    // Write settle (once per command), then wait for buffered
                    // data if the bus is still feeding the drive.
                    if trc.on && config.write_settle > SimDur::ZERO {
                        trc.events.push(TraceEvent::Settle {
                            req: trc.rid,
                            t: t.as_ns(),
                            dur: config.write_settle.as_ns(),
                        });
                    }
                    t += config.write_settle;
                    if ready > t {
                        if trc.on {
                            trc.events.push(TraceEvent::Bus {
                                req: trc.rid,
                                t: t.as_ns(),
                                dur: (ready - t).as_ns(),
                                bytes: 0,
                            });
                        }
                        breakdown.bus += ready - t;
                        t = ready;
                    }
                }
            }

            // Rotational jitter: spindle speed variation presents the
            // target sector up to a fraction of a revolution late.
            if faults_on {
                let extra = fault.rot_extra(spindle.revolution(), trc.rid, vi as u64);
                if extra > SimDur::ZERO {
                    breakdown.rot_latency += extra;
                    t += extra;
                }
            }

            // Media access on this track (angular distances per
            // [`rotation::slot_distance`]).
            let track = geom.track(v.track.0);
            let slot_frac = track.inv_spt();
            let arr_angle = spindle.angle_at(t);
            // The explicit slot list, when the run straddles slipped
            // defects; contiguous runs iterate `first_slot..=last_slot`.
            let slot_list = v
                .slot_idx
                .map(|i| &slot_scratch[i as usize..i as usize + v.count as usize]);

            // Access-on-arrival (zero-latency) can reorder sectors *within*
            // one mechanical visit, so it applies when the visit covers the
            // track's whole LBN range or is the request's last visit; a
            // partial *first* track accessed out of order would force the
            // mechanism to revisit it after serving the later tracks, which
            // real firmware does not do — those visits wait for their first
            // sector like an ordinary disk.
            let full_track = v.count == track.lbn_count();
            let zero_latency_visit = config.zero_latency && (full_track || vi == nvisits - 1);
            let (visit_end, rot, media) = if zero_latency_visit {
                let (min_d, max_d) = if slot_list.is_none() && !want_avail {
                    // Closed form: O(log spt), bit-identical to the scan.
                    rotation::window_closed(track, arr_angle, v.first_slot, v.count)
                } else {
                    // Per-sector path: the bus model consumes every
                    // sector's availability instant, or the run is
                    // non-contiguous.
                    let mut min_d = f64::INFINITY;
                    let mut max_d = f64::NEG_INFINITY;
                    let mut scan = |s: u32| {
                        let d = rotation::slot_distance(track, arr_angle, s);
                        min_d = min_d.min(d);
                        max_d = max_d.max(d);
                        if want_avail {
                            avail.push(t + spindle.sweep(d + slot_frac));
                        }
                    };
                    match slot_list {
                        Some(slots) => slots.iter().for_each(|&s| scan(s)),
                        None => (v.first_slot..=v.last_slot).for_each(&mut scan),
                    }
                    (min_d, max_d)
                };
                let end = t + spindle.sweep(max_d + slot_frac);
                (
                    end,
                    spindle.sweep(min_d),
                    spindle.sweep(max_d - min_d + slot_frac),
                )
            } else {
                let s0 = v.first_slot;
                let d0 = rotation::slot_distance(track, arr_angle, s0);
                if want_avail {
                    let mut push = |s: u32| {
                        avail.push(t + spindle.sweep(d0 + f64::from(s - s0 + 1) * slot_frac));
                    };
                    match slot_list {
                        Some(slots) => slots.iter().for_each(|&s| push(s)),
                        None => (v.first_slot..=v.last_slot).for_each(&mut push),
                    }
                }
                let span = v.last_slot - s0 + 1;
                let end = t + spindle.sweep(d0 + f64::from(span) * slot_frac);
                (
                    end,
                    spindle.sweep(d0),
                    spindle.sweep(f64::from(span) * slot_frac),
                )
            };
            if trc.on {
                if rot > SimDur::ZERO {
                    trc.events.push(TraceEvent::RotWait {
                        req: trc.rid,
                        t: t.as_ns(),
                        dur: rot.as_ns(),
                        track: v.track.0,
                    });
                }
                trc.events.push(TraceEvent::Media {
                    req: trc.rid,
                    t: (t + rot).as_ns(),
                    dur: media.as_ns(),
                    track: v.track.0,
                    sectors: u64::from(v.count),
                });
            }
            breakdown.rot_latency += rot;
            breakdown.media += media;
            t = visit_end;

            // Recovered media errors: the firmware re-reads the failing
            // sector one revolution later; the lost revolution is charged
            // as rotational latency and this visit's sectors reach the
            // host only after the re-read.
            if faults_on {
                let sectors = u64::from(v.count);
                if fault.media_error(trc.rid, vi as u64, sectors) {
                    let rev = spindle.revolution();
                    media_errors += 1;
                    let bad = v.lbn + fault.failing_sector(trc.rid, vi as u64, sectors);
                    if recent_error_lbns.len() < Self::ERROR_LBN_CAP {
                        recent_error_lbns.push(bad);
                    }
                    if trc.on {
                        trc.events.push(TraceEvent::Fault {
                            req: trc.rid,
                            t: t.as_ns(),
                            dur: rev.as_ns(),
                            kind: "media_retry".to_string(),
                            lbn: bad,
                        });
                    }
                    breakdown.rot_latency += rev;
                    if want_avail {
                        for a in &mut avail[avail_start..] {
                            *a += rev;
                        }
                    }
                    t += rev;
                    if fault.grows_defect(trc.rid, vi as u64) {
                        grown.push(bad);
                    }
                }
            }
        }
        // Reallocate grown defects now that the mechanical pass is over;
        // the new mapping applies from the next command on.
        fault_stats.media_errors += media_errors;
        for lbn in grown {
            let kind = if config.geometry.add_grown_defect(lbn).is_ok() {
                fault_stats.grown_defects += 1;
                "grown_defect"
            } else {
                fault_stats.grown_defects_unspared += 1;
                "grown_defect_unspared"
            };
            if trc.on {
                trc.events.push(TraceEvent::Fault {
                    req: trc.rid,
                    t: t.as_ns(),
                    dur: 0,
                    kind: kind.to_string(),
                    lbn,
                });
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{GeometrySpec, ZoneSpec};
    use crate::SECTOR_BYTES;

    /// A small 10 000 RPM zero-latency test drive: 1 zone, 200-sector
    /// tracks, 2 surfaces, 50 cylinders.
    fn test_disk(zero_latency: bool, bus: BusConfig) -> Disk {
        let geometry = GeometrySpec::pristine(
            2,
            vec![ZoneSpec {
                cylinders: 50,
                spt: 200,
                track_skew: 30,
                cyl_skew: 40,
            }],
        )
        .build()
        .unwrap();
        Disk::new(DiskConfig {
            name: "test".to_string(),
            geometry,
            spindle: Spindle::new(10_000),
            seek: SeekCurve::calibrate(0.8, 2.0, 4.0, 50),
            head_switch: SimDur::from_millis_f64(0.8),
            write_settle: SimDur::from_millis_f64(1.0),
            cmd_overhead: SimDur::from_micros_f64(100.0),
            zero_latency,
            bus,
            cache: CacheConfig::default(),
            tracer: None,
            fault: FaultConfig::default(),
        })
    }

    #[test]
    fn full_track_zero_latency_read_takes_one_revolution() {
        let mut d = test_disk(true, BusConfig::infinite());
        // Seek away first so the read below starts with a known seek.
        let _ = d.service(Request::read(10 * 400, 1), SimTime::ZERO);
        let t = d.idle_at();
        let c = d.service(Request::read(0, 200), t);
        // rot latency ≤ one slot; media ≈ one revolution (6 ms).
        assert!(c.breakdown.rot_latency <= d.spindle().slot_time(200));
        let rev = d.spindle().revolution().as_millis_f64();
        assert!((c.breakdown.media.as_millis_f64() - rev).abs() < 0.05);
    }

    #[test]
    fn full_track_ordinary_read_waits_for_sector_zero() {
        let mut d = test_disk(false, BusConfig::infinite());
        let mut total_rot = 0.0;
        let n = 200;
        let mut t = SimTime::ZERO;
        // Simple LCG for think times, to decorrelate the rotational phase.
        let mut state = 0x9e37_79b9u64;
        for i in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Random-ish starting track; each read is one full track.
            let track = (i * 7) % 99;
            let c = d.service(Request::read(track * 200, 200), t);
            total_rot += c.breakdown.rot_latency.as_millis_f64();
            // Media transfer is exactly one revolution.
            assert!((c.breakdown.media.as_millis_f64() - 6.0).abs() < 0.05);
            t = c.completion + SimDur::from_ns(state % 6_000_000);
        }
        let avg_rot = total_rot / n as f64;
        // Expected ≈ half a revolution = 3 ms.
        assert!((avg_rot - 3.0).abs() < 0.4, "avg rot latency {avg_rot}");
    }

    #[test]
    fn cache_hit_is_bus_only() {
        let mut d = test_disk(true, BusConfig::in_order(160.0));
        let miss = d.service(Request::read(100, 32), SimTime::ZERO);
        assert!(!miss.cache_hit);
        let hit = d.service(Request::read(100, 32), miss.completion);
        assert!(hit.cache_hit);
        let expect = d.config().bus.transfer_time(32 * SECTOR_BYTES) + d.config().cmd_overhead;
        assert_eq!(hit.response_time(), expect);
    }

    #[test]
    fn readahead_caches_to_track_end() {
        let mut d = test_disk(true, BusConfig::infinite());
        let c = d.service(Request::read(0, 10), SimTime::ZERO);
        // The rest of track 0 is now cached.
        let c2 = d.service(Request::read(150, 50), c.completion);
        assert!(c2.cache_hit);
        // But track 1 is not.
        let c3 = d.service(Request::read(200, 10), c2.completion);
        assert!(!c3.cache_hit);
    }

    #[test]
    fn busy_ns_accumulates_mechanical_time_and_survives_reset() {
        let mut d = test_disk(true, BusConfig::infinite());
        assert_eq!(d.busy_ns(), 0);
        let c = d.service(Request::read(0, 100), SimTime::ZERO);
        let expect = c.media_end.since(c.service_start).as_ns();
        assert!(expect > 0);
        assert_eq!(d.busy_ns(), expect);
        // A cache hit does no mechanical work.
        let h = d.service(Request::read(0, 100), c.completion);
        assert!(h.cache_hit);
        assert_eq!(d.busy_ns(), expect);
        d.reset();
        assert_eq!(
            d.busy_ns(),
            expect,
            "occupancy is for the life of the drive"
        );
        let c2 = d.service(Request::read(5000, 100), SimTime::ZERO);
        assert_eq!(
            d.busy_ns(),
            expect + c2.media_end.since(c2.service_start).as_ns()
        );
    }

    #[test]
    fn writes_invalidate_cache() {
        let mut d = test_disk(true, BusConfig::infinite());
        let c = d.service(Request::read(0, 200), SimTime::ZERO);
        let w = d.service(Request::write(50, 10), c.completion);
        let r = d.service(Request::read(0, 200), w.completion);
        assert!(!r.cache_hit);
    }

    #[test]
    fn in_order_bus_delays_mid_track_arrival() {
        // With an in-order bus, a zero-latency full-track read that starts
        // mid-track cannot stream until LBN 0 of the request is read, so the
        // completion trails media_end by roughly the pre-arrival portion.
        let mut d = test_disk(true, BusConfig::in_order(160.0));
        d.cache.clear();
        let mut trailing = Vec::new();
        let mut t = SimTime::ZERO;
        for i in 0..100 {
            let track = (7 * i + 3) % 99;
            let c = d.service(Request::read(track * 200, 200), t);
            trailing.push(c.breakdown.bus.as_millis_f64());
            t = c.completion;
        }
        let avg = trailing.iter().sum::<f64>() / trailing.len() as f64;
        // 200 sectors * 3.2 µs = 0.64 ms full transfer; expected trailing
        // ≈ half of it on average (uniform arrival within the track).
        assert!(avg > 0.15 && avg < 0.6, "avg trailing bus {avg}");
    }

    #[test]
    fn out_of_order_bus_overlaps_transfer() {
        let mk = |ooo: bool| {
            let bus = if ooo {
                BusConfig::out_of_order(160.0)
            } else {
                BusConfig::in_order(160.0)
            };
            let mut d = test_disk(true, bus);
            let mut t = SimTime::ZERO;
            let mut sum = 0.0;
            for i in 0..50 {
                let track = (13 * i + 1) % 99;
                let c = d.service(Request::read(track * 200, 200), t);
                sum += c.response_time().as_millis_f64();
                t = c.completion + SimDur::from_millis_f64(0.1);
            }
            sum / 50.0
        };
        assert!(mk(true) < mk(false), "out-of-order bus should be faster");
    }

    #[test]
    fn queued_command_overlaps_seek_with_bus_transfer() {
        // tworeq-style: keep two commands outstanding; head time (spacing of
        // media completions) should be below onereq response time.
        let run = |queued: bool| {
            let mut d = test_disk(true, BusConfig::in_order(40.0)); // slow bus
            let reqs: Vec<Request> = (0..60)
                .map(|i| Request::read(((17 * i + 5) % 99) * 200, 200))
                .collect();
            let mut completions = Vec::new();
            let mut t = SimTime::ZERO;
            if queued {
                // Issue i+1 while i is in flight.
                let mut pending: Option<Completion> = None;
                for r in reqs {
                    let c = d.service(r, t);
                    if let Some(p) = pending.take() {
                        completions.push((p, c));
                    }
                    t = c.issue.max(c.media_end); // issue next while bus busy
                    pending = Some(c);
                }
            } else {
                let mut prev: Option<Completion> = None;
                for r in reqs {
                    let c = d.service(r, t);
                    if let Some(p) = prev.take() {
                        completions.push((p, c));
                    }
                    t = c.completion;
                    prev = Some(c);
                }
            }
            let n = completions.len() as f64;
            completions
                .iter()
                .map(|(p, c)| (c.completion - p.completion).as_millis_f64())
                .sum::<f64>()
                / n
        };
        let one = run(false);
        let two = run(true);
        assert!(two < one, "queued head time {two} should beat onereq {one}");
    }

    #[test]
    fn write_charges_settle_and_no_read_cache() {
        let mut d = test_disk(true, BusConfig::in_order(160.0));
        let w = d.service(Request::write(0, 200), SimTime::ZERO);
        assert!(!w.cache_hit);
        assert_eq!(w.breakdown.write_settle, SimDur::from_millis_f64(1.0));
        // Write completion = media end (no trailing bus transfer).
        assert_eq!(w.completion, w.media_end);
    }

    #[test]
    fn remapped_lbn_costs_an_excursion() {
        let mut d = test_disk(true, BusConfig::infinite());
        // Give the disk spare space so a grown defect can be remapped.
        {
            let mut spec = d.geometry().spec().clone();
            spec.spare = crate::defects::SpareScheme::SectorsPerCylinder(8);
            let geometry = spec.build().unwrap();
            d = Disk::new(DiskConfig {
                geometry,
                ..d.config().clone()
            });
        }
        // Baseline: read 10 sectors.
        let base = d
            .service(Request::read(0, 10), SimTime::ZERO)
            .response_time();
        d.reset();
        d.geometry_mut().add_grown_defect(5).unwrap();
        let with_remap = d
            .service(Request::read(0, 10), SimTime::ZERO)
            .response_time();
        assert!(
            with_remap > base + SimDur::from_millis_f64(1.0),
            "remap should cost a mechanical excursion: {with_remap} vs {base}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn out_of_range_request_panics() {
        let mut d = test_disk(true, BusConfig::infinite());
        let cap = d.geometry().capacity_lbns();
        let _ = d.service(Request::read(cap - 1, 2), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn reordered_issue_panics() {
        let mut d = test_disk(true, BusConfig::infinite());
        let _ = d.service(Request::read(0, 1), SimTime::from_ns(100));
        let _ = d.service(Request::read(0, 1), SimTime::from_ns(50));
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut d = test_disk(true, BusConfig::in_order(160.0));
        let c = d.service(Request::read(1000, 100), SimTime::ZERO);
        assert!(c.completion > SimTime::ZERO);
        d.reset();
        assert_eq!(d.idle_at(), SimTime::ZERO);
        let c2 = d.service(Request::read(1000, 100), SimTime::ZERO);
        assert!(!c2.cache_hit);
    }

    #[test]
    fn avail_scratch_capacity_survives_faulted_requests() {
        // Regression for the old take/give-back hand-off: an early return
        // (surfaced transient abort) or a fault-path detour must not drop
        // the reusable buffer's capacity.
        let mut d = test_disk(true, BusConfig::in_order(160.0));
        let c = d.service(Request::read(0, 400), SimTime::ZERO);
        let cap_before = d.avail_scratch.capacity();
        assert!(cap_before >= 400, "scratch not primed: {cap_before}");

        // Every command aborts transiently when surfaced via try_service.
        d.config.fault.transient_per_million = 1_000_000;
        let mut t = c.completion;
        for i in 0..4u64 {
            let r = d.try_service(Request::read(i * 37, 64), t);
            if let Ok(c) = r {
                t = c.completion;
            }
        }
        assert!(
            d.avail_scratch.capacity() >= cap_before,
            "capacity dropped across surfaced transient faults"
        );

        // Recovered media errors (the in-visit fault detour) on reads and
        // writes, including the internally retried transient path.
        d.config.fault.transient_per_million = 500_000;
        d.config.fault.media_per_million = 1_000_000;
        for i in 0..4u64 {
            let c = d.service(Request::read(i * 53, 128), t);
            t = c.completion;
            let c = d.service(Request::write(i * 53, 128), t);
            t = c.completion;
        }
        assert!(
            d.avail_scratch.capacity() >= cap_before,
            "capacity dropped across recovered faults"
        );
    }

    #[test]
    fn service_batch_matches_sequential_service() {
        let mk = || test_disk(true, BusConfig::in_order(160.0));
        let mut batch: Vec<(Request, SimTime)> = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut t = 0u64;
        for i in 0..200u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lbn = state % 19_000;
            let len = 1 + state % 300;
            let req = if i % 3 == 0 {
                Request::write(lbn, len)
            } else {
                Request::read(lbn, len)
            };
            t += state % 2_000_000;
            batch.push((req, SimTime::from_ns(t)));
        }
        let mut a = mk();
        let batched = a.service_batch(&batch);
        let mut b = mk();
        let looped: Vec<Completion> = batch.iter().map(|&(r, at)| b.service(r, at)).collect();
        assert_eq!(batched, looped);
    }

    #[test]
    fn sequential_reads_stream_without_rotational_loss() {
        // Back-to-back sequential full-track reads: with correct skew the
        // next track's data arrives right after the head switch, so per-track
        // time ≈ revolution + switch, far below revolution + half-rev
        // latency.
        let mut d = test_disk(true, BusConfig::infinite());
        let mut t = SimTime::ZERO;
        let mut prev_end = SimTime::ZERO;
        let mut spacings = Vec::new();
        for track in 0..20u64 {
            let c = d.service(Request::read(track * 200, 200), t);
            if track > 0 {
                spacings.push((c.completion - prev_end).as_millis_f64());
            }
            prev_end = c.completion;
            t = c.completion;
        }
        let avg = spacings.iter().sum::<f64>() / spacings.len() as f64;
        // Revolution 6 ms + switch 0.8/0.9 ms (+ skew slack); must be well
        // under 6 + 3 = 9 ms.
        assert!(avg < 8.0, "sequential streaming spacing {avg} too slow");
    }
}
