//! Request and completion types, with the per-component service-time
//! breakdown used to reproduce the paper's Figure 7.

use crate::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// The direction of a media access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Transfer from media to host.
    Read,
    /// Transfer from host to media.
    Write,
}

/// A block-level request: `len` sectors starting at `lbn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Direction.
    pub op: Op,
    /// First logical block number.
    pub lbn: u64,
    /// Number of sectors (must be positive).
    pub len: u64,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(op: Op, lbn: u64, len: u64) -> Self {
        assert!(len > 0, "request length must be positive");
        Request { op, lbn, len }
    }

    /// A read request.
    pub fn read(lbn: u64, len: u64) -> Self {
        Request::new(Op::Read, lbn, len)
    }

    /// A write request.
    pub fn write(lbn: u64, len: u64) -> Self {
        Request::new(Op::Write, lbn, len)
    }

    /// One past the last LBN touched.
    pub fn end(&self) -> u64 {
        self.lbn + self.len
    }

    /// Request size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len * crate::SECTOR_BYTES
    }
}

/// Where each nanosecond of a request's service went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Breakdown {
    /// Queueing: waiting for the mechanism to finish the previous command
    /// (zero for a request issued against an idle drive).
    pub queue: SimDur,
    /// Command processing overhead.
    pub overhead: SimDur,
    /// Arm movement (including any mid-request cylinder crossings).
    pub seek: SimDur,
    /// Head switches between surfaces.
    pub head_switch: SimDur,
    /// Rotational delay waiting for needed sectors.
    pub rot_latency: SimDur,
    /// Media transfer (sweeping sectors under the head).
    pub media: SimDur,
    /// Bus transfer time not overlapped with the above.
    pub bus: SimDur,
    /// Extra settle time charged to writes.
    pub write_settle: SimDur,
}

impl Breakdown {
    /// Total of all components, queueing included. Per request this equals
    /// [`Completion::response_time`] up to the nanosecond-quantization
    /// residual of per-phase rounding (typically well under 20 µs).
    pub fn total(&self) -> SimDur {
        self.queue
            + self.overhead
            + self.seek
            + self.head_switch
            + self.rot_latency
            + self.media
            + self.bus
            + self.write_settle
    }

    /// Positioning time: everything but media transfer, bus, and overhead.
    pub fn positioning(&self) -> SimDur {
        self.seek + self.head_switch + self.rot_latency + self.write_settle
    }
}

/// The result of servicing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The request serviced.
    pub request: Request,
    /// When the host issued the command.
    pub issue: SimTime,
    /// When the drive began working on it (after queueing and command
    /// processing).
    pub service_start: SimTime,
    /// When the mechanism (arm + media) finished with this request; the head
    /// is free for the next command from this instant.
    pub media_end: SimTime,
    /// When the host observed completion (all data across the bus).
    pub completion: SimTime,
    /// True if the read was serviced entirely from the firmware cache.
    pub cache_hit: bool,
    /// Component accounting.
    pub breakdown: Breakdown,
}

impl Completion {
    /// Response time as seen by the host driver.
    pub fn response_time(&self) -> SimDur {
        self.completion - self.issue
    }

    /// Disk efficiency for this request: the fraction of response time spent
    /// moving data to or from the media (the paper's Figure 1 metric,
    /// computed against a caller-supplied denominator such as head time).
    pub fn efficiency_against(&self, denominator: SimDur) -> f64 {
        if denominator == SimDur::ZERO {
            return 0.0;
        }
        self.breakdown.media.as_secs_f64() / denominator.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let r = Request::read(100, 8);
        assert_eq!(r.end(), 108);
        assert_eq!(r.bytes(), 8 * 512);
        assert_eq!(Request::write(0, 1).op, Op::Write);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_requests_rejected() {
        let _ = Request::read(0, 0);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = Breakdown {
            queue: SimDur::from_ns(8),
            overhead: SimDur::from_ns(1),
            seek: SimDur::from_ns(2),
            head_switch: SimDur::from_ns(3),
            rot_latency: SimDur::from_ns(4),
            media: SimDur::from_ns(5),
            bus: SimDur::from_ns(6),
            write_settle: SimDur::from_ns(7),
        };
        assert_eq!(b.total().as_ns(), 36);
        assert_eq!(b.positioning().as_ns(), 2 + 3 + 4 + 7);
    }

    #[test]
    fn efficiency_is_media_fraction() {
        let b = Breakdown {
            media: SimDur::from_millis_f64(6.0),
            ..Breakdown::default()
        };
        let c = Completion {
            request: Request::read(0, 1),
            issue: SimTime::ZERO,
            service_start: SimTime::ZERO,
            media_end: SimTime::from_ns(0),
            completion: SimTime::from_ns(12_000_000),
            cache_hit: false,
            breakdown: b,
        };
        assert!((c.efficiency_against(c.response_time()) - 0.5).abs() < 1e-12);
        assert_eq!(c.efficiency_against(SimDur::ZERO), 0.0);
    }
}
