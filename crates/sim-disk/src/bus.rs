//! The host interconnect model.
//!
//! Current SCSI and IDE/ATA interfaces deliver data to the host strictly in
//! ascending LBN order, which prevents a zero-latency read that began in the
//! middle of a track from streaming data immediately (§5.2 of the paper). The
//! bus model therefore tracks per-sector availability and enforces in-order
//! (or, as a what-if, out-of-order) delivery.

use crate::{SimDur, SECTOR_BYTES};
use serde::{Deserialize, Serialize};

/// Bus configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Peak transfer rate in bytes per second, or `None` for an infinitely
    /// fast bus (the paper's simulator configuration for Figure 8).
    pub bytes_per_sec: Option<f64>,
    /// Whether the interface may deliver sectors out of LBN order (the
    /// hypothetical MODIFY DATA POINTER mode of §5.2).
    pub out_of_order: bool,
}

impl BusConfig {
    /// A conventional in-order bus at `mb_per_sec` × 10⁶ bytes/s.
    pub fn in_order(mb_per_sec: f64) -> Self {
        assert!(mb_per_sec > 0.0, "bus rate must be positive");
        BusConfig {
            bytes_per_sec: Some(mb_per_sec * 1e6),
            out_of_order: false,
        }
    }

    /// An out-of-order bus at `mb_per_sec` × 10⁶ bytes/s.
    pub fn out_of_order(mb_per_sec: f64) -> Self {
        assert!(mb_per_sec > 0.0, "bus rate must be positive");
        BusConfig {
            bytes_per_sec: Some(mb_per_sec * 1e6),
            out_of_order: true,
        }
    }

    /// The infinitely fast bus ("zero bus transfer" in Figure 6).
    pub fn infinite() -> Self {
        BusConfig {
            bytes_per_sec: None,
            out_of_order: false,
        }
    }

    /// Time to move one sector across the bus.
    pub fn sector_time(&self) -> SimDur {
        match self.bytes_per_sec {
            Some(rate) => SimDur::from_secs_f64(SECTOR_BYTES as f64 / rate),
            None => SimDur::ZERO,
        }
    }

    /// Time to move `bytes` across the bus.
    pub fn transfer_time(&self, bytes: u64) -> SimDur {
        match self.bytes_per_sec {
            Some(rate) => SimDur::from_secs_f64(bytes as f64 / rate),
            None => SimDur::ZERO,
        }
    }

    /// Whether the bus is modeled as infinitely fast.
    pub fn is_infinite(&self) -> bool {
        self.bytes_per_sec.is_none()
    }
}

impl Default for BusConfig {
    /// Ultra160-class defaults: 160 MB/s, in order.
    fn default() -> Self {
        BusConfig::in_order(160.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_time_matches_rate() {
        let b = BusConfig::in_order(160.0);
        // 512 bytes at 160 MB/s = 3.2 µs.
        assert_eq!(b.sector_time().as_ns(), 3_200);
        assert_eq!(b.transfer_time(160_000_000).as_ns(), 1_000_000_000);
    }

    #[test]
    fn infinite_bus_is_free() {
        let b = BusConfig::infinite();
        assert!(b.is_infinite());
        assert_eq!(b.sector_time(), SimDur::ZERO);
        assert_eq!(b.transfer_time(u64::MAX / 2), SimDur::ZERO);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = BusConfig::in_order(0.0);
    }

    #[test]
    fn out_of_order_flag() {
        assert!(!BusConfig::in_order(80.0).out_of_order);
        assert!(BusConfig::out_of_order(80.0).out_of_order);
    }
}
