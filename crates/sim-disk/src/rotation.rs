//! Closed-form rotational-window arithmetic for zero-latency media access.
//!
//! A zero-latency (access-on-arrival) visit reads a track's sectors in
//! whatever rotational order they pass under the head, so its timing is
//! fully determined by two numbers: the *smallest* and the *largest*
//! angular distance from the head's arrival angle to any requested slot.
//! The engine used to find them by scanning every slot of the visit —
//! O(sectors per track) floating-point work per visit, the dominant cost
//! of trace-scale simulation. This module computes the same two numbers in
//! O(log spt) by locating the extreme slots with binary searches and
//! evaluating the *identical* floating-point expression only there, so the
//! results are bit-for-bit equal to the scan's.
//!
//! # Why the closed form is exact
//!
//! For a contiguous slot run `[first, first+count)` the per-slot distance
//! ([`slot_distance`]) is built from pieces that are each monotone
//! non-decreasing in the slot index `s`:
//!
//! 1. the raw angle `angle0 + slot_fracs[s]` (the table is non-decreasing
//!    and adding a constant is monotone under rounding);
//! 2. the conditional `- 1.0` inside [`Track::slot_angle`] fires on a
//!    suffix of the run (the raw angle is monotone), and on `[1, 2)` the
//!    subtraction is exact by Sterbenz's lemma, preserving monotonicity;
//! 3. subtracting the arrival angle is monotone, and the sign test `d <
//!    0.0` agrees exactly with `slot_angle(s) < arr_angle` (an IEEE
//!    subtraction is negative iff the real difference is);
//! 4. the `+ 1.0` for negative distances applies on a prefix of each
//!    monotone segment and is itself monotone;
//! 5. the EPS snap to zero fires on a suffix of each resulting segment
//!    (where the pre-snap distance reaches `1.0 - EPS`).
//!
//! The run therefore splits into at most four sub-segments on which the
//! distance is monotone non-decreasing, each with an all-zero snapped
//! suffix. Every boundary is found by binary search on the exact same
//! computed values, and the extremes can only sit at sub-segment endpoints
//! (or be exactly `0.0` in a snapped suffix).

use crate::geometry::Track;

/// Angular slack treated as "already under the head".
///
/// Nanosecond quantization of event times can leave the head an
/// infinitesimal hair past a slot it is in fact exactly aligned with
/// (back-to-back sequential requests); distances within `EPS` of a full
/// turn are therefore snapped to zero.
pub const EPS: f64 = 1e-5;

/// Angular distance (in revolutions, `[0, 1)`) the platter must turn after
/// arriving at `arr_angle` before `slot` passes under the head.
///
/// This is the exact expression the historical per-sector scan evaluated;
/// both [`window_scan`] and [`window_closed`] are defined in terms of it.
#[inline]
pub fn slot_distance(track: &Track, arr_angle: f64, slot: u32) -> f64 {
    let mut d = track.slot_angle(slot) - arr_angle;
    if d < 0.0 {
        d += 1.0;
    }
    if d >= 1.0 - EPS {
        d = 0.0;
    }
    d
}

/// Minimum and maximum [`slot_distance`] over the contiguous slot run
/// `[first, first + count)`, by scanning every slot.
///
/// This is the pre-closed-form algorithm, kept as the oracle the property
/// tests compare [`window_closed`] against (and as the code path the
/// engine still uses when it must touch every slot anyway to collect
/// per-sector availability instants for the bus model).
///
/// # Panics
///
/// Panics (debug) if the run is empty or extends past the track.
pub fn window_scan(track: &Track, arr_angle: f64, first: u32, count: u32) -> (f64, f64) {
    debug_assert!(count > 0);
    debug_assert!(first + count <= track.spt());
    let mut min_d = f64::INFINITY;
    let mut max_d = f64::NEG_INFINITY;
    for s in first..first + count {
        let d = slot_distance(track, arr_angle, s);
        min_d = min_d.min(d);
        max_d = max_d.max(d);
    }
    (min_d, max_d)
}

/// First `s` in `[lo, hi)` for which `pred(s)` holds, assuming `pred` is
/// monotone over the range (false for a prefix, true for the rest);
/// returns `hi` when it never holds.
///
/// `guess` seeds the search: every boundary below is "first slot where a
/// near-linear function of `s` crosses a threshold", so arithmetic
/// predicts the answer to within a slot or two and the loops only walk
/// off the floating-point rounding error. Correctness never depends on
/// the guess — the exits are decided purely by `pred`, and a bad guess
/// just walks further.
#[inline]
fn seeded_bound(lo: u32, hi: u32, guess: u32, pred: impl Fn(u32) -> bool) -> u32 {
    let mut s = guess.clamp(lo, hi);
    while s > lo && pred(s - 1) {
        s -= 1;
    }
    while s < hi && !pred(s) {
        s += 1;
    }
    s
}

/// Predicted slot index where `fracs[s]` (≈ `s / spt`) reaches `threshold`,
/// used only to seed [`seeded_bound`].
#[inline]
fn guess_slot(threshold: f64, spt: f64) -> u32 {
    let g = threshold * spt;
    if g <= 0.0 {
        0
    } else if g >= spt {
        // Also covers NaN-free saturation; spt fits in u32.
        spt as u32
    } else {
        g as u32
    }
}

/// Closed-form equivalent of [`window_scan`]: the same (min, max) pair,
/// bit-for-bit, in O(log spt) instead of O(count).
///
/// See the module documentation for why the candidate set below provably
/// contains both extremes.
///
/// # Panics
///
/// Panics (debug) if the run is empty or extends past the track.
pub fn window_closed(track: &Track, arr_angle: f64, first: u32, count: u32) -> (f64, f64) {
    debug_assert!(count > 0);
    debug_assert!(first + count <= track.spt());
    if count <= 2 {
        // Degenerate runs: the scan *is* the cheapest correct algorithm.
        return window_scan(track, arr_angle, first, count);
    }
    let angle0 = track.angle0();
    let fracs = track.slot_fracs();
    let spt_f = f64::from(track.spt());
    let end = first + count;

    // Split 1: where the raw angle crosses 1.0 and `slot_angle`'s
    // conditional subtraction kicks in. `slot_angle` is monotone
    // non-decreasing on each side.
    let wrap = seeded_bound(first, end, guess_slot(1.0 - angle0, spt_f), |s| {
        angle0 + fracs[s as usize] >= 1.0
    });

    // Fast path: the pre-snap distance is monotone non-decreasing on each
    // of the ≤4 pieces cut by `wrap` and by the `d < 0.0` crossover, so
    // its extremes over the run sit at piece endpoints. Evaluating just
    // those candidates also proves whether the EPS snap fires anywhere
    // (its trigger is a pre-snap maximum, which is itself a candidate);
    // when it does not — almost always — the candidate values *are* the
    // final distances and the four snap searches below are skipped.
    let mut cands = [0u32; 8];
    let mut n = 0;
    for &(seg_lo, seg_hi, off) in &[(first, wrap, 0.0), (wrap, end, 1.0)] {
        if seg_lo >= seg_hi {
            continue;
        }
        // Split 2: where the `d < 0.0` branch stops firing.
        let cross = seeded_bound(
            seg_lo,
            seg_hi,
            guess_slot(arr_angle - angle0 + off, spt_f),
            |s| track.slot_angle(s) >= arr_angle,
        );
        // Piece endpoints, clamped into the segment (duplicates are fine).
        cands[n] = seg_lo;
        cands[n + 1] = cross.max(seg_lo + 1) - 1;
        cands[n + 2] = cross.min(seg_hi - 1);
        cands[n + 3] = seg_hi - 1;
        n += 4;
    }
    // Independent pre-snap evaluations (no loop-carried chain), then a
    // pairwise reduction. The global pre-snap maximum is among the
    // candidates, so `max_d` alone decides whether any slot snaps.
    let pre = |s: u32| {
        let mut d = track.slot_angle(s) - arr_angle;
        if d < 0.0 {
            d += 1.0;
        }
        d
    };
    let (min_d, max_d);
    if n == 4 {
        let (d0, d1, d2, d3) = (pre(cands[0]), pre(cands[1]), pre(cands[2]), pre(cands[3]));
        min_d = d0.min(d1).min(d2.min(d3));
        max_d = d0.max(d1).max(d2.max(d3));
    } else {
        let (d0, d1, d2, d3) = (pre(cands[0]), pre(cands[1]), pre(cands[2]), pre(cands[3]));
        let (d4, d5, d6, d7) = (pre(cands[4]), pre(cands[5]), pre(cands[6]), pre(cands[7]));
        min_d = d0.min(d1).min(d2.min(d3)).min(d4.min(d5).min(d6.min(d7)));
        max_d = d0.max(d1).max(d2.max(d3)).max(d4.max(d5).max(d6.max(d7)));
    }
    if max_d < 1.0 - EPS {
        return (min_d, max_d);
    }
    window_snapped(track, arr_angle, first, end, wrap, angle0, spt_f)
}

/// Slow path of [`window_closed`] for runs where the EPS snap fires on at
/// least one slot: locates every snap boundary by search so snapped
/// suffixes contribute exactly `0.0`.
#[cold]
fn window_snapped(
    track: &Track,
    arr_angle: f64,
    first: u32,
    end: u32,
    wrap: u32,
    angle0: f64,
    spt_f: f64,
) -> (f64, f64) {
    // Pre-snap distance: monotone within each of the sub-segments below.
    let pre_snap = |s: u32| {
        let mut d = track.slot_angle(s) - arr_angle;
        if d < 0.0 {
            d += 1.0;
        }
        d
    };

    let mut min_d = f64::INFINITY;
    let mut max_d = f64::NEG_INFINITY;
    // `off` is the wrap correction already applied inside `slot_angle` on
    // each side of `wrap`; the seed guesses below add it back so every
    // threshold is expressed against the raw `fracs` table.
    for &(seg_lo, seg_hi, off) in &[(first, wrap, 0.0), (wrap, end, 1.0)] {
        if seg_lo >= seg_hi {
            continue;
        }
        // Split 2: where the `d < 0.0` branch stops firing. Both sides are
        // monotone non-decreasing in the pre-snap distance.
        let cross = seeded_bound(
            seg_lo,
            seg_hi,
            guess_slot(arr_angle - angle0 + off, spt_f),
            |s| track.slot_angle(s) >= arr_angle,
        );
        for &(lo, hi, thr) in &[
            (seg_lo, cross, arr_angle - EPS),
            (cross, seg_hi, 1.0 - EPS + arr_angle),
        ] {
            if lo >= hi {
                continue;
            }
            // Split 3: where the EPS snap starts; everything from there on
            // is exactly 0.0.
            let snap = seeded_bound(lo, hi, guess_slot(thr - angle0 + off, spt_f), |s| {
                pre_snap(s) >= 1.0 - EPS
            });
            if snap > lo {
                // Unsnapped monotone prefix: extremes at its endpoints,
                // evaluated through the very same expression the scan uses.
                let d_lo = slot_distance(track, arr_angle, lo);
                let d_hi = slot_distance(track, arr_angle, snap - 1);
                min_d = min_d.min(d_lo.min(d_hi));
                max_d = max_d.max(d_lo.max(d_hi));
            }
            if snap < hi {
                min_d = min_d.min(0.0);
                max_d = max_d.max(0.0);
            }
        }
    }
    (min_d, max_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{GeometrySpec, ZoneSpec};

    fn track_with(
        spt: u32,
        track_skew: u32,
        cyl_skew: u32,
        tid: u32,
    ) -> crate::geometry::DiskGeometry {
        let g = GeometrySpec::pristine(
            2,
            vec![ZoneSpec {
                cylinders: 4,
                spt,
                track_skew,
                cyl_skew,
            }],
        )
        .build()
        .unwrap();
        assert!(tid < g.num_tracks());
        g
    }

    fn check_all_runs(g: &crate::geometry::DiskGeometry, tid: u32, arr: f64) {
        let t = g.track(tid);
        let spt = t.spt();
        for first in [0, 1, spt / 3, spt - 1] {
            for count in [1, 2, spt / 2, spt - first] {
                if count == 0 || first + count > spt {
                    continue;
                }
                let scan = window_scan(t, arr, first, count);
                let closed = window_closed(t, arr, first, count);
                assert_eq!(
                    scan.0.to_bits(),
                    closed.0.to_bits(),
                    "min mismatch spt={spt} tid={tid} arr={arr} run=[{first},+{count})"
                );
                assert_eq!(
                    scan.1.to_bits(),
                    closed.1.to_bits(),
                    "max mismatch spt={spt} tid={tid} arr={arr} run=[{first},+{count})"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_scan_across_angles() {
        for spt in [1u32, 2, 3, 7, 200, 528] {
            let g = track_with(spt, spt / 7, spt / 5, 3);
            for tid in 0..4 {
                for arr in [
                    0.0,
                    0.25,
                    0.999,
                    0.999999,
                    1.0 - EPS,
                    1.0 - EPS / 2.0,
                    0.5 - 1e-12,
                    g.track(tid).slot_angle(spt / 2),
                ] {
                    check_all_runs(&g, tid, arr);
                }
            }
        }
    }

    #[test]
    fn closed_form_matches_scan_near_slot_boundaries() {
        // Arrival angles a hair before/at/after each slot angle exercise
        // every branch boundary, including the EPS snap.
        let g = track_with(64, 9, 17, 2);
        let t = g.track(2);
        for s in 0..64 {
            let a = t.slot_angle(s);
            for arr in [
                a,
                (a - 1e-9).rem_euclid(1.0),
                (a + 1e-9).rem_euclid(1.0),
                (a - EPS / 2.0).rem_euclid(1.0),
                (a + EPS / 2.0).rem_euclid(1.0),
            ] {
                check_all_runs(&g, 2, arr);
            }
        }
    }

    #[test]
    fn full_track_window_spans_whole_revolution() {
        let g = track_with(200, 20, 40, 1);
        let t = g.track(1);
        let (min_d, max_d) = window_closed(t, 0.123456, 0, 200);
        // Some slot is (nearly) under the head and some slot is (nearly) a
        // full turn away.
        assert!(min_d < 1.0 / 200.0);
        assert!(max_d > 1.0 - 2.0 / 200.0);
    }
}
