//! Opt-in, request-level mechanical event tracing.
//!
//! Every serviced request can emit a stream of typed [`TraceEvent`]s —
//! command issue, queueing, seek, head switch, settle, rotational wait,
//! media transfer, cache hit/fill, bus phases, and a closing per-request
//! summary — into a [`TraceSink`]. Tracing is **disabled by default** and
//! costs nothing when off: the drive checks a single `Option` per request
//! and a boolean per phase; no events are constructed and no locks are
//! taken.
//!
//! The JSONL encoding produced by [`TraceEvent::to_json`] (one flat JSON
//! object per line, decoded by [`TraceEvent::parse_json`]) is the
//! **documented contract** for external tooling — the `trace_report`
//! binary consumes it, and future fault-injection or file-system-layer
//! work is expected to extend the event set rather than replace it. All
//! times are absolute simulated nanoseconds since the run's epoch
//! ([`crate::SimTime::as_ns`]); all durations are nanoseconds; `lbn`/`len` are
//! 512-byte sectors.
//!
//! # Attaching a sink
//!
//! Sinks attach either to a built drive ([`crate::Disk::set_tracer`]) or
//! to its [`crate::disk::DiskConfig::tracer`] field, in which case every
//! drive built from that config — including drives built deep inside the
//! file-system, video-server, or LFS layers — inherits the sink:
//!
//! ```
//! use std::sync::{Arc, Mutex};
//! use sim_disk::trace::{MemorySink, TraceEvent, Tracer};
//! use sim_disk::disk::{Disk, Request};
//! use sim_disk::{models, SimTime};
//!
//! let sink = Arc::new(Mutex::new(MemorySink::new()));
//! let mut cfg = models::small_test_disk();
//! cfg.tracer = Some(Tracer::new(sink.clone()));
//! let mut disk = Disk::new(cfg);
//! disk.service(Request::read(0, 8), SimTime::ZERO);
//! let events = sink.lock().unwrap().take_events();
//! assert!(matches!(events.first(), Some(TraceEvent::Issue { .. })));
//! assert!(matches!(events.last(), Some(TraceEvent::Complete { .. })));
//! ```

use crate::request::Op;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One typed event in a request's service timeline.
///
/// `req` is the drive-assigned request sequence number (monotonic per
/// drive, starting at 0); `t` is the instant the phase *starts*, in
/// nanoseconds; `dur` is the phase length in nanoseconds. A phase event is
/// emitted only when the phase actually occurs (a zero-distance seek or an
/// unqueued request emits nothing).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The host issued a command (entry into the drive's FCFS queue).
    Issue {
        /// Request sequence number.
        req: u64,
        /// Issue instant, ns.
        t: u64,
        /// Direction.
        op: Op,
        /// First logical block.
        lbn: u64,
        /// Length in sectors.
        len: u64,
    },
    /// Wait for the mechanism to finish the previous command (queueing
    /// delay between command-ready and service start).
    Queue {
        /// Request sequence number.
        req: u64,
        /// Wait start, ns.
        t: u64,
        /// Wait length, ns.
        dur: u64,
    },
    /// Arm movement between cylinders. The pair (`t`, `t + dur`) encodes
    /// seek-start and seek-end.
    Seek {
        /// Request sequence number.
        req: u64,
        /// Seek start, ns.
        t: u64,
        /// Seek length, ns.
        dur: u64,
        /// Cylinder the arm left.
        from_cyl: u32,
        /// Cylinder the arm settled on.
        to_cyl: u32,
    },
    /// Head switch between surfaces of the same cylinder.
    HeadSwitch {
        /// Request sequence number.
        req: u64,
        /// Switch start, ns.
        t: u64,
        /// Switch length, ns.
        dur: u64,
    },
    /// Extra settle time charged before a media write.
    Settle {
        /// Request sequence number.
        req: u64,
        /// Settle start, ns.
        t: u64,
        /// Settle length, ns.
        dur: u64,
    },
    /// Rotational wait for the first needed sector of a mechanical visit.
    RotWait {
        /// Request sequence number.
        req: u64,
        /// Wait start, ns.
        t: u64,
        /// Wait length, ns.
        dur: u64,
        /// Global track index being waited on.
        track: u32,
    },
    /// Media transfer: sectors sweeping under the head on one track (one
    /// event per mechanical visit; `sectors` counts the sectors moved).
    Media {
        /// Request sequence number.
        req: u64,
        /// Transfer start, ns.
        t: u64,
        /// Transfer length, ns.
        dur: u64,
        /// Global track index.
        track: u32,
        /// Sectors transferred during this visit.
        sectors: u64,
    },
    /// A read serviced entirely from the firmware cache.
    CacheHit {
        /// Request sequence number.
        req: u64,
        /// Lookup instant, ns.
        t: u64,
        /// First logical block.
        lbn: u64,
        /// Length in sectors.
        len: u64,
    },
    /// The firmware cache absorbed a media read (extended by read-ahead):
    /// `[start, end)` in sectors is now cached.
    CacheFill {
        /// Request sequence number.
        req: u64,
        /// Fill instant (media completion), ns.
        t: u64,
        /// First cached LBN.
        start: u64,
        /// One past the last cached LBN.
        end: u64,
    },
    /// Un-overlapped bus activity: the trailing host transfer of a read,
    /// the whole transfer of a cache hit, or a write stalling on buffered
    /// data still crossing the bus.
    Bus {
        /// Request sequence number.
        req: u64,
        /// Phase start, ns.
        t: u64,
        /// Phase length, ns.
        dur: u64,
        /// Bytes moved (0 for a write-data stall).
        bytes: u64,
    },
    /// An injected fault (see [`crate::fault`]): a recovered media error,
    /// a grown-defect reallocation, or a transient command failure.
    /// `dur` is the recovery time charged to the request (zero for
    /// instantaneous events such as a reallocation or a surfaced abort).
    Fault {
        /// Request sequence number.
        req: u64,
        /// Fault instant, ns.
        t: u64,
        /// Recovery time charged, ns.
        dur: u64,
        /// Fault kind (`"media_retry"`, `"grown_defect"`,
        /// `"grown_defect_unspared"`, `"transient_retry"`,
        /// `"transient_abort"`).
        kind: String,
        /// Logical block the fault struck.
        lbn: u64,
    },
    /// A non-media SCSI command (MODE SENSE, address translation, defect
    /// list, READ CAPACITY) from the emulated command layer.
    ScsiCommand {
        /// Command start on the host clock, ns.
        t: u64,
        /// Command round-trip cost, ns.
        dur: u64,
        /// Command kind (e.g. `"mode_sense"`, `"translate_lbn"`).
        kind: String,
    },
    /// Closing per-request summary: where every nanosecond of the
    /// response went. The sum `queue + overhead + seek + head_switch +
    /// rot_latency + media + bus + write_settle` equals `response` up to
    /// the nanosecond-quantization residual of the per-phase rounding
    /// (typically < 20 µs per request).
    Complete {
        /// Request sequence number.
        req: u64,
        /// Completion instant, ns.
        t: u64,
        /// Direction.
        op: Op,
        /// First logical block.
        lbn: u64,
        /// Length in sectors.
        len: u64,
        /// True if serviced from the firmware cache.
        cache_hit: bool,
        /// Queueing wait, ns.
        queue: u64,
        /// Command-processing overhead, ns.
        overhead: u64,
        /// Seek time, ns.
        seek: u64,
        /// Head-switch time, ns.
        head_switch: u64,
        /// Rotational latency, ns.
        rot_latency: u64,
        /// Media transfer time, ns.
        media: u64,
        /// Un-overlapped bus time, ns.
        bus: u64,
        /// Write settle time, ns.
        write_settle: u64,
        /// Host-observed response time (completion − issue), ns.
        response: u64,
    },
}

fn op_name(op: Op) -> &'static str {
    match op {
        Op::Read => "read",
        Op::Write => "write",
    }
}

impl TraceEvent {
    /// The event's schema name, as emitted in the JSONL `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::Queue { .. } => "queue",
            TraceEvent::Seek { .. } => "seek",
            TraceEvent::HeadSwitch { .. } => "head_switch",
            TraceEvent::Settle { .. } => "settle",
            TraceEvent::RotWait { .. } => "rot_wait",
            TraceEvent::Media { .. } => "media",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheFill { .. } => "cache_fill",
            TraceEvent::Bus { .. } => "bus",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::ScsiCommand { .. } => "scsi_command",
            TraceEvent::Complete { .. } => "complete",
        }
    }

    /// The request sequence number, for events tied to one request.
    pub fn req(&self) -> Option<u64> {
        match *self {
            TraceEvent::Issue { req, .. }
            | TraceEvent::Queue { req, .. }
            | TraceEvent::Seek { req, .. }
            | TraceEvent::HeadSwitch { req, .. }
            | TraceEvent::Settle { req, .. }
            | TraceEvent::RotWait { req, .. }
            | TraceEvent::Media { req, .. }
            | TraceEvent::CacheHit { req, .. }
            | TraceEvent::CacheFill { req, .. }
            | TraceEvent::Bus { req, .. }
            | TraceEvent::Fault { req, .. }
            | TraceEvent::Complete { req, .. } => Some(req),
            TraceEvent::ScsiCommand { .. } => None,
        }
    }

    /// The instant (ns) the event starts.
    pub fn time_ns(&self) -> u64 {
        match *self {
            TraceEvent::Issue { t, .. }
            | TraceEvent::Queue { t, .. }
            | TraceEvent::Seek { t, .. }
            | TraceEvent::HeadSwitch { t, .. }
            | TraceEvent::Settle { t, .. }
            | TraceEvent::RotWait { t, .. }
            | TraceEvent::Media { t, .. }
            | TraceEvent::CacheHit { t, .. }
            | TraceEvent::CacheFill { t, .. }
            | TraceEvent::Bus { t, .. }
            | TraceEvent::Fault { t, .. }
            | TraceEvent::ScsiCommand { t, .. }
            | TraceEvent::Complete { t, .. } => t,
        }
    }

    /// Serializes the event as one flat JSON object (no trailing newline).
    ///
    /// The first field is always `"ev"` with the [`TraceEvent::name`];
    /// remaining fields are the variant's fields in declaration order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"ev\":\"");
        s.push_str(self.name());
        s.push('"');
        let num = |s: &mut String, k: &str, v: u64| {
            s.push_str(",\"");
            s.push_str(k);
            s.push_str("\":");
            s.push_str(&v.to_string());
        };
        match self {
            TraceEvent::Issue {
                req,
                t,
                op,
                lbn,
                len,
            } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                s.push_str(",\"op\":\"");
                s.push_str(op_name(*op));
                s.push('"');
                num(&mut s, "lbn", *lbn);
                num(&mut s, "len", *len);
            }
            TraceEvent::Queue { req, t, dur } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "dur", *dur);
            }
            TraceEvent::Seek {
                req,
                t,
                dur,
                from_cyl,
                to_cyl,
            } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "dur", *dur);
                num(&mut s, "from_cyl", u64::from(*from_cyl));
                num(&mut s, "to_cyl", u64::from(*to_cyl));
            }
            TraceEvent::HeadSwitch { req, t, dur } | TraceEvent::Settle { req, t, dur } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "dur", *dur);
            }
            TraceEvent::RotWait { req, t, dur, track } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "dur", *dur);
                num(&mut s, "track", u64::from(*track));
            }
            TraceEvent::Media {
                req,
                t,
                dur,
                track,
                sectors,
            } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "dur", *dur);
                num(&mut s, "track", u64::from(*track));
                num(&mut s, "sectors", *sectors);
            }
            TraceEvent::CacheHit { req, t, lbn, len } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "lbn", *lbn);
                num(&mut s, "len", *len);
            }
            TraceEvent::CacheFill { req, t, start, end } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "start", *start);
                num(&mut s, "end", *end);
            }
            TraceEvent::Bus { req, t, dur, bytes } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "dur", *dur);
                num(&mut s, "bytes", *bytes);
            }
            TraceEvent::Fault {
                req,
                t,
                dur,
                kind,
                lbn,
            } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                num(&mut s, "dur", *dur);
                s.push_str(",\"kind\":\"");
                s.push_str(kind);
                s.push('"');
                num(&mut s, "lbn", *lbn);
            }
            TraceEvent::ScsiCommand { t, dur, kind } => {
                num(&mut s, "t", *t);
                num(&mut s, "dur", *dur);
                s.push_str(",\"kind\":\"");
                s.push_str(kind);
                s.push('"');
            }
            TraceEvent::Complete {
                req,
                t,
                op,
                lbn,
                len,
                cache_hit,
                queue,
                overhead,
                seek,
                head_switch,
                rot_latency,
                media,
                bus,
                write_settle,
                response,
            } => {
                num(&mut s, "req", *req);
                num(&mut s, "t", *t);
                s.push_str(",\"op\":\"");
                s.push_str(op_name(*op));
                s.push('"');
                num(&mut s, "lbn", *lbn);
                num(&mut s, "len", *len);
                s.push_str(",\"cache_hit\":");
                s.push_str(if *cache_hit { "true" } else { "false" });
                num(&mut s, "queue", *queue);
                num(&mut s, "overhead", *overhead);
                num(&mut s, "seek", *seek);
                num(&mut s, "head_switch", *head_switch);
                num(&mut s, "rot_latency", *rot_latency);
                num(&mut s, "media", *media);
                num(&mut s, "bus", *bus);
                num(&mut s, "write_settle", *write_settle);
                num(&mut s, "response", *response);
            }
        }
        s.push('}');
        s
    }

    /// Decodes one JSONL line produced by [`TraceEvent::to_json`].
    ///
    /// Accepts exactly the flat-object encoding this module writes:
    /// string, integer, and boolean values, no nesting, no escapes inside
    /// strings. Returns a description of the first problem found.
    pub fn parse_json(line: &str) -> Result<TraceEvent, String> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| -> Result<&JsonValue, String> {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{k}`"))
        };
        let num = |k: &str| -> Result<u64, String> {
            match get(k)? {
                JsonValue::Num(n) => Ok(*n),
                _ => Err(format!("field `{k}` is not an integer")),
            }
        };
        let string = |k: &str| -> Result<String, String> {
            match get(k)? {
                JsonValue::Str(s) => Ok(s.clone()),
                _ => Err(format!("field `{k}` is not a string")),
            }
        };
        let boolean = |k: &str| -> Result<bool, String> {
            match get(k)? {
                JsonValue::Bool(b) => Ok(*b),
                _ => Err(format!("field `{k}` is not a boolean")),
            }
        };
        let op = |k: &str| -> Result<Op, String> {
            match string(k)?.as_str() {
                "read" => Ok(Op::Read),
                "write" => Ok(Op::Write),
                other => Err(format!("unknown op `{other}`")),
            }
        };
        let track = |k: &str| -> Result<u32, String> {
            u32::try_from(num(k)?).map_err(|_| format!("field `{k}` exceeds u32"))
        };

        let ev = string("ev")?;
        Ok(match ev.as_str() {
            "issue" => TraceEvent::Issue {
                req: num("req")?,
                t: num("t")?,
                op: op("op")?,
                lbn: num("lbn")?,
                len: num("len")?,
            },
            "queue" => TraceEvent::Queue {
                req: num("req")?,
                t: num("t")?,
                dur: num("dur")?,
            },
            "seek" => TraceEvent::Seek {
                req: num("req")?,
                t: num("t")?,
                dur: num("dur")?,
                from_cyl: track("from_cyl")?,
                to_cyl: track("to_cyl")?,
            },
            "head_switch" => TraceEvent::HeadSwitch {
                req: num("req")?,
                t: num("t")?,
                dur: num("dur")?,
            },
            "settle" => TraceEvent::Settle {
                req: num("req")?,
                t: num("t")?,
                dur: num("dur")?,
            },
            "rot_wait" => TraceEvent::RotWait {
                req: num("req")?,
                t: num("t")?,
                dur: num("dur")?,
                track: track("track")?,
            },
            "media" => TraceEvent::Media {
                req: num("req")?,
                t: num("t")?,
                dur: num("dur")?,
                track: track("track")?,
                sectors: num("sectors")?,
            },
            "cache_hit" => TraceEvent::CacheHit {
                req: num("req")?,
                t: num("t")?,
                lbn: num("lbn")?,
                len: num("len")?,
            },
            "cache_fill" => TraceEvent::CacheFill {
                req: num("req")?,
                t: num("t")?,
                start: num("start")?,
                end: num("end")?,
            },
            "bus" => TraceEvent::Bus {
                req: num("req")?,
                t: num("t")?,
                dur: num("dur")?,
                bytes: num("bytes")?,
            },
            "fault" => TraceEvent::Fault {
                req: num("req")?,
                t: num("t")?,
                dur: num("dur")?,
                kind: string("kind")?,
                lbn: num("lbn")?,
            },
            "scsi_command" => TraceEvent::ScsiCommand {
                t: num("t")?,
                dur: num("dur")?,
                kind: string("kind")?,
            },
            "complete" => TraceEvent::Complete {
                req: num("req")?,
                t: num("t")?,
                op: op("op")?,
                lbn: num("lbn")?,
                len: num("len")?,
                cache_hit: boolean("cache_hit")?,
                queue: num("queue")?,
                overhead: num("overhead")?,
                seek: num("seek")?,
                head_switch: num("head_switch")?,
                rot_latency: num("rot_latency")?,
                media: num("media")?,
                bus: num("bus")?,
                write_settle: num("write_settle")?,
                response: num("response")?,
            },
            other => return Err(format!("unknown event `{other}`")),
        })
    }
}

/// The kind tag of an otherwise well-formed flat JSONL line, whether or
/// not this library version recognizes it.
///
/// [`TraceEvent::parse_json`] rejects event kinds introduced after this
/// version, and rejects causal-span records (`{"span": ...}` lines from
/// `traxtent::obs::span`) outright. Report tooling uses this helper to
/// distinguish a well-formed line of an unrecognized kind — count it and
/// move on — from genuine corruption, which still marks the trace as
/// truncated. Returns the `ev` field's value, `span:<name>` for span
/// records, and `None` when the line is not a flat object carrying
/// either tag.
pub fn peek_event_name(line: &str) -> Option<String> {
    let fields = parse_flat_object(line).ok()?;
    let text_field = |wanted: &str| {
        fields.iter().find_map(|(key, value)| match value {
            JsonValue::Str(s) if key == wanted => Some(s.clone()),
            _ => None,
        })
    };
    text_field("ev").or_else(|| text_field("span").map(|name| format!("span:{name}")))
}

/// A decoded flat-JSON value: the only three shapes the trace schema uses.
enum JsonValue {
    Num(u64),
    Str(String),
    Bool(bool),
}

/// Parses a single-level JSON object of string/integer/boolean fields.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut fields = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        // Key.
        rest = rest.strip_prefix('"').ok_or("expected a quoted key")?;
        let close = rest.find('"').ok_or("unterminated key")?;
        let key = rest[..close].to_string();
        rest = rest[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or("expected `:` after key")?
            .trim_start();
        // Value.
        let (value, after) = if let Some(srest) = rest.strip_prefix('"') {
            let close = srest.find('"').ok_or("unterminated string value")?;
            (
                JsonValue::Str(srest[..close].to_string()),
                &srest[close + 1..],
            )
        } else if let Some(after) = rest.strip_prefix("true") {
            (JsonValue::Bool(true), after)
        } else if let Some(after) = rest.strip_prefix("false") {
            (JsonValue::Bool(false), after)
        } else {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if end == 0 {
                return Err(format!("unparsable value near `{rest}`"));
            }
            let n: u64 = rest[..end]
                .parse()
                .map_err(|_| format!("bad integer near `{rest}`"))?;
            (JsonValue::Num(n), &rest[end..])
        };
        fields.push((key, value));
        rest = after.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected `,` near `{rest}`"));
        }
    }
    Ok(fields)
}

/// A consumer of trace events.
///
/// Implementations must tolerate events from multiple requests being
/// interleaved only at request granularity: the drive delivers each
/// request's events as one contiguous batch ending in
/// [`TraceEvent::Complete`].
pub trait TraceSink: Send {
    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flushes any buffered output (a no-op by default).
    fn flush(&mut self) {}
}

/// A shareable, thread-safe handle to a [`TraceSink`].
pub type SharedSink = Arc<Mutex<dyn TraceSink>>;

/// A cloneable tracing handle carried by drive configs and drives.
///
/// Cloning shares the underlying sink, so every drive built from a traced
/// [`crate::disk::DiskConfig`] appends to the same stream.
#[derive(Clone)]
pub struct Tracer(SharedSink);

impl Tracer {
    /// Wraps a shared sink.
    pub fn new(sink: SharedSink) -> Self {
        Tracer(sink)
    }

    /// Builds a tracer around any sink value.
    pub fn from_sink(sink: impl TraceSink + 'static) -> Self {
        Tracer(Arc::new(Mutex::new(sink)))
    }

    /// The shared sink, for attaching the same stream elsewhere.
    pub fn sink(&self) -> SharedSink {
        self.0.clone()
    }

    /// Records a batch of events under one lock acquisition.
    pub fn record_all(&self, events: &[TraceEvent]) {
        let mut sink = self.0.lock().expect("trace sink poisoned");
        for e in events {
            sink.record(e);
        }
    }

    /// Records a single event.
    pub fn record(&self, event: &TraceEvent) {
        self.0.lock().expect("trace sink poisoned").record(event);
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.0.lock().expect("trace sink poisoned").flush();
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Tracer(..)")
    }
}

/// An in-memory sink collecting events into a `Vec` (tests, reports).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains and returns all recorded events.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// A sink writing one JSON object per line to any `Write` target.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    out: BufWriter<W>,
    written: u64,
}

impl JsonlSink<File> {
    /// Creates (truncating) `path` and writes the trace there.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink::new(File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink {
            out: BufWriter::new(w),
            written: 0,
        }
    }

    /// Number of events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        // I/O errors abort the run: a silently truncated trace is worse
        // than no trace.
        writeln!(self.out, "{}", event.to_json()).expect("trace write failed");
        self.written += 1;
    }

    fn flush(&mut self) {
        self.out.flush().expect("trace flush failed");
    }
}

/// A sink forwarding every event to several sinks (e.g. a JSONL file plus
/// a live metrics registry).
pub struct Fanout(Vec<SharedSink>);

impl Fanout {
    /// Builds a fan-out over `sinks`.
    pub fn new(sinks: Vec<SharedSink>) -> Self {
        Fanout(sinks)
    }
}

impl TraceSink for Fanout {
    fn record(&mut self, event: &TraceEvent) {
        for s in &self.0 {
            s.lock().expect("fanout sink poisoned").record(event);
        }
    }

    fn flush(&mut self) {
        for s in &self.0 {
            s.lock().expect("fanout sink poisoned").flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_event_name_reads_known_unknown_and_span_kinds() {
        assert_eq!(
            peek_event_name(r#"{"ev": "seek", "req": 1, "t": 2, "dur": 3, "cyls": 4}"#).as_deref(),
            Some("seek")
        );
        assert_eq!(
            peek_event_name(r#"{"ev": "from_the_future", "req": 1}"#).as_deref(),
            Some("from_the_future"),
            "unknown kinds are still identifiable"
        );
        assert_eq!(
            peek_event_name(
                r#"{"span":"vol_cmd","id":7,"parent":1,"track":2,"start":0,"end":9,"attrs":""}"#
            )
            .as_deref(),
            Some("span:vol_cmd")
        );
        assert_eq!(peek_event_name("garbage"), None);
        assert_eq!(
            peek_event_name(r#"{"req": 1, "t": 2}"#),
            None,
            "no kind tag"
        );
    }

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Issue {
                req: 1,
                t: 2,
                op: Op::Read,
                lbn: 3,
                len: 4,
            },
            TraceEvent::Queue {
                req: 1,
                t: 2,
                dur: 3,
            },
            TraceEvent::Seek {
                req: 1,
                t: 5,
                dur: 6,
                from_cyl: 7,
                to_cyl: 8,
            },
            TraceEvent::HeadSwitch {
                req: 1,
                t: 9,
                dur: 10,
            },
            TraceEvent::Settle {
                req: 1,
                t: 11,
                dur: 12,
            },
            TraceEvent::RotWait {
                req: 1,
                t: 13,
                dur: 14,
                track: 15,
            },
            TraceEvent::Media {
                req: 1,
                t: 16,
                dur: 17,
                track: 18,
                sectors: 19,
            },
            TraceEvent::CacheHit {
                req: 1,
                t: 20,
                lbn: 21,
                len: 22,
            },
            TraceEvent::CacheFill {
                req: 1,
                t: 23,
                start: 24,
                end: 25,
            },
            TraceEvent::Bus {
                req: 1,
                t: 26,
                dur: 27,
                bytes: 28,
            },
            TraceEvent::Fault {
                req: 1,
                t: 28,
                dur: 29,
                kind: "media_retry".into(),
                lbn: 30,
            },
            TraceEvent::ScsiCommand {
                t: 29,
                dur: 30,
                kind: "mode_sense".into(),
            },
            TraceEvent::Complete {
                req: 1,
                t: 31,
                op: Op::Write,
                lbn: 32,
                len: 33,
                cache_hit: false,
                queue: 34,
                overhead: 35,
                seek: 36,
                head_switch: 37,
                rot_latency: 38,
                media: 39,
                bus: 40,
                write_settle: 41,
                response: 42,
            },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        for e in samples() {
            let line = e.to_json();
            let back = TraceEvent::parse_json(&line).unwrap_or_else(|err| {
                panic!("parse of {line} failed: {err}");
            });
            assert_eq!(e, back, "line {line}");
        }
    }

    #[test]
    fn json_is_one_flat_object_per_event() {
        for e in samples() {
            let line = e.to_json();
            assert!(line.starts_with(&format!("{{\"ev\":\"{}\"", e.name())));
            assert!(line.ends_with('}'));
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceEvent::parse_json("").is_err());
        assert!(TraceEvent::parse_json("{}").is_err());
        assert!(TraceEvent::parse_json("{\"ev\":\"nope\"}").is_err());
        assert!(TraceEvent::parse_json("{\"ev\":\"queue\",\"req\":1}").is_err());
        assert!(TraceEvent::parse_json("{\"ev\":\"queue\",\"req\":-1,\"t\":0,\"dur\":0}").is_err());
        assert!(TraceEvent::parse_json("not json").is_err());
    }

    #[test]
    fn memory_sink_collects_and_drains() {
        let mut sink = MemorySink::new();
        for e in samples() {
            sink.record(&e);
        }
        assert_eq!(sink.events().len(), samples().len());
        let drained = sink.take_events();
        assert_eq!(drained, samples());
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        for e in samples() {
            sink.record(&e);
        }
        sink.flush();
        assert_eq!(sink.written(), samples().len() as u64);
        let text = String::from_utf8(sink.out.into_inner().unwrap()).unwrap();
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::parse_json(l).unwrap())
            .collect();
        assert_eq!(parsed, samples());
    }

    #[test]
    fn fanout_duplicates_events() {
        let a = Arc::new(Mutex::new(MemorySink::new()));
        let b = Arc::new(Mutex::new(MemorySink::new()));
        let mut f = Fanout::new(vec![a.clone(), b.clone()]);
        let e = samples().remove(0);
        f.record(&e);
        f.flush();
        assert_eq!(a.lock().unwrap().events(), std::slice::from_ref(&e));
        assert_eq!(b.lock().unwrap().events(), std::slice::from_ref(&e));
    }

    #[test]
    fn tracer_batches_under_one_lock() {
        let sink = Arc::new(Mutex::new(MemorySink::new()));
        let tracer = Tracer::new(sink.clone());
        tracer.record_all(&samples());
        tracer.flush();
        assert_eq!(sink.lock().unwrap().events(), samples().as_slice());
        assert_eq!(format!("{tracer:?}"), "Tracer(..)");
    }
}
