//! Segmented firmware read cache with track read-ahead.
//!
//! Drive firmware keeps a small number of cache segments, each holding a
//! recently read LBN run extended by read-ahead to the end of the track.
//! Reads fully contained in a segment are serviced at bus speed with no
//! mechanical work. This is precisely the behaviour the general
//! track-extraction algorithm must defeat by interleaving requests to more
//! widespread locations than the cache has segments (§4.1.1 of the paper).
//!
//! Writes invalidate overlapping cached data and do not populate the cache
//! (write-through, no write-back caching).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of cache segments (0 disables the cache).
    pub segments: usize,
    /// Whether a media read populates its segment out to the end of the last
    /// track touched (firmware read-ahead).
    pub readahead_to_track_end: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            segments: 10,
            readahead_to_track_end: true,
        }
    }
}

impl CacheConfig {
    /// A disabled cache.
    pub fn disabled() -> Self {
        CacheConfig {
            segments: 0,
            readahead_to_track_end: false,
        }
    }
}

/// One cached LBN run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    start: u64,
    end: u64, // exclusive
}

/// The segmented cache. LRU across segments; a hit refreshes recency.
#[derive(Debug, Clone)]
pub struct SegmentCache {
    config: CacheConfig,
    /// Most recently used at the back.
    segments: VecDeque<Segment>,
    hits: u64,
    misses: u64,
}

impl SegmentCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        SegmentCache {
            config,
            segments: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns true — and refreshes recency — if `[start, start+len)` is
    /// fully contained in one segment.
    pub fn lookup(&mut self, start: u64, len: u64) -> bool {
        if self.config.segments == 0 {
            return false;
        }
        let end = start + len;
        if let Some(idx) = self
            .segments
            .iter()
            .position(|s| s.start <= start && end <= s.end)
        {
            let seg = self.segments.remove(idx).expect("index valid");
            self.segments.push_back(seg);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records that `[start, end)` was read from media (already extended by
    /// read-ahead by the caller if configured). Evicts the least recently
    /// used segment if full. Overlapping older segments are absorbed.
    pub fn insert(&mut self, start: u64, end: u64) {
        if self.config.segments == 0 || start >= end {
            return;
        }
        // Absorb overlapping or adjacent segments into the new one.
        let mut new = Segment { start, end };
        self.segments.retain(|s| {
            let overlaps = s.start <= new.end && new.start <= s.end;
            if overlaps {
                new.start = new.start.min(s.start);
                new.end = new.end.max(s.end);
            }
            !overlaps
        });
        while self.segments.len() >= self.config.segments {
            self.segments.pop_front();
        }
        self.segments.push_back(new);
    }

    /// Invalidates any cached data overlapping `[start, start+len)` (called
    /// on writes). Segments are trimmed, not dropped wholesale, except when
    /// the write splits one (then the smaller half is dropped for
    /// simplicity, as real firmware typically does).
    pub fn invalidate(&mut self, start: u64, len: u64) {
        let end = start + len;
        for s in &mut self.segments {
            if s.start < end && start < s.end {
                if start <= s.start && end >= s.end {
                    s.end = s.start; // fully covered: empty it
                } else if start <= s.start {
                    s.start = end;
                } else if end >= s.end {
                    s.end = start;
                } else {
                    // Write splits the segment: keep the larger half.
                    if start - s.start >= s.end - end {
                        s.end = start;
                    } else {
                        s.start = end;
                    }
                }
            }
        }
        self.segments.retain(|s| s.start < s.end);
    }

    /// Drops all cached data.
    pub fn clear(&mut self) {
        self.segments.clear();
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if no segments are cached.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(n: usize) -> SegmentCache {
        SegmentCache::new(CacheConfig {
            segments: n,
            readahead_to_track_end: true,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(2);
        assert!(!c.lookup(100, 10));
        c.insert(100, 200);
        assert!(c.lookup(100, 10));
        assert!(c.lookup(150, 50));
        assert!(!c.lookup(150, 51)); // extends past segment end
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut c = cache(2);
        c.insert(0, 10);
        c.insert(100, 110);
        c.insert(200, 210); // evicts [0,10)
        assert!(!c.lookup(0, 5));
        assert!(c.lookup(100, 5));
        assert!(c.lookup(200, 5));
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut c = cache(2);
        c.insert(0, 10);
        c.insert(100, 110);
        assert!(c.lookup(0, 5)); // refresh [0,10)
        c.insert(200, 210); // evicts [100,110), not [0,10)
        assert!(c.lookup(0, 5));
        assert!(!c.lookup(100, 5));
    }

    #[test]
    fn overlapping_inserts_merge() {
        let mut c = cache(4);
        c.insert(0, 100);
        c.insert(50, 150);
        assert_eq!(c.len(), 1);
        assert!(c.lookup(0, 150));
    }

    #[test]
    fn writes_invalidate() {
        let mut c = cache(4);
        c.insert(0, 100);
        c.invalidate(20, 10);
        assert!(!c.lookup(0, 100));
        assert!(!c.lookup(25, 1));
        // The larger half [30,100) survives a split.
        assert!(c.lookup(40, 50));
    }

    #[test]
    fn full_cover_invalidation_drops_segment() {
        let mut c = cache(4);
        c.insert(10, 20);
        c.invalidate(0, 100);
        assert!(c.is_empty());
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = SegmentCache::new(CacheConfig::disabled());
        c.insert(0, 1000);
        assert!(!c.lookup(0, 1));
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn clear_empties() {
        let mut c = cache(2);
        c.insert(0, 10);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.lookup(0, 1));
    }
}
