//! Segmented firmware read cache with track read-ahead.
//!
//! Drive firmware keeps a small number of cache segments, each holding a
//! recently read LBN run extended by read-ahead to the end of the track.
//! Reads fully contained in a segment are serviced at bus speed with no
//! mechanical work. This is precisely the behaviour the general
//! track-extraction algorithm must defeat by interleaving requests to more
//! widespread locations than the cache has segments (§4.1.1 of the paper).
//!
//! Writes invalidate overlapping cached data and do not populate the cache
//! (write-through, no write-back caching).

use serde::{Deserialize, Serialize};

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of cache segments (0 disables the cache).
    pub segments: usize,
    /// Whether a media read populates its segment out to the end of the last
    /// track touched (firmware read-ahead).
    pub readahead_to_track_end: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            segments: 10,
            readahead_to_track_end: true,
        }
    }
}

impl CacheConfig {
    /// A disabled cache.
    pub fn disabled() -> Self {
        CacheConfig {
            segments: 0,
            readahead_to_track_end: false,
        }
    }
}

/// Sentinel "start" for an unoccupied ring slot: no containment or overlap
/// test can match it (`start == u64::MAX` with `end == 0` fails both
/// `s <= x` and `x <= e` for every real LBN range).
const EMPTY_START: u64 = u64::MAX;
/// Sentinel "end" for an unoccupied ring slot.
const EMPTY_END: u64 = 0;

/// The segmented cache. LRU across segments; a hit refreshes recency.
///
/// Cached runs live in two parallel fixed-size rings (`starts`/`ends`) of
/// exactly `config.segments` slots, oldest at `head`, newest at
/// `head + len - 1`. Unoccupied slots hold a sentinel range that no lookup
/// or overlap test can match, so the hot scans sweep the whole array
/// branch-free without translating logical indices; eviction is O(1)
/// (advance `head`). Live segments are
/// pairwise disjoint — [`SegmentCache::insert`] absorbs every overlapping
/// segment and [`SegmentCache::invalidate`] only shrinks — so at most one
/// segment can satisfy a lookup and "first match" equals "unique match".
/// On the trace-replay hot path every media read does one lookup and one
/// insert; a mispredict-free L1-resident sweep is what keeps that
/// affordable.
#[derive(Debug, Clone)]
pub struct SegmentCache {
    config: CacheConfig,
    /// Segment first LBNs (physical ring slots; sentinel when empty).
    starts: Vec<u64>,
    /// Segment end LBNs, exclusive (parallel to `starts`).
    ends: Vec<u64>,
    /// Physical index of the least recently used segment.
    head: usize,
    /// Number of live segments.
    len: usize,
    hits: u64,
    misses: u64,
}

impl SegmentCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let ring = config.segments.max(1);
        SegmentCache {
            config,
            starts: vec![EMPTY_START; ring],
            ends: vec![EMPTY_END; ring],
            head: 0,
            len: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Physical ring slot of logical (recency) index `i` (0 = oldest).
    #[inline]
    fn slot(&self, i: usize) -> usize {
        let p = self.head + i;
        if p >= self.starts.len() {
            p - self.starts.len()
        } else {
            p
        }
    }

    /// Physical slot of the unique segment containing `[start, end)`.
    #[inline]
    fn containing(&self, start: u64, end: u64) -> Option<usize> {
        let mut idx = usize::MAX;
        for (i, (&s, &e)) in self.starts.iter().zip(&self.ends).enumerate() {
            if s <= start && end <= e {
                idx = i;
            }
        }
        (idx != usize::MAX).then_some(idx)
    }

    /// Appends a segment at the most-recent end. Requires a free slot.
    #[inline]
    fn push(&mut self, start: u64, end: u64) {
        debug_assert!(self.len < self.starts.len());
        let at = self.slot(self.len);
        self.starts[at] = start;
        self.ends[at] = end;
        self.len += 1;
    }

    /// Removes the segment in physical slot `at`, sliding newer segments
    /// down one logical position (recency order among survivors is kept).
    fn remove_at(&mut self, at: usize) -> (u64, u64) {
        let removed = (self.starts[at], self.ends[at]);
        let logical = if at >= self.head {
            at - self.head
        } else {
            at + self.starts.len() - self.head
        };
        debug_assert!(logical < self.len);
        for i in logical + 1..self.len {
            let (from, to) = (self.slot(i), self.slot(i - 1));
            self.starts[to] = self.starts[from];
            self.ends[to] = self.ends[from];
        }
        let last = self.slot(self.len - 1);
        self.starts[last] = EMPTY_START;
        self.ends[last] = EMPTY_END;
        self.len -= 1;
        removed
    }

    /// Returns true — and refreshes recency — if `[start, start+len)` is
    /// fully contained in one segment.
    pub fn lookup(&mut self, start: u64, len: u64) -> bool {
        if self.config.segments == 0 {
            return false;
        }
        let end = start + len;
        if let Some(at) = self.containing(start, end) {
            if at != self.slot(self.len - 1) {
                let (s, e) = self.remove_at(at);
                self.push(s, e);
            }
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records that `[start, end)` was read from media (already extended by
    /// read-ahead by the caller if configured). Evicts the least recently
    /// used segment if full. Overlapping older segments are absorbed.
    pub fn insert(&mut self, start: u64, end: u64) {
        if self.config.segments == 0 || start >= end {
            return;
        }
        // Absorb overlapping or adjacent segments into the new one. The
        // common case (disjoint insert) is a branch-free read-only scan;
        // only an actual overlap pays for removing the absorbed segments
        // (recency order among survivors is kept).
        let (mut new_start, mut new_end) = (start, end);
        let mut any = false;
        for (&s, &e) in self.starts.iter().zip(&self.ends) {
            any |= s <= new_end && new_start <= e;
        }
        if any {
            let mut i = 0;
            while i < self.len {
                let at = self.slot(i);
                let (s, e) = (self.starts[at], self.ends[at]);
                if s <= new_end && new_start <= e {
                    new_start = new_start.min(s);
                    new_end = new_end.max(e);
                    self.remove_at(at);
                } else {
                    i += 1;
                }
            }
        }
        while self.len >= self.config.segments {
            // O(1) eviction: blank the oldest slot and advance the head.
            self.starts[self.head] = EMPTY_START;
            self.ends[self.head] = EMPTY_END;
            self.head += 1;
            if self.head == self.starts.len() {
                self.head = 0;
            }
            self.len -= 1;
        }
        self.push(new_start, new_end);
    }

    /// Invalidates any cached data overlapping `[start, start+len)` (called
    /// on writes). Segments are trimmed, not dropped wholesale, except when
    /// the write splits one (then the smaller half is dropped for
    /// simplicity, as real firmware typically does).
    pub fn invalidate(&mut self, start: u64, len: u64) {
        let end = start + len;
        let mut i = 0;
        while i < self.len {
            let at = self.slot(i);
            let (mut s, mut e) = (self.starts[at], self.ends[at]);
            if s < end && start < e {
                if start <= s && end >= e {
                    e = s; // fully covered: empty it
                } else if start <= s {
                    s = end;
                } else if end >= e {
                    e = start;
                } else {
                    // Write splits the segment: keep the larger half.
                    if start - s >= e - end {
                        e = start;
                    } else {
                        s = end;
                    }
                }
            }
            if s < e {
                self.starts[at] = s;
                self.ends[at] = e;
                i += 1;
            } else {
                self.remove_at(at);
            }
        }
    }

    /// Drops all cached data.
    pub fn clear(&mut self) {
        self.starts.fill(EMPTY_START);
        self.ends.fill(EMPTY_END);
        self.head = 0;
        self.len = 0;
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no segments are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(n: usize) -> SegmentCache {
        SegmentCache::new(CacheConfig {
            segments: n,
            readahead_to_track_end: true,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(2);
        assert!(!c.lookup(100, 10));
        c.insert(100, 200);
        assert!(c.lookup(100, 10));
        assert!(c.lookup(150, 50));
        assert!(!c.lookup(150, 51)); // extends past segment end
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut c = cache(2);
        c.insert(0, 10);
        c.insert(100, 110);
        c.insert(200, 210); // evicts [0,10)
        assert!(!c.lookup(0, 5));
        assert!(c.lookup(100, 5));
        assert!(c.lookup(200, 5));
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut c = cache(2);
        c.insert(0, 10);
        c.insert(100, 110);
        assert!(c.lookup(0, 5)); // refresh [0,10)
        c.insert(200, 210); // evicts [100,110), not [0,10)
        assert!(c.lookup(0, 5));
        assert!(!c.lookup(100, 5));
    }

    #[test]
    fn overlapping_inserts_merge() {
        let mut c = cache(4);
        c.insert(0, 100);
        c.insert(50, 150);
        assert_eq!(c.len(), 1);
        assert!(c.lookup(0, 150));
    }

    #[test]
    fn writes_invalidate() {
        let mut c = cache(4);
        c.insert(0, 100);
        c.invalidate(20, 10);
        assert!(!c.lookup(0, 100));
        assert!(!c.lookup(25, 1));
        // The larger half [30,100) survives a split.
        assert!(c.lookup(40, 50));
    }

    #[test]
    fn full_cover_invalidation_drops_segment() {
        let mut c = cache(4);
        c.insert(10, 20);
        c.invalidate(0, 100);
        assert!(c.is_empty());
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = SegmentCache::new(CacheConfig::disabled());
        c.insert(0, 1000);
        assert!(!c.lookup(0, 1));
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn clear_empties() {
        let mut c = cache(2);
        c.insert(0, 10);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.lookup(0, 1));
    }
}
