//! An event-driven disk drive simulator faithful to the mechanisms that the
//! FAST 2002 track-aligned-extents paper exploits.
//!
//! The simulator models a single disk drive behind a SCSI-like block
//! interface:
//!
//! * **Zoned geometry** ([`geometry`]): multiple zones with different
//!   sectors-per-track, track and cylinder skew, several spare-space schemes,
//!   and media defects handled by either *slipping* or *remapping*.
//! * **Mechanics** ([`mech`]): a three-coefficient seek curve calibrated to a
//!   drive's published single-cylinder / average / full-strobe times,
//!   constant-rate rotation, and head-switch time.
//! * **Firmware** ([`disk`]): zero-latency (access-on-arrival) or ordinary
//!   in-order media access, a segmented read cache with track read-ahead
//!   ([`cache`]), command queueing, and an in-order delivery bus model
//!   ([`bus`]).
//! * **Drive presets** ([`models`]): the seven drives of Table 1 of the
//!   paper, calibrated so first-zone microbenchmarks land where the paper's
//!   measurements do.
//!
//! # Example
//!
//! ```
//! use sim_disk::models;
//! use sim_disk::disk::{Disk, Op, Request};
//! use sim_disk::SimTime;
//!
//! let mut disk = Disk::new(models::quantum_atlas_10k_ii());
//! // Read the whole first track, starting from an idle disk at t=0.
//! let track_len = disk.geometry().track(0).lbn_count() as u64;
//! let done = disk.service(Request::new(Op::Read, 0, track_len), SimTime::ZERO);
//! assert!(done.completion > SimTime::ZERO);
//! ```
//!
//! # Observability
//!
//! Setting [`disk::DiskConfig::tracer`] streams typed [`trace::TraceEvent`]s
//! for every mechanical phase of every request into a [`trace::TraceSink`]
//! (a JSONL file, an in-memory buffer, a [`metrics::MetricsRegistry`], or
//! any combination via [`trace::Fanout`]). With no tracer attached the
//! entire subsystem costs one branch per request.

#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod crash;
pub mod defects;
pub mod disk;
pub mod fault;
pub mod geometry;
pub mod mech;
pub mod metrics;
pub mod models;
pub mod request;
pub mod rotation;
pub mod trace;

pub use disk::Disk;
pub use geometry::{DiskGeometry, GeometrySpec, Pba, TrackId, ZoneSpec};
pub use request::{Breakdown, Completion};

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of simulated time, in integer nanoseconds since simulation
/// start.
///
/// Integer nanoseconds keep event ordering exact and runs reproducible;
/// physics is computed in `f64` and quantized once.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in integer nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDur(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch, as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.checked_sub(earlier.0).expect("time went backwards"))
    }

    /// The duration since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    /// The zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDur(ns)
    }

    /// Creates a duration from a float number of seconds, rounding to the
    /// nearest nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimDur((secs * 1e9).round() as u64)
        } else {
            SimDur(0)
        }
    }

    /// Creates a duration from a float number of milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Creates a duration from a float number of microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Nanoseconds in this duration.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds, as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDur) -> SimDur {
        SimDur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDur) -> SimDur {
        SimDur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        self.since(rhs)
    }
}

impl Add<SimDur> for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDur> for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl SubAssign<SimDur> for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        SimDur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// Bytes per 512-byte sector, the unit every LBN addresses.
pub const SECTOR_BYTES: u64 = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_ns(1_000_000);
        let d = SimDur::from_millis_f64(2.0);
        assert_eq!((t + d).as_ns(), 3_000_000);
        assert_eq!(((t + d) - t).as_ns(), 2_000_000);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn dur_from_floats_rounds() {
        assert_eq!(SimDur::from_secs_f64(1.5e-9).as_ns(), 2);
        assert_eq!(SimDur::from_secs_f64(-1.0).as_ns(), 0);
        assert_eq!(SimDur::from_secs_f64(f64::NAN).as_ns(), 0);
        assert_eq!(SimDur::from_micros_f64(3.0).as_ns(), 3_000);
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(a.saturating_since(b), SimDur::ZERO);
        assert_eq!(b.saturating_since(a).as_ns(), 4);
        assert_eq!(
            SimDur::from_ns(3).saturating_sub(SimDur::from_ns(7)),
            SimDur::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_ns(1).since(SimTime::from_ns(2));
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimDur::from_millis_f64(1.5)), "1.500ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDur = (1..=4).map(SimDur::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
    }
}
