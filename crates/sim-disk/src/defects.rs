//! Media defects and the firmware policies that hide them.
//!
//! Real drives ship with a primary ("P-list") defect list recorded at the
//! factory and accumulate a grown ("G-list") defect list in the field. The
//! firmware hides defects from the LBN interface in one of two ways:
//!
//! * **Slipping** — the LBN-to-physical mapping simply skips the defective
//!   sector, shifting every subsequent LBN in the slip domain by one. This
//!   is efficient (sequential access stays sequential) and is the common
//!   factory policy, but it perturbs track boundaries, which is exactly what
//!   makes track detection hard.
//! * **Remapping** — the LBN that would live in the defective sector is
//!   redirected to a spare sector elsewhere, leaving all other mappings
//!   untouched. Access to a remapped LBN costs an extra mechanical
//!   excursion.

use serde::{Deserialize, Serialize};

/// A physical media location named by cylinder, head (surface), and the
/// physical sector slot index within the track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DefectLocation {
    /// Cylinder number, 0 at the outer edge.
    pub cyl: u32,
    /// Surface (read/write head) number.
    pub head: u32,
    /// Physical sector slot on the track, `0..sectors_per_track`.
    pub slot: u32,
}

impl DefectLocation {
    /// Creates a defect location.
    pub fn new(cyl: u32, head: u32, slot: u32) -> Self {
        DefectLocation { cyl, head, slot }
    }
}

/// How the firmware reserves spare space for defect management.
///
/// The paper (§3.1) observes "a wide array of spare space schemes" — over
/// ten in real drives; these five cover the structural variety that the
/// DIXtrac-style extractor must classify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpareScheme {
    /// No reserved spare space. Only valid for defect-free disks (or when
    /// every defect is remapped to the end of the LBN space, which this
    /// simulator does not model).
    None,
    /// The last `n` sector slots of every track are reserved.
    SectorsPerTrack(u32),
    /// The last `n` sector slots of every cylinder (i.e. the tail of its
    /// last track) are reserved.
    SectorsPerCylinder(u32),
    /// The last `n` tracks of every zone are reserved.
    TracksPerZone(u32),
    /// The last `n` tracks of the disk are reserved.
    TracksAtEnd(u32),
}

impl SpareScheme {
    /// Spare slots reserved on a given track, given the track's position in
    /// its cylinder/zone/disk. Arguments describe the track's context:
    /// whether it is the last track of its cylinder, and how many tracks from
    /// the end of its zone / the disk it is (0 = last).
    pub(crate) fn reserved_slots_on_track(
        self,
        is_last_in_cylinder: bool,
        tracks_from_zone_end: u32,
        tracks_from_disk_end: u32,
        spt: u32,
    ) -> u32 {
        match self {
            SpareScheme::None => 0,
            SpareScheme::SectorsPerTrack(n) => n.min(spt),
            SpareScheme::SectorsPerCylinder(n) => {
                if is_last_in_cylinder {
                    n.min(spt)
                } else {
                    0
                }
            }
            SpareScheme::TracksPerZone(n) => {
                if tracks_from_zone_end < n {
                    spt
                } else {
                    0
                }
            }
            SpareScheme::TracksAtEnd(n) => {
                if tracks_from_disk_end < n {
                    spt
                } else {
                    0
                }
            }
        }
    }

    /// The slip domain implied by the scheme: how far a slipped defect
    /// perturbs subsequent LBNs.
    pub(crate) fn slip_domain(self) -> SlipDomain {
        match self {
            SpareScheme::None => SlipDomain::Disk,
            SpareScheme::SectorsPerTrack(_) => SlipDomain::Track,
            SpareScheme::SectorsPerCylinder(_) => SlipDomain::Cylinder,
            SpareScheme::TracksPerZone(_) => SlipDomain::Zone,
            SpareScheme::TracksAtEnd(_) => SlipDomain::Disk,
        }
    }
}

/// The region within which a slipped defect shifts subsequent LBNs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlipDomain {
    Track,
    Cylinder,
    Zone,
    Disk,
}

/// How factory defects are folded into the LBN mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DefectPolicy {
    /// Skip the defective slot and shift subsequent LBNs (the common case).
    #[default]
    Slip,
    /// Keep the nominal mapping and redirect the affected LBN to a spare
    /// slot in the same spare domain.
    Remap,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_track_scheme_reserves_on_every_track() {
        let s = SpareScheme::SectorsPerTrack(4);
        assert_eq!(s.reserved_slots_on_track(false, 10, 100, 100), 4);
        assert_eq!(s.reserved_slots_on_track(true, 0, 0, 100), 4);
        // Never more than the track holds.
        assert_eq!(s.reserved_slots_on_track(false, 3, 9, 2), 2);
    }

    #[test]
    fn per_cylinder_scheme_reserves_only_on_last_track() {
        let s = SpareScheme::SectorsPerCylinder(8);
        assert_eq!(s.reserved_slots_on_track(false, 5, 5, 100), 0);
        assert_eq!(s.reserved_slots_on_track(true, 5, 5, 100), 8);
    }

    #[test]
    fn zone_tail_tracks_fully_reserved() {
        let s = SpareScheme::TracksPerZone(2);
        assert_eq!(s.reserved_slots_on_track(false, 0, 50, 100), 100);
        assert_eq!(s.reserved_slots_on_track(false, 1, 50, 100), 100);
        assert_eq!(s.reserved_slots_on_track(false, 2, 50, 100), 0);
    }

    #[test]
    fn disk_tail_tracks_fully_reserved() {
        let s = SpareScheme::TracksAtEnd(3);
        assert_eq!(s.reserved_slots_on_track(false, 9, 2, 100), 100);
        assert_eq!(s.reserved_slots_on_track(false, 9, 3, 100), 0);
    }

    #[test]
    fn none_scheme_reserves_nothing() {
        let s = SpareScheme::None;
        assert_eq!(s.reserved_slots_on_track(true, 0, 0, 100), 0);
    }

    #[test]
    fn defect_location_orders_by_cyl_head_slot() {
        let a = DefectLocation::new(1, 0, 50);
        let b = DefectLocation::new(1, 1, 0);
        let c = DefectLocation::new(2, 0, 0);
        assert!(a < b && b < c);
    }
}
