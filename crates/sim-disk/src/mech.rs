//! Mechanical timing: seek curve, rotation, and head switches.
//!
//! The seek curve uses the classic three-coefficient model
//! `seek(d) = a·√d + b·d + c` (for cylinder distance `d > 0`), with the
//! coefficients solved from three published numbers — single-cylinder,
//! average, and full-strobe seek time. The average constraint uses the exact
//! expectations for a uniformly random pair of cylinders on `[0, C]`:
//! `E[d] = C/3` and `E[√d] = (8/15)·√C`.

use crate::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// A calibrated seek-time curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeekCurve {
    a: f64, // ms per sqrt(cylinder)
    b: f64, // ms per cylinder
    c: f64, // ms constant
    max_dist: f64,
}

impl SeekCurve {
    /// Calibrates a curve from published characteristics.
    ///
    /// * `single_ms` — time for a one-cylinder seek.
    /// * `avg_ms` — average seek time over uniformly random start/end pairs.
    /// * `full_ms` — full-strobe (edge-to-edge) seek time.
    /// * `cylinders` — number of cylinders on the drive.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are non-positive, non-finite, or mutually
    /// inconsistent (e.g. `avg >= full`), or if the solved curve would not be
    /// monotonically non-decreasing.
    pub fn calibrate(single_ms: f64, avg_ms: f64, full_ms: f64, cylinders: u32) -> Self {
        assert!(cylinders >= 2, "need at least two cylinders");
        assert!(
            single_ms > 0.0 && avg_ms > single_ms && full_ms > avg_ms,
            "seek characteristics must satisfy 0 < single < avg < full \
             (got {single_ms}, {avg_ms}, {full_ms})"
        );
        let cmax = f64::from(cylinders - 1);
        // Solve:
        //   a·√1   + b·1      + c = single
        //   a·E√d  + b·E d    + c = avg      (E√d = 8/15·√C, E d = C/3)
        //   a·√C   + b·C      + c = full
        let rows = [
            [1.0, 1.0, 1.0, single_ms],
            [(8.0 / 15.0) * cmax.sqrt(), cmax / 3.0, 1.0, avg_ms],
            [cmax.sqrt(), cmax, 1.0, full_ms],
        ];
        let sol = solve3(rows).expect("seek calibration system is singular");
        let curve = SeekCurve {
            a: sol[0],
            b: sol[1],
            c: sol[2],
            max_dist: cmax,
        };
        // Monotonicity sanity: derivative a/(2√d)+b ≥ 0 on [1, C]. It is
        // enough to check both ends when a and b have opposite signs.
        let deriv = |d: f64| curve.a / (2.0 * d.sqrt()) + curve.b;
        assert!(
            deriv(1.0) >= -1e-9 && deriv(cmax) >= -1e-9,
            "calibrated seek curve is not monotone; inputs are inconsistent"
        );
        curve
    }

    /// Seek time for a move of `distance` cylinders (0 means no seek).
    pub fn seek_time(&self, distance: u32) -> SimDur {
        if distance == 0 {
            return SimDur::ZERO;
        }
        let d = f64::from(distance).min(self.max_dist.max(1.0));
        SimDur::from_millis_f64(self.a * d.sqrt() + self.b * d + self.c)
    }

    /// Average seek time implied by the curve over uniform random pairs on
    /// a drive with `cylinders` cylinders (useful for verification).
    pub fn average_ms(&self, cylinders: u32) -> f64 {
        let cmax = f64::from(cylinders - 1);
        self.a * (8.0 / 15.0) * cmax.sqrt() + self.b * cmax / 3.0 + self.c
    }
}

/// Solves a 3×3 linear system given as rows `[a, b, c | rhs]` by Gaussian
/// elimination with partial pivoting. Returns `None` if singular.
fn solve3(mut m: [[f64; 4]; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .expect("non-finite matrix")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        for row in 0..3 {
            if row != col {
                let f = m[row][col] / m[col][col];
                let prow = m[col];
                for (cell, p) in m[row].iter_mut().zip(&prow).skip(col) {
                    *cell -= f * p;
                }
            }
        }
    }
    Some([m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]])
}

/// The spindle: constant-rate rotation shared by all surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spindle {
    period_ns: u64,
    /// `ceil(2^128 / period_ns)`: Lemire's fast-mod constant, so the phase
    /// reduction on the per-visit service path multiplies instead of
    /// dividing. Derived from `period_ns` in [`Spindle::new`] (the only
    /// constructor), so derived equality stays consistent.
    mod_magic: u128,
}

/// `n % d` where `magic == ceil(2^128 / d)`, via two multiplies instead of
/// a hardware divide (D. Lemire's fastmod, widened to 64-bit operands).
#[inline]
fn fast_mod(n: u64, magic: u128, d: u64) -> u64 {
    // low 128 bits of magic * n, then the high 64 bits of (that * d),
    // accumulated from 64-bit halves (a_hi*d is at most (2^64-1)^2, so the
    // carry addition cannot overflow a u128).
    let low = magic.wrapping_mul(u128::from(n));
    let a_lo = low & 0xFFFF_FFFF_FFFF_FFFF;
    let a_hi = low >> 64;
    let d = u128::from(d);
    ((a_hi * d + ((a_lo * d) >> 64)) >> 64) as u64
}

impl Spindle {
    /// Creates a spindle rotating at `rpm` revolutions per minute.
    ///
    /// # Panics
    ///
    /// Panics if `rpm` is zero.
    pub fn new(rpm: u32) -> Self {
        assert!(rpm > 0, "rpm must be positive");
        let period_ns = (60.0e9 / f64::from(rpm)).round() as u64;
        Spindle {
            period_ns,
            // floor((2^128 - 1) / d) + 1 == ceil(2^128 / d) for every d > 1
            // (and the d == 1 phase is identically zero below).
            mod_magic: (u128::MAX / u128::from(period_ns)) + 1,
        }
    }

    /// One full revolution.
    pub fn revolution(&self) -> SimDur {
        SimDur::from_ns(self.period_ns)
    }

    /// The spindle phase angle at `t`, in revolutions `[0, 1)`.
    pub fn angle_at(&self, t: SimTime) -> f64 {
        let rem = fast_mod(t.as_ns(), self.mod_magic, self.period_ns);
        debug_assert_eq!(rem, t.as_ns() % self.period_ns);
        rem as f64 / self.period_ns as f64
    }

    /// Time from `t` until the spindle reaches `angle` (revolutions in
    /// `[0, 1)`), i.e. the rotational delay to wait for a given media angle.
    pub fn time_to_angle(&self, t: SimTime, angle: f64) -> SimDur {
        let now = self.angle_at(t);
        let mut delta = angle - now;
        if delta < 0.0 {
            delta += 1.0;
        }
        // Guard against FP residue putting us a hair past a full turn.
        if delta >= 1.0 {
            delta -= 1.0;
        }
        SimDur::from_ns((delta * self.period_ns as f64).round() as u64)
    }

    /// The time to sweep `frac` of a revolution (e.g. to pass under `n`
    /// sector slots: `frac = n / spt`).
    pub fn sweep(&self, frac: f64) -> SimDur {
        SimDur::from_ns((frac * self.period_ns as f64).round() as u64)
    }

    /// Duration under one sector slot on a track with `spt` slots.
    pub fn slot_time(&self, spt: u32) -> SimDur {
        self.sweep(1.0 / f64::from(spt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_all_three_points() {
        let c = SeekCurve::calibrate(0.8, 4.7, 9.5, 8660);
        assert!((c.seek_time(1).as_millis_f64() - 0.8).abs() < 1e-6);
        assert!((c.seek_time(8659).as_millis_f64() - 9.5).abs() < 1e-6);
        assert!((c.average_ms(8660) - 4.7).abs() < 1e-9);
    }

    #[test]
    fn seek_curve_is_monotone() {
        let c = SeekCurve::calibrate(0.8, 4.7, 9.5, 8660);
        let mut last = SimDur::ZERO;
        for d in [0u32, 1, 2, 5, 10, 100, 1000, 4000, 8659] {
            let t = c.seek_time(d);
            assert!(t >= last, "seek({d}) regressed");
            last = t;
        }
    }

    #[test]
    fn zero_distance_is_free() {
        let c = SeekCurve::calibrate(1.0, 5.0, 10.0, 1000);
        assert_eq!(c.seek_time(0), SimDur::ZERO);
    }

    #[test]
    fn distances_beyond_max_clamp() {
        let c = SeekCurve::calibrate(1.0, 5.0, 10.0, 1000);
        assert_eq!(c.seek_time(5000), c.seek_time(999));
    }

    #[test]
    #[should_panic(expected = "seek characteristics")]
    fn inconsistent_inputs_panic() {
        let _ = SeekCurve::calibrate(5.0, 4.0, 10.0, 1000);
    }

    #[test]
    fn empirical_average_matches_analytic() {
        // Monte-Carlo check of the E[d], E[sqrt d] identities.
        let c = SeekCurve::calibrate(0.8, 4.7, 9.5, 8660);
        let mut sum = 0.0;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rnd = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as u32 % 8660
        };
        let n = 200_000;
        for _ in 0..n {
            let (x, y) = (rnd(), rnd());
            sum += c.seek_time(x.abs_diff(y)).as_millis_f64();
        }
        let avg = sum / f64::from(n);
        assert!((avg - 4.7).abs() < 0.05, "monte-carlo average {avg} != 4.7");
    }

    #[test]
    fn spindle_angles_and_delays() {
        let s = Spindle::new(10_000); // 6 ms per revolution
        assert_eq!(s.revolution().as_ns(), 6_000_000);
        let t = SimTime::from_ns(1_500_000); // quarter turn
        assert!((s.angle_at(t) - 0.25).abs() < 1e-12);
        // Wait from 0.25 to 0.75: half a revolution.
        assert_eq!(s.time_to_angle(t, 0.75).as_ns(), 3_000_000);
        // Wait from 0.25 to 0.25: zero.
        assert_eq!(s.time_to_angle(t, 0.25).as_ns(), 0);
        // Wait from 0.25 to 0.0: three quarters.
        assert_eq!(s.time_to_angle(t, 0.0).as_ns(), 4_500_000);
    }

    #[test]
    fn fast_mod_matches_hardware_remainder() {
        // Every drive rpm the models use, plus awkward divisors (small,
        // power-of-two, near 2^32), against adversarial dividends.
        let divisors = [
            2u64,
            3,
            14,
            4096,
            5_555_555,
            5_999_999,
            6_000_000,
            8_333_333,
            (1 << 32) - 1,
            1 << 32,
        ];
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for &d in &divisors {
            let magic = (u128::MAX / u128::from(d)) + 1;
            for n in [0u64, 1, d - 1, d, d + 1, u64::MAX, u64::MAX - 1] {
                assert_eq!(fast_mod(n, magic, d), n % d, "n={n} d={d}");
            }
            for _ in 0..10_000 {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let n = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                assert_eq!(fast_mod(n, magic, d), n % d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn slot_time_divides_revolution() {
        let s = Spindle::new(10_000);
        assert_eq!(
            s.slot_time(528).as_ns(),
            (6_000_000.0 / 528.0_f64).round() as u64
        );
        assert_eq!(s.sweep(1.0), s.revolution());
    }
}
