//! Deterministic, seed-driven fault injection for the drive engine.
//!
//! Real drives are not the perfectly repeatable machines the rest of this
//! simulator models: media reads occasionally fail and are retried by
//! firmware, failing sectors get reallocated to spare space mid-life
//! (grown defects), mechanical times jitter from turbulence and thermal
//! drift, commands abort transiently on the bus, and some drives simply
//! refuse the `SEND/RECEIVE DIAGNOSTIC` address-translation commands the
//! DIXtrac extractor prefers. [`FaultConfig`] injects all of these into
//! [`crate::disk::Disk`] so the extraction and allocation layers above can
//! prove they degrade gracefully.
//!
//! # Determinism
//!
//! Every fault decision is a pure function of `(fault seed, request
//! sequence number, visit index, decision salt)` hashed through
//! SplitMix64: no shared RNG stream, no global state. Two drives built
//! from the same config replay the same faults for the same request
//! sequence, regardless of how many worker threads run *other* drives —
//! which is what keeps figure output bit-reproducible at any `--threads`.
//!
//! # Zero-cost when off
//!
//! [`FaultConfig::default`] disables every mechanism. The engine guards
//! each fault hook behind [`FaultConfig::enabled`] (one boolean test per
//! request), so a fault-free run takes exactly the code path — and
//! produces byte-identical output — it did before this module existed.

use crate::{SimDur, SimTime};
use std::fmt;

/// Distribution of multiplicative timing jitter applied to one mechanical
/// phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Jitter {
    /// No jitter (the default).
    #[default]
    Off,
    /// Uniform on `[-frac, +frac]`.
    Uniform(f64),
    /// Gaussian with standard deviation `frac` (clamped to ±4σ so a
    /// pathological tail cannot stall the simulation).
    Gaussian(f64),
}

impl Jitter {
    /// True if this jitter source is active.
    pub fn is_on(&self) -> bool {
        !matches!(self, Jitter::Off)
    }

    /// Draws the signed jitter fraction for hash key `key`.
    fn draw(&self, key: u64) -> f64 {
        match *self {
            Jitter::Off => 0.0,
            Jitter::Uniform(f) => (2.0 * unit(key) - 1.0) * f,
            Jitter::Gaussian(sigma) => {
                // Box-Muller over two decorrelated unit draws; the vendored
                // rand stub has no normal distribution.
                let u1 = unit(key).max(1e-12);
                let u2 = unit(key.wrapping_add(0x9e37_79b9_7f4a_7c15));
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (z * sigma).clamp(-4.0 * sigma, 4.0 * sigma)
            }
        }
    }

    /// Applies this jitter multiplicatively to `dur`: `dur * (1 + x)`,
    /// clamped at zero.
    pub fn apply(&self, dur: SimDur, key: u64) -> SimDur {
        if !self.is_on() {
            return dur;
        }
        let scaled = dur.as_ns() as f64 * (1.0 + self.draw(key));
        SimDur::from_ns(scaled.max(0.0).round() as u64)
    }

    /// A non-negative extra delay of up to `base` scaled by a draw:
    /// `max(0, x) * base`. Used for rotational jitter, where the platter
    /// can only ever present data *later* than the ideal angle.
    pub fn extra(&self, base: SimDur, key: u64) -> SimDur {
        if !self.is_on() {
            return SimDur::ZERO;
        }
        let x = self.draw(key).max(0.0);
        SimDur::from_ns((base.as_ns() as f64 * x).round() as u64)
    }
}

/// Configuration of every injectable fault. All rates default to zero and
/// all jitter sources default to [`Jitter::Off`]; the default config is
/// bit-for-bit equivalent to no fault layer at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-LBN probability (in events per million sector transfers) that a
    /// media access fails and is recovered by a firmware retry costing one
    /// extra revolution.
    pub media_per_million: u32,
    /// Probability (per million, conditional on a media error) that the
    /// failing sector is reallocated to spare space as a grown defect,
    /// shifting the LBN mapping for the rest of the run.
    pub grown_per_million: u32,
    /// Per-command probability (per million) of a transient failure: the
    /// drive returns CHECK CONDITION / ABORTED COMMAND and the host must
    /// retry. [`crate::disk::Disk::service`] recovers internally (charging
    /// [`FaultConfig::transient_retry`] per attempt);
    /// [`crate::disk::Disk::try_service`] surfaces the error.
    pub transient_per_million: u32,
    /// Time one internal transient-recovery attempt costs.
    pub transient_retry: SimDur,
    /// Multiplicative jitter on seek times.
    pub seek_jitter: Jitter,
    /// Multiplicative jitter on head-switch times.
    pub head_switch_jitter: Jitter,
    /// Rotational jitter: an extra positive delay per mechanical visit of
    /// up to `frac` revolutions (spindle speed variation means the target
    /// sector arrives late).
    pub rot_jitter: Jitter,
    /// The drive rejects `SEND/RECEIVE DIAGNOSTIC` address translation and
    /// `READ DEFECT DATA` (some real drives do); the SCSI layer returns
    /// an ILLEGAL REQUEST error and extraction must fall back to timing
    /// probes.
    pub diagnostics_unsupported: bool,
    /// Seed for every fault decision.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            media_per_million: 0,
            grown_per_million: 0,
            transient_per_million: 0,
            transient_retry: SimDur::from_micros_f64(500.0),
            seek_jitter: Jitter::Off,
            head_switch_jitter: Jitter::Off,
            rot_jitter: Jitter::Off,
            diagnostics_unsupported: false,
            seed: 0,
        }
    }
}

/// Decision salts, one per kind of draw, so the per-request hash streams
/// never collide.
const SALT_MEDIA: u64 = 1;
const SALT_GROWN: u64 = 2;
const SALT_TRANSIENT: u64 = 3;
const SALT_SEEK: u64 = 4;
const SALT_HEAD_SWITCH: u64 = 5;
const SALT_ROT: u64 = 6;
const SALT_MEDIA_SLOT: u64 = 7;

impl FaultConfig {
    /// True if any engine-visible fault mechanism is active (the
    /// diagnostics mode only affects the SCSI layer and does not perturb
    /// the engine).
    pub fn enabled(&self) -> bool {
        self.media_per_million > 0
            || self.transient_per_million > 0
            || self.seek_jitter.is_on()
            || self.head_switch_jitter.is_on()
            || self.rot_jitter.is_on()
    }

    /// Hash key for a `(request, visit, salt)` decision.
    fn key(&self, rid: u64, visit: u64, salt: u64) -> u64 {
        splitmix(
            self.seed ^ splitmix(rid.wrapping_mul(0x100_0193).wrapping_add(visit)) ^ (salt << 56),
        )
    }

    /// Whether the media transfer of `sectors` sectors in visit `visit` of
    /// request `rid` suffers a recovered error.
    pub(crate) fn media_error(&self, rid: u64, visit: u64, sectors: u64) -> bool {
        if self.media_per_million == 0 {
            return false;
        }
        let p = f64::from(self.media_per_million) / 1e6;
        // Per-visit failure probability 1 - (1-p)^n.
        let p_visit = 1.0 - (1.0 - p).powi(sectors.min(1 << 20) as i32);
        unit(self.key(rid, visit, SALT_MEDIA)) < p_visit
    }

    /// Whether a media error in this visit escalates to a grown defect.
    pub(crate) fn grows_defect(&self, rid: u64, visit: u64) -> bool {
        self.grown_per_million > 0
            && unit(self.key(rid, visit, SALT_GROWN)) < f64::from(self.grown_per_million) / 1e6
    }

    /// Offset (within the visit's sector count) of the failing sector.
    pub(crate) fn failing_sector(&self, rid: u64, visit: u64, sectors: u64) -> u64 {
        self.key(rid, visit, SALT_MEDIA_SLOT) % sectors.max(1)
    }

    /// Whether command `rid`'s transient-failure draw for `attempt` fires.
    pub(crate) fn transient(&self, rid: u64, attempt: u64) -> bool {
        self.transient_per_million > 0
            && unit(self.key(rid, attempt, SALT_TRANSIENT))
                < f64::from(self.transient_per_million) / 1e6
    }

    /// Jittered seek duration for visit `visit` of request `rid`.
    pub(crate) fn jitter_seek(&self, dur: SimDur, rid: u64, visit: u64) -> SimDur {
        self.seek_jitter.apply(dur, self.key(rid, visit, SALT_SEEK))
    }

    /// Jittered head-switch duration.
    pub(crate) fn jitter_head_switch(&self, dur: SimDur, rid: u64, visit: u64) -> SimDur {
        self.head_switch_jitter
            .apply(dur, self.key(rid, visit, SALT_HEAD_SWITCH))
    }

    /// Extra rotational delay for one mechanical visit, in fractions of a
    /// revolution.
    pub(crate) fn rot_extra(&self, revolution: SimDur, rid: u64, visit: u64) -> SimDur {
        self.rot_jitter
            .extra(revolution, self.key(rid, visit, SALT_ROT))
    }

    /// Parses a `--faults` spec: comma-separated `key=value` entries.
    ///
    /// | entry | meaning |
    /// |---|---|
    /// | `media=<ppm>` | recovered media errors per million sectors |
    /// | `grown=<ppm>` | grown-defect escalations per million (given a media error) |
    /// | `transient=<ppm>` | transient command failures per million commands |
    /// | `seek=<dist>` | seek-time jitter |
    /// | `hs=<dist>` | head-switch jitter |
    /// | `rot=<dist>` | rotational jitter |
    /// | `nodiag` | diagnostic commands unsupported |
    ///
    /// `<dist>` is `uniform:<frac>` or `gauss:<frac>` with `0 < frac ≤ 1`
    /// (e.g. `gauss:0.05`). The seed is set separately (`--fault-seed`).
    /// Each key may appear at most once: a repeated key is a
    /// [`SpecError::DuplicateKey`], never a silent last-one-wins.
    ///
    /// ```
    /// use sim_disk::fault::{FaultConfig, Jitter, SpecError};
    /// let f = FaultConfig::parse_spec("media=500,rot=gauss:0.05,nodiag").unwrap();
    /// assert_eq!(f.media_per_million, 500);
    /// assert_eq!(f.rot_jitter, Jitter::Gaussian(0.05));
    /// assert!(f.diagnostics_unsupported);
    /// assert!(FaultConfig::parse_spec("media=lots").is_err());
    /// assert_eq!(
    ///     FaultConfig::parse_spec("media=1,media=2"),
    ///     Err(SpecError::DuplicateKey { key: "media".to_string() })
    /// );
    /// ```
    pub fn parse_spec(spec: &str) -> Result<FaultConfig, SpecError> {
        let mut cfg = FaultConfig::default();
        if spec.trim().is_empty() {
            return Err(SpecError::Empty);
        }
        // One bit per known key, in KNOWN_KEYS order, to reject duplicates.
        let mut seen = [false; KNOWN_KEYS.len()];
        let mut mark = |key: &str| -> Result<(), SpecError> {
            let idx = KNOWN_KEYS.iter().position(|&k| k == key).expect("known");
            if seen[idx] {
                return Err(SpecError::DuplicateKey {
                    key: key.to_string(),
                });
            }
            seen[idx] = true;
            Ok(())
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part == "nodiag" {
                mark("nodiag")?;
                cfg.diagnostics_unsupported = true;
                continue;
            }
            let (key, value) = part.split_once('=').ok_or_else(|| SpecError::NotKeyValue {
                entry: part.to_string(),
            })?;
            let ppm = |v: &str| -> Result<u32, SpecError> {
                v.parse::<u32>().map_err(|_| SpecError::BadRate {
                    key: key.to_string(),
                    value: v.to_string(),
                })
            };
            match key {
                "media" | "grown" | "transient" | "seek" | "hs" | "rot" => mark(key)?,
                other => {
                    return Err(SpecError::UnknownKey {
                        key: other.to_string(),
                    })
                }
            }
            match key {
                "media" => cfg.media_per_million = ppm(value)?,
                "grown" => cfg.grown_per_million = ppm(value)?,
                "transient" => cfg.transient_per_million = ppm(value)?,
                "seek" => cfg.seek_jitter = parse_jitter(value)?,
                "hs" => cfg.head_switch_jitter = parse_jitter(value)?,
                "rot" => cfg.rot_jitter = parse_jitter(value)?,
                _ => unreachable!("filtered above"),
            }
        }
        Ok(cfg)
    }
}

/// Every key the `--faults` grammar accepts, in documentation order.
const KNOWN_KEYS: [&str; 7] = ["media", "grown", "transient", "seek", "hs", "rot", "nodiag"];

/// Why a `--faults` spec failed to parse (see
/// [`FaultConfig::parse_spec`]). Typed so callers can branch on the
/// failure instead of substring-matching a message.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec was empty or all whitespace.
    Empty,
    /// An entry was neither `key=value` nor `nodiag`.
    NotKeyValue {
        /// The offending entry.
        entry: String,
    },
    /// A rate value was not a whole per-million count.
    BadRate {
        /// The entry's key.
        key: String,
        /// The unparseable value.
        value: String,
    },
    /// The key is not part of the grammar.
    UnknownKey {
        /// The unknown key.
        key: String,
    },
    /// The same key appeared more than once in one spec.
    DuplicateKey {
        /// The repeated key.
        key: String,
    },
    /// A jitter value was not `uniform:<frac>`/`gauss:<frac>`.
    BadJitterShape {
        /// The offending value.
        value: String,
    },
    /// A jitter fraction failed to parse as a number.
    BadJitterFraction {
        /// The unparseable fraction.
        frac: String,
    },
    /// A jitter fraction parsed but fell outside `(0, 1]`.
    JitterFractionRange {
        /// The out-of-range fraction.
        frac: f64,
    },
    /// The jitter distribution name is not `uniform` or `gauss`.
    UnknownJitter {
        /// The unknown distribution name.
        kind: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty --faults spec"),
            SpecError::NotKeyValue { entry } => {
                write!(f, "fault entry `{entry}` is not `key=value` or `nodiag`")
            }
            SpecError::BadRate { key, value } => {
                write!(
                    f,
                    "fault rate `{value}` for `{key}` is not a whole per-million"
                )
            }
            SpecError::UnknownKey { key } => write!(
                f,
                "unknown fault key `{key}` (known: media, grown, transient, seek, hs, rot, nodiag)"
            ),
            SpecError::DuplicateKey { key } => {
                write!(f, "duplicate fault key `{key}` in one spec")
            }
            SpecError::BadJitterShape { value } => {
                write!(
                    f,
                    "jitter `{value}` is not `uniform:<frac>` or `gauss:<frac>`"
                )
            }
            SpecError::BadJitterFraction { frac } => {
                write!(f, "jitter fraction `{frac}` is not a number")
            }
            SpecError::JitterFractionRange { frac } => {
                write!(f, "jitter fraction {frac} must be in (0, 1]")
            }
            SpecError::UnknownJitter { kind } => {
                write!(f, "unknown jitter distribution `{kind}`")
            }
        }
    }
}

impl std::error::Error for SpecError {}

fn parse_jitter(value: &str) -> Result<Jitter, SpecError> {
    let (kind, frac) = value
        .split_once(':')
        .ok_or_else(|| SpecError::BadJitterShape {
            value: value.to_string(),
        })?;
    let frac: f64 = frac.parse().map_err(|_| SpecError::BadJitterFraction {
        frac: frac.to_string(),
    })?;
    if !(frac > 0.0 && frac <= 1.0) {
        return Err(SpecError::JitterFractionRange { frac });
    }
    match kind {
        "uniform" => Ok(Jitter::Uniform(frac)),
        "gauss" => Ok(Jitter::Gaussian(frac)),
        other => Err(SpecError::UnknownJitter {
            kind: other.to_string(),
        }),
    }
}

/// Running totals of injected faults, kept by the drive and readable via
/// [`crate::disk::Disk::fault_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Media errors recovered by firmware retry.
    pub media_errors: u64,
    /// Grown defects successfully remapped to spare space.
    pub grown_defects: u64,
    /// Grown-defect escalations that found no spare space (the error was
    /// still recovered, but the mapping did not change).
    pub grown_defects_unspared: u64,
    /// Transient command failures recovered inside [`crate::disk::Disk::service`].
    pub transient_recovered: u64,
    /// Transient command failures surfaced by [`crate::disk::Disk::try_service`].
    pub transient_surfaced: u64,
}

impl FaultStats {
    /// The totals as `(metric name, value)` pairs, for export into an
    /// observability registry.
    pub fn pairs(&self) -> [(&'static str, u64); 5] {
        [
            ("fault.media_errors", self.media_errors),
            ("fault.grown_defects", self.grown_defects),
            ("fault.grown_defects_unspared", self.grown_defects_unspared),
            ("fault.transient_recovered", self.transient_recovered),
            ("fault.transient_surfaced", self.transient_surfaced),
        ]
    }
}

/// SCSI sense keys the fault layer can attach to a failed command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenseKey {
    /// Unrecovered (or host-visible) media error.
    MediumError,
    /// Transient failure; the host should retry the command.
    AbortedCommand,
    /// The command or its arguments are invalid for this drive.
    IllegalRequest,
}

impl fmt::Display for SenseKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SenseKey::MediumError => "MEDIUM ERROR",
            SenseKey::AbortedCommand => "ABORTED COMMAND",
            SenseKey::IllegalRequest => "ILLEGAL REQUEST",
        })
    }
}

/// A drive-level command failure from [`crate::disk::Disk::try_service`]:
/// the sense key and the instant the CHECK CONDITION reached the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommandFault {
    /// Why the command failed.
    pub sense: SenseKey,
    /// When the failure was reported (the host clock must advance to
    /// here).
    pub at: SimTime,
}

impl fmt::Display for CommandFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CHECK CONDITION ({}) at {}", self.sense, self.at)
    }
}

impl std::error::Error for CommandFault {}

/// SplitMix64: the 64-bit finalizer used for all fault decisions.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(key: u64) -> f64 {
    (splitmix(key) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_off() {
        let f = FaultConfig::default();
        assert!(!f.enabled());
        assert!(!f.media_error(0, 0, 1000));
        assert!(!f.transient(0, 0));
        assert_eq!(
            f.jitter_seek(SimDur::from_millis_f64(5.0), 1, 2),
            SimDur::from_millis_f64(5.0)
        );
        assert_eq!(
            f.rot_extra(SimDur::from_millis_f64(6.0), 1, 2),
            SimDur::ZERO
        );
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let mut a = FaultConfig {
            media_per_million: 5000,
            ..FaultConfig::default()
        };
        let hits: Vec<bool> = (0..2000).map(|r| a.media_error(r, 0, 100)).collect();
        let again: Vec<bool> = (0..2000).map(|r| a.media_error(r, 0, 100)).collect();
        assert_eq!(hits, again, "same seed replays the same faults");
        a.seed = 1;
        let other: Vec<bool> = (0..2000).map(|r| a.media_error(r, 0, 100)).collect();
        assert_ne!(hits, other, "a different seed draws different faults");
    }

    #[test]
    fn media_error_rate_tracks_the_configured_probability() {
        let f = FaultConfig {
            media_per_million: 2000, // p=0.002/sector; 100 sectors → ~18%/visit
            ..FaultConfig::default()
        };
        let n = 10_000;
        let hits = (0..n).filter(|&r| f.media_error(r, 0, 100)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.12..0.25).contains(&frac), "observed rate {frac}");
    }

    #[test]
    fn uniform_jitter_stays_in_band_and_gaussian_is_centred() {
        let uni = Jitter::Uniform(0.1);
        let base = SimDur::from_millis_f64(10.0);
        let mut sum = 0.0;
        for k in 0..4000 {
            let d = uni.apply(base, k).as_millis_f64();
            assert!((9.0..=11.0).contains(&d), "uniform draw {d}");
            sum += d;
        }
        assert!(
            (sum / 4000.0 - 10.0).abs() < 0.1,
            "uniform mean {}",
            sum / 4000.0
        );

        let gauss = Jitter::Gaussian(0.05);
        let mut sum = 0.0;
        for k in 0..4000 {
            let d = gauss.apply(base, k).as_millis_f64();
            assert!(
                (7.5..=12.5).contains(&d),
                "gaussian clamped at 4 sigma: {d}"
            );
            sum += d;
        }
        assert!(
            (sum / 4000.0 - 10.0).abs() < 0.1,
            "gaussian mean {}",
            sum / 4000.0
        );
    }

    #[test]
    fn rot_extra_is_never_negative() {
        let f = FaultConfig {
            rot_jitter: Jitter::Gaussian(0.1),
            ..FaultConfig::default()
        };
        let rev = SimDur::from_millis_f64(6.0);
        for r in 0..1000 {
            let extra = f.rot_extra(rev, r, 0);
            assert!(extra.as_millis_f64() <= 0.1 * 4.0 * 6.0 + 1e-9);
        }
        assert!((0..1000).any(|r| f.rot_extra(rev, r, 0) > SimDur::ZERO));
    }

    #[test]
    fn spec_round_trips_the_documented_grammar() {
        let f = FaultConfig::parse_spec(
            "media=500, grown=200000, transient=100, seek=uniform:0.02, hs=gauss:0.03, rot=gauss:0.05, nodiag",
        )
        .unwrap();
        assert_eq!(f.media_per_million, 500);
        assert_eq!(f.grown_per_million, 200_000);
        assert_eq!(f.transient_per_million, 100);
        assert_eq!(f.seek_jitter, Jitter::Uniform(0.02));
        assert_eq!(f.head_switch_jitter, Jitter::Gaussian(0.03));
        assert_eq!(f.rot_jitter, Jitter::Gaussian(0.05));
        assert!(f.diagnostics_unsupported);
        assert!(f.enabled());
    }

    #[test]
    fn spec_rejects_malformed_input_with_context() {
        for (spec, needle) in [
            ("", "empty"),
            ("media", "key=value"),
            ("media=lots", "per-million"),
            ("bogus=1", "unknown fault key"),
            ("seek=0.05", "uniform:<frac>"),
            ("seek=cauchy:0.05", "unknown jitter distribution"),
            ("rot=gauss:abc", "not a number"),
            ("rot=gauss:nan", "must be in (0, 1]"), // NaN parses but fails the range check
            ("rot=gauss:1.5", "must be in (0, 1]"),
            ("rot=gauss:0", "must be in (0, 1]"),
            ("media=1,media=2", "duplicate fault key"),
        ] {
            let err = FaultConfig::parse_spec(spec).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "spec `{spec}`: {msg}");
        }
    }

    #[test]
    fn spec_rejects_duplicate_keys_with_a_typed_error() {
        for (spec, key) in [
            ("media=1,media=2", "media"),
            ("media=1,grown=2,grown=3", "grown"),
            ("transient=5, transient=5", "transient"), // even identical values
            ("seek=uniform:0.1,seek=gauss:0.1", "seek"),
            ("hs=gauss:0.1,rot=gauss:0.1,hs=gauss:0.2", "hs"),
            ("rot=gauss:0.1,rot=gauss:0.1", "rot"),
            ("nodiag,nodiag", "nodiag"),
        ] {
            assert_eq!(
                FaultConfig::parse_spec(spec),
                Err(SpecError::DuplicateKey {
                    key: key.to_string()
                }),
                "spec `{spec}`"
            );
        }
        // A key repeated across *different* specs is fine — duplication is
        // judged within one spec only.
        assert!(FaultConfig::parse_spec("media=1").is_ok());
        assert!(FaultConfig::parse_spec("media=2").is_ok());
    }

    #[test]
    fn spec_errors_are_matchable_variants() {
        use SpecError::*;
        assert_eq!(FaultConfig::parse_spec(" "), Err(Empty));
        assert!(matches!(
            FaultConfig::parse_spec("media"),
            Err(NotKeyValue { .. })
        ));
        assert!(matches!(
            FaultConfig::parse_spec("media=lots"),
            Err(BadRate { .. })
        ));
        assert!(matches!(
            FaultConfig::parse_spec("bogus=1"),
            Err(UnknownKey { .. })
        ));
        assert!(matches!(
            FaultConfig::parse_spec("seek=0.05"),
            Err(BadJitterShape { .. })
        ));
        assert!(matches!(
            FaultConfig::parse_spec("seek=gauss:abc"),
            Err(BadJitterFraction { .. })
        ));
        assert!(matches!(
            FaultConfig::parse_spec("seek=gauss:2"),
            Err(JitterFractionRange { .. })
        ));
        assert!(matches!(
            FaultConfig::parse_spec("seek=cauchy:0.5"),
            Err(UnknownJitter { .. })
        ));
    }

    #[test]
    fn nodiag_alone_does_not_enable_engine_faults() {
        let f = FaultConfig::parse_spec("nodiag").unwrap();
        assert!(f.diagnostics_unsupported);
        assert!(!f.enabled(), "nodiag must not perturb the engine");
    }

    #[test]
    fn stats_pairs_name_every_counter() {
        let stats = FaultStats {
            media_errors: 1,
            grown_defects: 2,
            grown_defects_unspared: 3,
            transient_recovered: 4,
            transient_surfaced: 5,
        };
        let pairs = stats.pairs();
        assert_eq!(pairs.len(), 5);
        assert!(pairs.iter().all(|(name, _)| name.starts_with("fault.")));
        assert_eq!(pairs[0], ("fault.media_errors", 1));
    }

    #[test]
    fn sense_and_fault_display() {
        let fault = CommandFault {
            sense: SenseKey::AbortedCommand,
            at: SimTime::from_ns(1_500_000),
        };
        let text = fault.to_string();
        assert!(text.contains("ABORTED COMMAND"), "{text}");
        assert!(text.contains("CHECK CONDITION"), "{text}");
    }
}
