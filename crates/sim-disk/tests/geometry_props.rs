//! Property-based tests for the geometry engine: for arbitrary zoned
//! layouts, spare schemes, defect lists, and policies, the LBN↔physical
//! mapping must stay a bijection and the track map consistent.

use proptest::prelude::*;
use sim_disk::defects::{DefectLocation, DefectPolicy, SpareScheme};
use sim_disk::geometry::{GeometrySpec, Pba, ZoneSpec};

/// An arbitrary small-but-varied geometry spec with defects the spare
/// scheme can plausibly absorb.
fn arb_spec() -> impl Strategy<Value = GeometrySpec> {
    let zones = prop::collection::vec(
        (2u32..6, 20u32..120, 0u32..12, 0u32..12).prop_map(|(cyls, spt, ts, cs)| ZoneSpec {
            cylinders: cyls,
            spt,
            track_skew: ts,
            cyl_skew: cs,
        }),
        1..4,
    );
    let scheme = prop_oneof![
        Just(SpareScheme::SectorsPerTrack(3)),
        Just(SpareScheme::SectorsPerCylinder(6)),
        Just(SpareScheme::TracksPerZone(2)),
        Just(SpareScheme::TracksAtEnd(3)),
    ];
    let policy = prop_oneof![Just(DefectPolicy::Slip), Just(DefectPolicy::Remap)];
    (
        1u32..5,
        zones,
        scheme,
        policy,
        prop::collection::vec((0u32..1000, 0u32..5, 0u32..120), 0..6),
    )
        .prop_map(|(surfaces, zones, spare, policy, raw_defects)| {
            let total_cyls: u32 = zones.iter().map(|z| z.cylinders).sum();
            let defects = raw_defects
                .into_iter()
                .map(|(c, h, s)| {
                    let cyl = c % total_cyls;
                    // Clamp the slot into the owning zone's track.
                    let mut acc = 0;
                    let mut spt = zones[0].spt;
                    for z in &zones {
                        if cyl < acc + z.cylinders {
                            spt = z.spt;
                            break;
                        }
                        acc += z.cylinders;
                    }
                    DefectLocation::new(cyl, h % surfaces, s % spt)
                })
                .collect();
            GeometrySpec {
                surfaces,
                zones,
                spare,
                policy,
                defects,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every LBN maps to a physical location and back to itself.
    #[test]
    fn lbn_mapping_is_a_bijection(spec in arb_spec()) {
        // Some random specs legitimately exceed their spare budget; those
        // must error cleanly, everything else must round-trip.
        if let Ok(geom) = spec.build() {
            let cap = geom.capacity_lbns();
            prop_assert!(cap > 0);
            // Check a stride of LBNs plus the edges.
            let stride = (cap / 257).max(1);
            for lbn in (0..cap).step_by(stride as usize).chain([cap - 1]) {
                let pba = geom.lbn_to_pba(lbn).expect("in range");
                prop_assert_eq!(geom.pba_to_lbn(pba), Some(lbn), "lbn {}", lbn);
            }
        }
    }

    /// Distinct LBNs never share a physical sector.
    #[test]
    fn no_two_lbns_share_a_slot(spec in arb_spec()) {
        if let Ok(geom) = spec.build() {
            let cap = geom.capacity_lbns().min(4000);
            let mut seen = std::collections::HashSet::new();
            for lbn in 0..cap {
                let pba = geom.lbn_to_pba(lbn).expect("in range");
                prop_assert!(seen.insert(pba), "slot {:?} assigned twice", pba);
            }
        }
    }

    /// Track bounds partition the LBN space: consecutive tracks with LBNs
    /// tile [0, capacity) without gaps or overlaps.
    #[test]
    fn tracks_tile_the_lbn_space(spec in arb_spec()) {
        if let Ok(geom) = spec.build() {
            let mut next = 0u64;
            for (_, t) in geom.iter_tracks() {
                prop_assert_eq!(t.first_lbn(), next);
                next = t.end_lbn();
            }
            prop_assert_eq!(next, geom.capacity_lbns());
        }
    }

    /// Defective slots hold no LBN, and under slipping every LBN of a
    /// defective track still lands on that track (no remap table entries).
    #[test]
    fn defects_hold_no_lbns(spec in arb_spec()) {
        let defects = spec.defects.clone();
        let policy = spec.policy;
        if let Ok(geom) = spec.build() {
            for d in defects {
                prop_assert_eq!(geom.pba_to_lbn(Pba::new(d.cyl, d.head, d.slot)), None);
            }
            if policy == DefectPolicy::Slip {
                prop_assert_eq!(geom.remapped_lbns().count(), 0);
            }
        }
    }

    /// A grown defect relocates exactly one LBN and leaves every other
    /// mapping untouched.
    #[test]
    fn grown_defect_is_local(spec in arb_spec(), pick in 0u64..u64::MAX) {
        if let Ok(mut geom) = spec.build() {
            let cap = geom.capacity_lbns();
            let victim = pick % cap;
            let stride = (cap / 97).max(1);
            let before: Vec<(u64, Pba)> = (0..cap)
                .step_by(stride as usize)
                .map(|l| (l, geom.lbn_to_pba(l).expect("in range")))
                .collect();
            if geom.add_grown_defect(victim).is_ok() {
                for (l, pba) in before {
                    if l == victim {
                        prop_assert_ne!(geom.lbn_to_pba(l).expect("in range"), pba);
                    } else {
                        prop_assert_eq!(geom.lbn_to_pba(l).expect("in range"), pba);
                    }
                }
            }
        }
    }
}
