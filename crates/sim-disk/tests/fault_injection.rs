//! Integration tests of the fault-injection layer against a real drive
//! run: determinism, zero-perturbation when off, media-error accounting,
//! grown-defect remapping, transient recovery vs. surfacing, and trace
//! accounting under faults.

use sim_disk::disk::{Disk, Request};
use sim_disk::fault::{FaultConfig, Jitter, SenseKey};
use sim_disk::models;
use sim_disk::trace::{MemorySink, TraceEvent, Tracer};
use sim_disk::{SimDur, SimTime};
use std::sync::{Arc, Mutex};

/// A deterministic mixed workload; returns the completion stream.
fn run(disk: &mut Disk, count: u64) -> Vec<(SimTime, u64)> {
    let cap = disk.geometry().capacity_lbns();
    let mut t = SimTime::ZERO;
    let mut out = Vec::new();
    for i in 0..count {
        let lbn = (i * 2_654_435_761) % (cap - 1024);
        let req = if i % 4 == 3 {
            Request::write(lbn, 16 + (i * 37) % 512)
        } else {
            Request::read(lbn, 16 + (i * 37) % 512)
        };
        let c = disk.service(req, t);
        t = c.completion;
        out.push((c.completion, c.breakdown.total().as_ns()));
    }
    out
}

fn faulty_config() -> FaultConfig {
    FaultConfig {
        media_per_million: 2000,
        grown_per_million: 500_000,
        transient_per_million: 20_000,
        seek_jitter: Jitter::Gaussian(0.05),
        head_switch_jitter: Jitter::Uniform(0.05),
        rot_jitter: Jitter::Gaussian(0.02),
        seed: 0xfa17,
        ..FaultConfig::default()
    }
}

#[test]
fn try_service_equals_service_with_faults_off() {
    let mut a = Disk::new(models::small_test_disk());
    let mut b = Disk::new(models::small_test_disk());
    let mut t = SimTime::ZERO;
    for i in 0..100u64 {
        let req = Request::read((i * 977) % 10_000, 64);
        let ca = a.service(req, t);
        let cb = b.try_service(req, t).expect("no faults configured");
        assert_eq!(ca.completion, cb.completion);
        assert_eq!(ca.breakdown, cb.breakdown);
        t = ca.completion;
    }
    assert_eq!(a.fault_stats(), Default::default());
}

#[test]
fn fault_runs_replay_bit_identically() {
    let mk = || {
        let mut cfg = models::small_test_disk();
        cfg.fault = faulty_config();
        Disk::new(cfg)
    };
    let (mut a, mut b) = (mk(), mk());
    assert_eq!(run(&mut a, 400), run(&mut b, 400));
    assert_eq!(a.fault_stats(), b.fault_stats());
    assert!(a.fault_stats().media_errors > 0, "workload must hit faults");
}

#[test]
fn different_fault_seeds_draw_different_faults() {
    let mk = |seed| {
        let mut cfg = models::small_test_disk();
        cfg.fault = FaultConfig {
            seed,
            ..faulty_config()
        };
        Disk::new(cfg)
    };
    let (mut a, mut b) = (mk(1), mk(2));
    assert_ne!(run(&mut a, 400), run(&mut b, 400));
}

#[test]
fn media_errors_cost_revolutions_and_are_counted() {
    let mut cfg = models::small_test_disk();
    cfg.fault = FaultConfig {
        media_per_million: 20_000,
        ..FaultConfig::default()
    };
    let rev = cfg.spindle.revolution();
    let mut faulty = Disk::new(cfg);
    let mut clean = Disk::new(models::small_test_disk());
    let base: u64 = run(&mut clean, 300).iter().map(|(_, b)| b).sum();
    let with_faults: u64 = run(&mut faulty, 300).iter().map(|(_, b)| b).sum();
    let stats = faulty.fault_stats();
    assert!(stats.media_errors > 0);
    assert!(
        with_faults >= base + stats.media_errors * rev.as_ns(),
        "each media error must cost at least one revolution \
         ({with_faults} vs {base} + {} revs)",
        stats.media_errors
    );
}

#[test]
fn grown_defects_remap_sectors_mid_run() {
    let mut cfg = models::small_test_disk();
    // Give the drive spare space so reallocation can succeed.
    let mut spec = cfg.geometry.spec().clone();
    spec.spare = sim_disk::defects::SpareScheme::SectorsPerCylinder(8);
    cfg.geometry = spec.build().unwrap();
    cfg.fault = FaultConfig {
        media_per_million: 50_000,
        grown_per_million: 1_000_000,
        ..FaultConfig::default()
    };
    let mut d = Disk::new(cfg);
    let _ = run(&mut d, 300);
    let stats = d.fault_stats();
    assert!(stats.media_errors > 0);
    assert!(
        stats.grown_defects > 0,
        "every media error escalates at grown=1000000: {stats:?}"
    );
    // The geometry now carries the remaps (an LBN that errors twice is
    // re-remapped, so distinct remapped LBNs can be fewer than grow events).
    let cap = d.geometry().capacity_lbns();
    let remapped = (0..cap).filter(|&l| d.geometry().is_remapped(l)).count() as u64;
    assert!(remapped > 0 && remapped <= stats.grown_defects);
}

#[test]
fn transients_recover_in_service_and_surface_in_try_service() {
    let mut cfg = models::small_test_disk();
    cfg.fault = FaultConfig {
        transient_per_million: 300_000, // ~30 % per command
        transient_retry: SimDur::from_micros_f64(500.0),
        ..FaultConfig::default()
    };
    let overhead = cfg.cmd_overhead;

    // service(): never fails, charges retries to overhead.
    let mut d = Disk::new(cfg.clone());
    let mut t = SimTime::ZERO;
    let mut retried = 0;
    for i in 0..200u64 {
        let c = d.service(Request::read((i * 523) % 20_000, 32), t);
        if c.breakdown.overhead > overhead {
            retried += 1;
        }
        t = c.completion;
    }
    assert_eq!(d.fault_stats().transient_surfaced, 0);
    assert!(d.fault_stats().transient_recovered > 0);
    assert!(retried > 0, "some commands must show retry overhead");

    // try_service(): surfaces ABORTED COMMAND; the host retry (a fresh
    // command) eventually succeeds.
    let mut d = Disk::new(cfg);
    let mut t = SimTime::ZERO;
    let mut aborted = 0;
    for i in 0..200u64 {
        let mut attempts = 0;
        loop {
            match d.try_service(Request::read((i * 523) % 20_000, 32), t) {
                Ok(c) => {
                    t = c.completion;
                    break;
                }
                Err(fault) => {
                    assert_eq!(fault.sense, SenseKey::AbortedCommand);
                    assert!(fault.at >= t);
                    t = fault.at;
                    aborted += 1;
                    attempts += 1;
                    assert!(attempts < 50, "fresh draws must eventually succeed");
                }
            }
        }
    }
    assert!(aborted > 0);
    assert_eq!(d.fault_stats().transient_surfaced, aborted);
}

#[test]
fn try_service_rejects_out_of_range_requests() {
    let mut d = Disk::new(models::small_test_disk());
    let cap = d.geometry().capacity_lbns();
    let err = d.try_service(Request::read(cap - 1, 2), SimTime::ZERO);
    assert_eq!(err.unwrap_err().sense, SenseKey::IllegalRequest);
    // The drive is still usable afterwards.
    assert!(d.try_service(Request::read(0, 8), SimTime::ZERO).is_ok());
}

#[test]
fn jitter_perturbs_timings_but_preserves_accounting() {
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    let mut cfg = models::small_test_disk();
    cfg.fault = faulty_config();
    cfg.tracer = Some(Tracer::new(sink.clone()));
    let mut d = Disk::new(cfg);
    let _ = run(&mut d, 200);

    let events = sink.lock().unwrap().take_events();
    let mut fault_events = 0;
    let mut completes = 0;
    for e in &events {
        match e {
            TraceEvent::Fault { kind, .. } => {
                assert!(
                    [
                        "media_retry",
                        "grown_defect",
                        "grown_defect_unspared",
                        "transient_retry",
                        "transient_abort"
                    ]
                    .contains(&kind.as_str()),
                    "unexpected fault kind {kind}"
                );
                fault_events += 1;
            }
            TraceEvent::Complete {
                queue,
                overhead,
                seek,
                head_switch,
                rot_latency,
                media,
                bus,
                write_settle,
                response,
                ..
            } => {
                completes += 1;
                let sum = queue
                    + overhead
                    + seek
                    + head_switch
                    + rot_latency
                    + media
                    + bus
                    + write_settle;
                assert!(
                    response.abs_diff(sum) <= 20_000,
                    "under faults, phases sum to {sum} but response is {response}"
                );
            }
            _ => {}
        }
    }
    assert_eq!(completes, 200);
    assert!(fault_events > 0, "the fault stream must be visible");
    // Fault events survive the JSONL round trip.
    for e in events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Fault { .. }))
    {
        let back = TraceEvent::parse_json(&e.to_json()).expect("fault event parses");
        assert_eq!(&back, e);
    }
}
