//! Property-based tests for the log-linear latency histogram: edge cases
//! (empty, single sample, bucket boundaries) and the quantile invariants
//! every reader of `--metrics` output relies on.

use proptest::prelude::*;
use sim_disk::metrics::Histogram;

/// Nanosecond values spread across the full bucket layout: the exact
/// low range, sub-bucket edges around powers of two, and huge values.
fn arb_ns() -> impl Strategy<Value = u64> {
    (0u32..60, 0u64..1u64 << 20).prop_map(|(shift, jitter)| (1u64 << shift).wrapping_add(jitter))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// With no samples, every statistic reads as zero for any quantile.
    #[test]
    fn empty_histogram_is_all_zeros(q in 0.0f64..1.0) {
        let h = Histogram::new();
        prop_assert_eq!(h.count(), 0);
        prop_assert_eq!(h.percentile(q), 0);
        prop_assert_eq!(h.min_ns(), 0);
        prop_assert_eq!(h.max_ns(), 0);
        prop_assert_eq!(h.mean_ns(), 0.0);
    }

    /// A single sample is reported exactly at every quantile: the bucket
    /// edge is clamped to the true max, so quantization cannot show.
    #[test]
    fn single_sample_is_exact_at_every_quantile(v in arb_ns(), q in 0.0f64..1.0) {
        let mut h = Histogram::new();
        h.observe(v);
        prop_assert_eq!(h.count(), 1);
        prop_assert_eq!(h.min_ns(), v);
        prop_assert_eq!(h.max_ns(), v);
        prop_assert_eq!(h.mean_ns(), v as f64);
        prop_assert_eq!(h.percentile(q), v);
        prop_assert_eq!(h.percentile(1.0), v);
    }

    /// Quantiles are monotone in `q`, never exceed the true max, and the
    /// extreme quantiles respect the recorded range even with samples
    /// straddling sub-bucket boundaries.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in prop::collection::vec(arb_ns(), 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 2..8),
    ) {
        let mut h = Histogram::new();
        let mut max = 0u64;
        let mut min = u64::MAX;
        for &v in &values {
            h.observe(v);
            max = max.max(v);
            min = min.min(v);
        }
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = 0u64;
        for &q in &qs {
            let p = h.percentile(q);
            prop_assert!(p >= prev, "percentile not monotone: p({q}) = {p} < {prev}");
            prop_assert!(p <= max, "p({q}) = {p} exceeds max {max}");
            prev = p;
        }
        prop_assert_eq!(h.percentile(1.0), max);
        // p0 lands in the first occupied bucket; its upper edge is within
        // one sub-bucket (1/16) of the smallest sample.
        let p0 = h.percentile(0.0);
        prop_assert!(p0 >= min, "p0 {p0} below min {min}");
        prop_assert!(
            p0 as f64 <= min as f64 * (1.0 + 1.0 / 16.0) + 1.0,
            "p0 {p0} too far above min {min}"
        );
    }

    /// Exactly at and adjacent to sub-bucket boundaries (v = (16+s)·2^k
    /// and its neighbors), quantization error stays within the documented
    /// 1/16 relative bound.
    #[test]
    fn sub_bucket_boundaries_quantize_within_bound(
        k in 0u32..55,
        s in 0u64..16,
        off in 0i64..3,
    ) {
        let edge = (16 + s) << k;
        let v = edge.saturating_add_signed(off - 1); // edge-1, edge, edge+1
        let mut h = Histogram::new();
        h.observe(v);
        h.observe(v.saturating_add(1));
        // The lower sample's quantile may read from either sample's bucket,
        // but never below itself nor beyond the 1/16 bound above the max.
        let p50 = h.percentile(0.5);
        prop_assert!(p50 >= v, "p50 {p50} below observed {v}");
        prop_assert!(
            p50 as f64 <= (v + 1) as f64 * (1.0 + 1.0 / 16.0) + 1.0,
            "p50 {p50} out of bound for {v}"
        );
        prop_assert_eq!(h.percentile(1.0), v.saturating_add(1));
    }

    /// Merging preserves every quantile: merge(a, b) reports the same
    /// percentiles as observing the union directly.
    #[test]
    fn merge_preserves_quantiles(
        xs in prop::collection::vec(arb_ns(), 0..60),
        ys in prop::collection::vec(arb_ns(), 0..60),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for &v in &xs {
            a.observe(v);
            u.observe(v);
        }
        for &v in &ys {
            b.observe(v);
            u.observe(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), u.count());
        prop_assert_eq!(a.sum_ns(), u.sum_ns());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.percentile(q), u.percentile(q), "q = {}", q);
        }
    }
}
