//! Property-based tests for the closed-form rotational-window arithmetic:
//! for arbitrary zoned geometries, defect layouts, arrival angles, and
//! slot runs, [`sim_disk::rotation::window_closed`] must agree with the
//! per-sector reference scan [`sim_disk::rotation::window_scan`]
//! *bit-for-bit* — the engine's byte-identical-output guarantee rests on
//! this equivalence, not on approximate closeness.

use proptest::prelude::*;
use sim_disk::defects::{DefectLocation, DefectPolicy, SpareScheme};
use sim_disk::geometry::{GeometrySpec, ZoneSpec};
use sim_disk::rotation::{window_closed, window_scan, EPS};

/// An arbitrary small zoned spec with skews, spares, and defects, so
/// tracks get varied `angle0` values and slipped slot tables. Some specs
/// legitimately exceed their spare budget and fail to build; the test
/// skips those.
fn arb_spec() -> impl Strategy<Value = GeometrySpec> {
    let zones = prop::collection::vec(
        (2u32..5, 5u32..200, 0u32..40, 0u32..40).prop_map(|(cyls, spt, ts, cs)| ZoneSpec {
            cylinders: cyls,
            spt,
            track_skew: ts % spt,
            cyl_skew: cs % spt,
        }),
        1..3,
    );
    let scheme = prop_oneof![
        Just(SpareScheme::SectorsPerTrack(2)),
        Just(SpareScheme::TracksAtEnd(2)),
    ];
    let policy = prop_oneof![Just(DefectPolicy::Slip), Just(DefectPolicy::Remap)];
    (
        1u32..4,
        zones,
        scheme,
        policy,
        prop::collection::vec((0u32..500, 0u32..4, 0u32..200), 0..4),
    )
        .prop_map(|(surfaces, zones, spare, policy, raw_defects)| {
            let total_cyls: u32 = zones.iter().map(|z| z.cylinders).sum();
            let defects = raw_defects
                .into_iter()
                .map(|(c, h, s)| {
                    let cyl = c % total_cyls;
                    let mut acc = 0;
                    let mut spt = zones[0].spt;
                    for z in &zones {
                        if cyl < acc + z.cylinders {
                            spt = z.spt;
                            break;
                        }
                        acc += z.cylinders;
                    }
                    DefectLocation::new(cyl, h % surfaces, s % spt)
                })
                .collect();
            GeometrySpec {
                surfaces,
                zones,
                spare,
                policy,
                defects,
            }
        })
}

/// Arrival angles including the hard cases: the EPS snap margin and the
/// top of the unit interval, where the wrap branches live.
fn arb_angle() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0..1.0f64,
        Just(0.0),
        Just(1.0 - EPS),
        Just(1.0 - EPS / 2.0),
        Just(1.0 - f64::EPSILON),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Closed form == reference scan, bitwise, for every track and run.
    #[test]
    fn window_closed_matches_scan_bitwise(
        spec in arb_spec(),
        tsel in 0u32..10_000,
        arr_raw in arb_angle(),
        fsel in 0u32..10_000,
        csel in 0u32..10_000,
        snap_sel in 0u32..2,
    ) {
        if let Ok(geom) = spec.build() {
            let tid = tsel % geom.num_tracks();
            let track = geom.track(tid);
            let spt = track.spt();
            if spt > 0 {
                let first = fsel % spt;
                let count = 1 + csel % (spt - first);
                // Half the cases pin the arrival exactly on a slot angle
                // of this track — what back-to-back sequential requests
                // hit every time.
                let arr = if snap_sel == 1 {
                    track.slot_angle(fsel % spt)
                } else {
                    arr_raw
                };
                let scan = window_scan(track, arr, first, count);
                let closed = window_closed(track, arr, first, count);
                prop_assert_eq!(
                    scan.0.to_bits(),
                    closed.0.to_bits(),
                    "min mismatch: tid={} arr={} run=[{},+{}) scan={:?} closed={:?}",
                    tid, arr, first, count, scan, closed
                );
                prop_assert_eq!(
                    scan.1.to_bits(),
                    closed.1.to_bits(),
                    "max mismatch: tid={} arr={} run=[{},+{}) scan={:?} closed={:?}",
                    tid, arr, first, count, scan, closed
                );
            }
        }
    }
}
