//! Integration tests of the tracing subsystem against a real drive run:
//! the event stream must account for every nanosecond the engine reports,
//! survive a JSONL round trip, and never perturb the simulation.

use sim_disk::disk::{Disk, Op, Request};
use sim_disk::models;
use sim_disk::trace::{JsonlSink, MemorySink, TraceEvent, Tracer};
use sim_disk::{SimDur, SimTime};
use std::sync::{Arc, Mutex};

/// Mixed read/write random workload over the whole drive; returns the
/// engine-reported completions alongside whatever the tracer captured.
fn traced_run(count: u64) -> (Vec<sim_disk::disk::Completion>, Vec<TraceEvent>) {
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    let mut cfg = models::quantum_atlas_10k_ii();
    cfg.tracer = Some(Tracer::new(sink.clone()));
    let mut disk = Disk::new(cfg);

    let mut completions = Vec::new();
    let mut t = SimTime::ZERO;
    for i in 0..count {
        let lbn = (i * 2_654_435_761) % 4_000_000;
        let len = 16 + (i * 37) % 1024;
        let req = if i % 4 == 3 {
            Request::write(lbn, len)
        } else {
            Request::read(lbn, len)
        };
        let c = disk.service(req, t);
        // Mix closed-loop arrivals with bursts that build a queue.
        t = if i % 5 == 0 { t } else { c.completion };
        completions.push(c);
    }
    let events = sink.lock().expect("sink").take_events();
    (completions, events)
}

/// Per-phase quantization leaves at most this much unaccounted per request
/// (same tolerance as the engine's own breakdown tests).
const RESIDUAL: u64 = 20_000;

/// Every `Complete` event's phase fields sum to its `response`, and both
/// match the engine's own breakdown for the same request.
#[test]
fn complete_events_account_for_every_nanosecond() {
    let (completions, events) = traced_run(300);
    let completes: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Complete { .. }))
        .collect();
    assert_eq!(completes.len(), completions.len());

    for (c, e) in completions.iter().zip(completes) {
        let TraceEvent::Complete {
            op,
            lbn,
            len,
            cache_hit,
            queue,
            overhead,
            seek,
            head_switch,
            rot_latency,
            media,
            bus,
            write_settle,
            response,
            ..
        } = e
        else {
            unreachable!()
        };
        assert_eq!(*op, c.request.op);
        assert_eq!(*lbn, c.request.lbn);
        assert_eq!(*len, c.request.len);
        assert_eq!(*cache_hit, c.cache_hit);
        assert_eq!(*response, c.response_time().as_ns());
        let b = &c.breakdown;
        for (traced, engine) in [
            (*queue, b.queue),
            (*overhead, b.overhead),
            (*seek, b.seek),
            (*head_switch, b.head_switch),
            (*rot_latency, b.rot_latency),
            (*media, b.media),
            (*bus, b.bus),
            (*write_settle, b.write_settle),
        ] {
            assert_eq!(traced, engine.as_ns());
        }
        let sum = queue + overhead + seek + head_switch + rot_latency + media + bus + write_settle;
        assert!(
            response.abs_diff(sum) <= RESIDUAL,
            "lbn {lbn}: phases sum to {sum} ns but response is {response} ns"
        );
    }
}

/// Phase events of one request agree with its `Complete` summary: seek
/// durations sum to the seek phase, media durations to the media phase,
/// and every event lands inside the request's [issue, completion] window.
#[test]
fn phase_events_match_their_summary() {
    let (completions, events) = traced_run(300);
    for (rid, c) in completions.iter().enumerate() {
        let mine: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.req() == Some(rid as u64))
            .collect();
        assert!(matches!(mine.first(), Some(TraceEvent::Issue { .. })));
        assert!(matches!(mine.last(), Some(TraceEvent::Complete { .. })));

        let mut seek = 0u64;
        let mut media = 0u64;
        let mut queue = 0u64;
        for e in &mine {
            if let TraceEvent::Seek { dur, .. } = e {
                seek += dur;
            }
            if let TraceEvent::Media { dur, .. } = e {
                media += dur;
            }
            if let TraceEvent::Queue { dur, .. } = e {
                queue += dur;
            }
            let t = e.time_ns();
            assert!(
                t >= c.issue.as_ns() && t <= c.completion.as_ns(),
                "req {rid}: {} at {t} outside [{}, {}]",
                e.name(),
                c.issue.as_ns(),
                c.completion.as_ns()
            );
        }
        assert_eq!(seek, c.breakdown.seek.as_ns(), "req {rid} seek");
        assert_eq!(media, c.breakdown.media.as_ns(), "req {rid} media");
        assert_eq!(queue, c.breakdown.queue.as_ns(), "req {rid} queue");
        if c.cache_hit {
            assert!(mine
                .iter()
                .any(|e| matches!(e, TraceEvent::CacheHit { .. })));
        }
    }
    // The burst arrivals above must actually have exercised queueing.
    assert!(completions.iter().any(|c| c.breakdown.queue > SimDur::ZERO));
}

/// The full event stream survives a JSONL write + parse round trip.
#[test]
fn jsonl_round_trip_preserves_the_stream() {
    let path = std::env::temp_dir().join("sim_disk_trace_invariants.jsonl");
    let sink = Arc::new(Mutex::new(
        JsonlSink::create(&path).expect("temp trace file"),
    ));
    let mut cfg = models::quantum_atlas_10k_ii();
    cfg.tracer = Some(Tracer::new(sink));
    let mut disk = Disk::new(cfg);
    let mut expected = Vec::new();
    let mem = Arc::new(Mutex::new(MemorySink::new()));
    disk.set_tracer(Some(Tracer::new(mem.clone())));
    // One tracer at a time: run the same workload twice, once per sink.
    for trial in 0..2 {
        disk.reset();
        if trial == 1 {
            let jsonl = Arc::new(Mutex::new(
                JsonlSink::create(&path).expect("temp trace file"),
            ));
            disk.set_tracer(Some(Tracer::new(jsonl)));
        }
        let mut t = SimTime::ZERO;
        for i in 0..100u64 {
            let lbn = (i * 1_234_567) % 4_000_000;
            let c = disk.service(Request::read(lbn, 64 + (i % 512)), t);
            t = c.completion;
        }
        if trial == 0 {
            expected = mem.lock().expect("sink").take_events();
        }
    }
    disk.set_tracer(None); // drop the sink so the file is flushed

    let text = std::fs::read_to_string(&path).expect("trace file");
    let parsed: Vec<TraceEvent> = text
        .lines()
        .map(|l| TraceEvent::parse_json(l).expect("valid event"))
        .collect();
    // Request ids differ (the sequence number keeps counting across
    // reset()), but everything else must match event for event.
    assert_eq!(parsed.len(), expected.len());
    for (a, b) in expected.iter().zip(&parsed) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.time_ns(), b.time_ns());
    }
    std::fs::remove_file(&path).ok();
}

/// Attaching a tracer must not change a single completion time.
#[test]
fn tracing_never_perturbs_the_simulation() {
    let run = |traced: bool| {
        let mut cfg = models::quantum_atlas_10k_ii();
        if traced {
            cfg.tracer = Some(Tracer::new(Arc::new(Mutex::new(MemorySink::new()))));
        }
        let mut disk = Disk::new(cfg);
        let mut t = SimTime::ZERO;
        let mut out = Vec::new();
        for i in 0..200u64 {
            let lbn = (i * 2_654_435_761) % 4_000_000;
            let req = if i % 4 == 3 {
                Request::write(lbn, 16 + (i % 700))
            } else {
                Request::read(lbn, 16 + (i % 700))
            };
            let c = disk.service(req, t);
            t = if i % 5 == 0 { t } else { c.completion };
            out.push((c.completion, c.breakdown));
        }
        out
    };
    assert_eq!(run(false), run(true));
}

/// Writes emit settle events exactly when the drive charges settle time.
#[test]
fn writes_emit_settle_and_reads_do_not() {
    let (completions, events) = traced_run(200);
    for (rid, c) in completions.iter().enumerate() {
        let has_settle = events
            .iter()
            .any(|e| matches!(e, TraceEvent::Settle { req, .. } if *req == rid as u64));
        let charged = c.breakdown.write_settle > SimDur::ZERO;
        assert_eq!(
            has_settle,
            charged,
            "req {rid} ({:?}): settle event vs {} ns charged",
            c.request.op,
            c.breakdown.write_settle.as_ns()
        );
        if c.request.op == Op::Read {
            assert!(!has_settle);
        }
    }
}
