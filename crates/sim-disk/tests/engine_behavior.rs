//! Behavioural tests of the drive engine across firmware and bus
//! configurations: the invariants every figure harness relies on.

use sim_disk::bus::BusConfig;
use sim_disk::cache::CacheConfig;
use sim_disk::disk::{Disk, DiskConfig, Request};
use sim_disk::models;
use sim_disk::{SimDur, SimTime};

fn atlas(bus: BusConfig, zero_latency: bool) -> Disk {
    let base = models::quantum_atlas_10k_ii();
    Disk::new(DiskConfig {
        bus,
        zero_latency,
        ..base
    })
}

/// Time never runs backwards: completions are ordered with issues, and the
/// mechanism is never double-booked.
#[test]
fn completions_are_causally_ordered() {
    let mut d = atlas(BusConfig::in_order(160.0), true);
    let mut t = SimTime::ZERO;
    let mut last_media_end = SimTime::ZERO;
    for i in 0..200u64 {
        let lbn = (i * 1_234_567) % 4_000_000;
        let c = d.service(Request::read(lbn, 64 + (i % 512)), t);
        assert!(c.service_start >= c.issue);
        assert!(c.media_end >= c.service_start || c.cache_hit);
        assert!(c.completion >= c.media_end);
        // FCFS: the mechanism serves requests in order.
        assert!(c.media_end >= last_media_end);
        last_media_end = c.media_end;
        t = c.issue.max(c.media_end);
    }
}

/// An infinitely fast bus means completion == media end for reads.
#[test]
fn infinite_bus_has_no_tail() {
    let mut d = atlas(BusConfig::infinite(), true);
    let c = d.service(Request::read(100_000, 528), SimTime::ZERO);
    assert_eq!(c.completion, c.media_end);
    assert_eq!(c.breakdown.bus, SimDur::ZERO);
}

/// Out-of-order delivery never makes a read slower than in-order delivery.
#[test]
fn out_of_order_bus_dominates_in_order() {
    for i in 0..40u64 {
        let lbn = (i * 999_331) % 4_000_000;
        let mut in_order = atlas(BusConfig::in_order(160.0), true);
        let mut ooo = atlas(BusConfig::out_of_order(160.0), true);
        let a = in_order.service(Request::read(lbn, 528), SimTime::ZERO);
        let b = ooo.service(Request::read(lbn, 528), SimTime::ZERO);
        assert!(
            b.completion <= a.completion,
            "lbn {lbn}: out-of-order {} should not exceed in-order {}",
            b.completion,
            a.completion
        );
    }
}

/// A zero-latency drive never services a single-track read slower than the
/// same drive without zero-latency support.
#[test]
fn zero_latency_dominates_ordinary() {
    for i in 0..40u64 {
        let track = (i * 97) % 1000;
        let start = track * 528;
        let mut zl = atlas(BusConfig::infinite(), true);
        let mut ord = atlas(BusConfig::infinite(), false);
        // Same arrival conditions: single read from idle state.
        let a = zl.service(Request::read(start, 528), SimTime::ZERO);
        let b = ord.service(Request::read(start, 528), SimTime::ZERO);
        assert!(a.completion <= b.completion, "track {track}");
    }
}

/// Reads spanning a zone change (different sectors per track) service
/// correctly and account every sector.
#[test]
fn cross_zone_reads_work() {
    let mut d = atlas(BusConfig::in_order(160.0), true);
    let zone0 = d.geometry().zones()[0];
    let boundary = zone0.first_lbn + zone0.lbn_count;
    let c = d.service(Request::read(boundary - 600, 1200), SimTime::ZERO);
    assert!(c.completion > SimTime::ZERO);
    // Media time must cover at least the larger zone's transfer rate for
    // 1200 sectors.
    let min_media = d.spindle().sweep(1200.0 / 528.0 / 2.0);
    assert!(c.breakdown.media > min_media);
}

/// Disabling the firmware cache turns every repeat read into mechanical
/// work.
#[test]
fn disabled_cache_never_hits() {
    let mut cfg = models::quantum_atlas_10k_ii();
    cfg.cache = CacheConfig::disabled();
    let mut d = Disk::new(cfg);
    let a = d.service(Request::read(0, 64), SimTime::ZERO);
    let b = d.service(Request::read(0, 64), a.completion);
    assert!(!b.cache_hit);
    assert_eq!(d.cache_stats(), (0, 0));
}

/// The breakdown accounts for the whole response time of an isolated
/// request (no queueing): components sum to completion − issue.
#[test]
fn breakdown_sums_to_response() {
    let mut d = atlas(BusConfig::in_order(160.0), true);
    for i in 0..60u64 {
        d.reset();
        let lbn = (i * 777_777) % 4_000_000;
        let c = d.service(Request::read(lbn, 300), SimTime::ZERO);
        let total = c.breakdown.total();
        let resp = c.response_time();
        let diff = total.as_ns().abs_diff(resp.as_ns());
        assert!(
            diff < 20_000, // ≤ 20 µs of rounding across components
            "lbn {lbn}: breakdown {total} vs response {resp}"
        );
    }
}

/// Writes on all four Table-1 evaluation drives complete and pay the
/// settle penalty exactly once.
#[test]
fn writes_work_on_all_eval_drives() {
    for cfg in [
        models::quantum_atlas_10k(),
        models::quantum_atlas_10k_ii(),
        models::seagate_cheetah_x15(),
        models::ibm_ultrastar_18es(),
    ] {
        let settle = cfg.write_settle;
        let mut d = Disk::new(cfg);
        let c = d.service(Request::write(10_000, 700), SimTime::ZERO);
        assert_eq!(c.breakdown.write_settle, settle);
        assert_eq!(c.completion, c.media_end);
    }
}

/// The drive can service every sector of a small disk, first to last.
#[test]
fn whole_disk_sweep() {
    let mut d = Disk::new(models::small_test_disk());
    let cap = d.geometry().capacity_lbns();
    let mut t = SimTime::ZERO;
    let mut at = 0;
    while at < cap {
        let len = 997.min(cap - at);
        let c = d.service(Request::read(at, len), t);
        t = c.completion;
        at += len;
    }
    assert_eq!(at, cap);
}

/// Requests of one sector have sane sub-revolution media components.
#[test]
fn single_sector_read_is_fast() {
    let mut d = atlas(BusConfig::infinite(), true);
    let c = d.service(Request::read(1_000_000, 1), SimTime::ZERO);
    assert!(c.breakdown.media < d.spindle().slot_time(353) * 2);
    assert!(c.breakdown.rot_latency < d.spindle().revolution());
}
