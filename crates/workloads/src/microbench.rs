//! The `onereq` and `tworeq` microbenchmarks of §5.2.
//!
//! Each workload issues `n` random constant-size requests within one zone of
//! the disk. `onereq` keeps a single request outstanding; `tworeq` always
//! keeps one request queued at the disk in addition to the one being
//! serviced, which lets the next request's seek overlap the current
//! request's bus transfer.
//!
//! *Head time* — the time the mechanism is dedicated to a request — is the
//! reciprocal of throughput: for `onereq` it equals response time; for
//! `tworeq` it is the spacing between consecutive completions (Figure 5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_disk::disk::{Disk, Op, Request};
use sim_disk::{Completion, SimDur, SimTime};
use traxtent::stats;

/// Whether request starts coincide with track boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alignment {
    /// Requests start at a track boundary.
    TrackAligned,
    /// Request starts are uniform over the zone (track-unaware).
    Unaligned,
}

/// How many requests the host keeps outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDepth {
    /// One outstanding request (`onereq`).
    One,
    /// Two outstanding requests (`tworeq`).
    Two,
}

/// Parameters of a microbenchmark run.
#[derive(Debug, Clone, Copy)]
pub struct RandomIoSpec {
    /// Zone to draw request locations from (0 = outermost).
    pub zone: usize,
    /// Request size, sectors.
    pub io_sectors: u64,
    /// Number of requests.
    pub count: usize,
    /// Read or write.
    pub op: Op,
    /// Alignment policy.
    pub alignment: Alignment,
    /// Outstanding-request policy.
    pub queue: QueueDepth,
    /// RNG seed.
    pub seed: u64,
}

impl RandomIoSpec {
    /// A 5000-request read spec in zone 0, like the paper's.
    pub fn reads(io_sectors: u64, alignment: Alignment, queue: QueueDepth) -> Self {
        RandomIoSpec {
            zone: 0,
            io_sectors,
            count: 5000,
            op: Op::Read,
            alignment,
            queue,
            seed: 0x5eed,
        }
    }

    /// Same, for writes.
    pub fn writes(io_sectors: u64, alignment: Alignment, queue: QueueDepth) -> Self {
        RandomIoSpec {
            op: Op::Write,
            ..Self::reads(io_sectors, alignment, queue)
        }
    }
}

/// The measured outcome of a microbenchmark run.
#[derive(Debug, Clone)]
pub struct RandomIoResult {
    /// Per-request completions, in issue order.
    pub completions: Vec<Completion>,
    /// Ideal media transfer time for one request (sectors / SPT revolutions)
    /// — the numerator of the disk-efficiency metric.
    pub ideal_media: SimDur,
}

impl RandomIoResult {
    /// Mean head time: response time for `onereq`, completion spacing for
    /// `tworeq` (computed from the spacing whenever more than one request
    /// was in flight).
    pub fn mean_head_time(&self, queue: QueueDepth) -> SimDur {
        match queue {
            QueueDepth::One => {
                let ms = stats::mean(
                    &self
                        .completions
                        .iter()
                        .map(|c| c.response_time().as_millis_f64())
                        .collect::<Vec<_>>(),
                );
                SimDur::from_millis_f64(ms)
            }
            QueueDepth::Two => {
                let spacings: Vec<f64> = self
                    .completions
                    .windows(2)
                    .map(|w| (w[1].completion - w[0].completion).as_millis_f64())
                    .collect();
                SimDur::from_millis_f64(stats::mean(&spacings))
            }
        }
    }

    /// Disk efficiency: the fraction of per-request head time spent moving
    /// data to or from the media (Figure 1's y-axis).
    pub fn efficiency(&self, queue: QueueDepth) -> f64 {
        let ht = self.mean_head_time(queue);
        if ht == SimDur::ZERO {
            return 0.0;
        }
        self.ideal_media.as_secs_f64() / ht.as_secs_f64()
    }

    /// Mean response time.
    pub fn mean_response(&self) -> SimDur {
        let ms = stats::mean(
            &self
                .completions
                .iter()
                .map(|c| c.response_time().as_millis_f64())
                .collect::<Vec<_>>(),
        );
        SimDur::from_millis_f64(ms)
    }

    /// Standard deviation of response time, ms.
    pub fn response_std_dev_ms(&self) -> f64 {
        stats::std_dev(
            &self
                .completions
                .iter()
                .map(|c| c.response_time().as_millis_f64())
                .collect::<Vec<_>>(),
        )
    }

    /// Mean of a breakdown component, ms, selected by `f`.
    pub fn mean_component_ms(&self, f: impl Fn(&Completion) -> SimDur) -> f64 {
        stats::mean(
            &self
                .completions
                .iter()
                .map(|c| f(c).as_millis_f64())
                .collect::<Vec<_>>(),
        )
    }

    /// Publishes the run under `workloads.randio.*`: the request count as a
    /// counter, and the worst response time and disk efficiency as
    /// commutative high-water marks (concurrent benchmark cells exporting
    /// into one registry agree on the result).
    pub fn export_metrics(&self, reg: &traxtent::obs::Registry, queue: QueueDepth) {
        reg.add("workloads.randio.requests", self.completions.len() as u64);
        let worst = self
            .completions
            .iter()
            .map(|c| c.response_time().as_ns())
            .max()
            .unwrap_or(0);
        reg.set_max("workloads.randio.max_response_us", worst / 1_000);
        reg.set_max(
            "workloads.randio.max_efficiency_ppm",
            (self.efficiency(queue) * 1e6) as u64,
        );
    }
}

/// Runs a random-I/O microbenchmark on a fresh state of `disk`.
///
/// The firmware cache is left enabled but is irrelevant: successive random
/// request locations are drawn over a whole zone, so hits essentially never
/// occur (the paper's workloads behave the same way).
///
/// # Panics
///
/// Panics if the zone index is out of range or the request size exceeds the
/// zone size.
pub fn run_random_io(disk: &mut Disk, spec: &RandomIoSpec) -> RandomIoResult {
    disk.reset();
    let zones = disk.geometry().zones().to_vec();
    assert!(spec.zone < zones.len(), "zone {} out of range", spec.zone);
    let zone = zones[spec.zone];
    assert!(
        spec.io_sectors > 0 && spec.io_sectors <= zone.lbn_count,
        "request size {} must be within the zone ({} LBNs)",
        spec.io_sectors,
        zone.lbn_count
    );

    // Track starts within the zone, for aligned placement. Keep only tracks
    // where the full request fits inside the zone.
    let zone_end = zone.first_lbn + zone.lbn_count;
    let track_starts: Vec<u64> = disk
        .geometry()
        .iter_tracks()
        .filter(|(_, t)| t.first_lbn() >= zone.first_lbn && t.lbn_count() > 0)
        .map(|(_, t)| t.first_lbn())
        .filter(|&s| s + spec.io_sectors <= zone_end)
        .collect();
    assert!(!track_starts.is_empty(), "no track can hold the request");

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut completions: Vec<Completion> = Vec::with_capacity(spec.count);

    // Request issue schedule: onereq issues when the previous completes;
    // tworeq issues request i when request i-2 completes (always one queued
    // behind the one in service).
    for i in 0..spec.count {
        let lbn = match spec.alignment {
            Alignment::TrackAligned => track_starts[rng.gen_range(0..track_starts.len())],
            Alignment::Unaligned => {
                zone.first_lbn + rng.gen_range(0..zone.lbn_count - spec.io_sectors + 1)
            }
        };
        let issue = match spec.queue {
            QueueDepth::One => completions
                .last()
                .map(|c| c.completion)
                .unwrap_or(SimTime::ZERO),
            QueueDepth::Two => {
                if i < 2 {
                    SimTime::ZERO
                } else {
                    completions[i - 2].completion
                }
            }
        };
        completions.push(disk.service(Request::new(spec.op, lbn, spec.io_sectors), issue));
    }

    let spt = zone.spt;
    let ideal_media = disk
        .spindle()
        .sweep(spec.io_sectors as f64 / f64::from(spt));
    RandomIoResult {
        completions,
        ideal_media,
    }
}

/// Convenience: the four curves of Figure 6 at one request size, returning
/// mean head times in ms as `(onereq_unaligned, onereq_aligned,
/// tworeq_unaligned, tworeq_aligned)`.
pub fn head_times_at(disk: &mut Disk, io_sectors: u64) -> (f64, f64, f64, f64) {
    let mut run = |alignment, queue| {
        let spec = RandomIoSpec {
            count: 2000,
            ..RandomIoSpec::reads(io_sectors, alignment, queue)
        };
        let r = run_random_io(disk, &spec);
        r.mean_head_time(queue).as_millis_f64()
    };
    (
        run(Alignment::Unaligned, QueueDepth::One),
        run(Alignment::TrackAligned, QueueDepth::One),
        run(Alignment::Unaligned, QueueDepth::Two),
        run(Alignment::TrackAligned, QueueDepth::Two),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::models;

    fn atlas() -> Disk {
        Disk::new(models::quantum_atlas_10k_ii())
    }

    #[test]
    fn export_metrics_summarizes_the_run() {
        let mut d = atlas();
        let spec = RandomIoSpec {
            count: 50,
            ..RandomIoSpec::reads(528, Alignment::TrackAligned, QueueDepth::Two)
        };
        let r = run_random_io(&mut d, &spec);
        let reg = traxtent::obs::Registry::new();
        r.export_metrics(&reg, QueueDepth::Two);
        let snap = reg.snapshot();
        assert_eq!(snap.get("workloads.randio.requests"), Some(50));
        assert!(snap.get("workloads.randio.max_response_us").unwrap() > 0);
        assert_eq!(
            snap.get("workloads.randio.max_efficiency_ppm"),
            Some((r.efficiency(QueueDepth::Two) * 1e6) as u64)
        );
    }

    #[test]
    fn aligned_track_reads_hit_paper_efficiency() {
        // Point A of Figure 1: tworeq track-aligned reads reach ≈ 0.73
        // efficiency, about 82 % of the streaming maximum (0.909).
        let mut d = atlas();
        let spec = RandomIoSpec {
            count: 1500,
            ..RandomIoSpec::reads(528, Alignment::TrackAligned, QueueDepth::Two)
        };
        let r = run_random_io(&mut d, &spec);
        let eff = r.efficiency(QueueDepth::Two);
        assert!(
            (0.66..=0.80).contains(&eff),
            "track-aligned tworeq efficiency {eff}"
        );
    }

    #[test]
    fn unaligned_track_reads_are_much_less_efficient() {
        let mut d = atlas();
        let spec = RandomIoSpec {
            count: 1500,
            ..RandomIoSpec::reads(528, Alignment::Unaligned, QueueDepth::Two)
        };
        let r = run_random_io(&mut d, &spec);
        let eff = r.efficiency(QueueDepth::Two);
        assert!(
            (0.42..=0.60).contains(&eff),
            "unaligned tworeq efficiency {eff}"
        );
    }

    #[test]
    fn tworeq_beats_onereq_for_aligned_track_reads() {
        // §5.2: head time 8.3 ms (tworeq) vs ≈ 9.2 ms (onereq-ish response).
        let mut d = atlas();
        let one = run_random_io(
            &mut d,
            &RandomIoSpec {
                count: 1200,
                ..RandomIoSpec::reads(528, Alignment::TrackAligned, QueueDepth::One)
            },
        );
        let two = run_random_io(
            &mut d,
            &RandomIoSpec {
                count: 1200,
                ..RandomIoSpec::reads(528, Alignment::TrackAligned, QueueDepth::Two)
            },
        );
        let h1 = one.mean_head_time(QueueDepth::One).as_millis_f64();
        let h2 = two.mean_head_time(QueueDepth::Two).as_millis_f64();
        assert!((8.2..=10.0).contains(&h1), "onereq aligned head time {h1}");
        assert!((7.4..=8.8).contains(&h2), "tworeq aligned head time {h2}");
        assert!(h2 < h1);
    }

    #[test]
    fn aligned_response_variance_is_tiny() {
        // Figure 8: at track size, σ_aligned ≈ 0.4 ms (all from the seek)
        // while σ_unaligned ≈ 1.5 ms.
        let mut cfg = models::quantum_atlas_10k_ii();
        cfg.bus = sim_disk::bus::BusConfig::infinite();
        let mut d = Disk::new(cfg);
        let aligned = run_random_io(
            &mut d,
            &RandomIoSpec {
                count: 1500,
                ..RandomIoSpec::reads(528, Alignment::TrackAligned, QueueDepth::One)
            },
        );
        let unaligned = run_random_io(
            &mut d,
            &RandomIoSpec {
                count: 1500,
                ..RandomIoSpec::reads(528, Alignment::Unaligned, QueueDepth::One)
            },
        );
        let sa = aligned.response_std_dev_ms();
        let su = unaligned.response_std_dev_ms();
        assert!(sa < 0.8, "aligned σ {sa}");
        assert!(su > 1.0, "unaligned σ {su}");
        assert!(su > 2.0 * sa, "σ ratio {su}/{sa}");
    }

    #[test]
    fn write_head_times_track_paper() {
        // §5.2 writes, onereq: aligned ≈ 10.0 ms vs unaligned ≈ 13.9 ms.
        let mut d = atlas();
        let aligned = run_random_io(
            &mut d,
            &RandomIoSpec {
                count: 800,
                ..RandomIoSpec::writes(528, Alignment::TrackAligned, QueueDepth::One)
            },
        );
        let unaligned = run_random_io(
            &mut d,
            &RandomIoSpec {
                count: 800,
                ..RandomIoSpec::writes(528, Alignment::Unaligned, QueueDepth::One)
            },
        );
        let ha = aligned.mean_head_time(QueueDepth::One).as_millis_f64();
        let hu = unaligned.mean_head_time(QueueDepth::One).as_millis_f64();
        assert!((8.5..=11.0).contains(&ha), "aligned write head time {ha}");
        assert!(
            (12.0..=15.0).contains(&hu),
            "unaligned write head time {hu}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d = atlas();
        let spec = RandomIoSpec {
            count: 100,
            ..RandomIoSpec::reads(256, Alignment::Unaligned, QueueDepth::One)
        };
        let a = run_random_io(&mut d, &spec);
        let b = run_random_io(&mut d, &spec);
        assert_eq!(a.completions, b.completions);
    }

    #[test]
    #[should_panic(expected = "zone")]
    fn bad_zone_panics() {
        let mut d = atlas();
        let spec = RandomIoSpec {
            zone: 99,
            ..RandomIoSpec::reads(1, Alignment::Unaligned, QueueDepth::One)
        };
        let _ = run_random_io(&mut d, &spec);
    }
}
